#ifndef XTOPK_UTIL_SIMD_H_
#define XTOPK_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace xtopk {

/// Runtime dispatch for the vectorized decode kernels (DESIGN.md §8).
///
/// The group-varint (GVB) codec packs four values per control byte; decoding
/// a group is a table-driven byte shuffle, which SSSE3 (`_mm_shuffle_epi8`)
/// and NEON (`vqtbl1q_u8`) execute in one instruction. The kernels here are
/// bit-identical to the portable scalar path — the fast path is selected at
/// runtime (CPU probe + `XTOPK_DISABLE_SIMD` env override), so a corpus
/// encoded on one machine decodes to the same runs on any other.
///
/// Compile-time gate: the vector kernels are built only when the library is
/// configured with `XTOPK_SIMD` (CMake option, default ON); without it every
/// call takes the scalar path and the binary carries no vector code.
namespace simd {

/// True iff the vector GVB kernel is compiled in and this CPU supports it.
bool GvbSimdAvailable();

/// True iff the next GvbDecodeValues call will take the vector path.
/// Defaults to GvbSimdAvailable() unless the XTOPK_DISABLE_SIMD environment
/// variable is set (any value but "0") or SetGvbSimdEnabled(false) was
/// called.
bool GvbSimdEnabled();

/// Forces the scalar (false) or vector (true, clamped to availability) path.
/// For the scalar-vs-SIMD equivalence tests and the decode ablation bench.
void SetGvbSimdEnabled(bool enabled);

/// Decodes `count` group-varint values (groups of four, 2-bit length codes
/// in a leading control byte, payload little-endian) from `src`. Writes the
/// raw values — callers prefix-sum deltas themselves. Returns the number of
/// input bytes consumed, or 0 if `src_len` ends mid-group (corruption).
size_t GvbDecodeValues(const uint8_t* src, size_t src_len, uint32_t* out,
                       size_t count);

/// The portable reference kernel (always available; the equivalence tests
/// and the ablation bench call it directly).
size_t GvbDecodeValuesScalar(const uint8_t* src, size_t src_len, uint32_t* out,
                             size_t count);

}  // namespace simd
}  // namespace xtopk

#endif  // XTOPK_UTIL_SIMD_H_
