#include "core/engine.h"

#include <unordered_set>

#include "util/parallel.h"
#include "xml/tokenizer.h"

namespace xtopk {

Engine::Engine(const XmlTree& tree, EngineOptions options)
    : tree_(tree), options_(options) {
  options_.index.scoring = options_.scoring;
  builder_ = std::make_unique<IndexBuilder>(tree_, options_.index);
  jdewey_index_ = builder_->BuildJDeweyIndex();
  topk_index_ = builder_->BuildTopKIndex(jdewey_index_);
}

std::vector<QueryHit> Engine::Materialize(
    const std::vector<SearchResult>& results) const {
  std::vector<QueryHit> hits;
  hits.reserve(results.size());
  for (const SearchResult& r : results) {
    QueryHit hit;
    hit.node = r.node;
    hit.level = r.level;
    hit.score = r.score;
    hit.tag = tree_.TagName(r.node);
    hit.snippet = tree_.text(r.node);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::string> Engine::Normalize(
    const std::vector<std::string>& keywords) const {
  // Same analyzer as indexing; multi-token inputs expand, duplicates drop.
  Tokenizer tokenizer(options_.index.tokenizer);
  std::vector<std::string> normalized;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      if (seen.insert(token).second) normalized.push_back(token);
    }
  }
  return normalized;
}

std::vector<QueryHit> Engine::Search(const std::vector<std::string>& keywords,
                                     Semantics semantics) const {
  JoinSearchOptions join_options;
  join_options.semantics = semantics;
  join_options.compute_scores = true;
  join_options.scoring = options_.scoring;
  JoinSearch search(jdewey_index_, join_options);
  std::vector<SearchResult> results = search.Search(Normalize(keywords));
  SortByScoreDesc(&results);
  return Materialize(results);
}

std::string HighlightKeywords(const std::string& text,
                              const std::vector<std::string>& keywords,
                              const std::string& open,
                              const std::string& close) {
  std::unordered_set<std::string> wanted;
  Tokenizer tokenizer;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      wanted.insert(token);
    }
  }
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9');
    if (!alnum) {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t start = i;
    std::string token;
    while (i < text.size()) {
      char t = text[i];
      bool a = (t >= 'a' && t <= 'z') || (t >= 'A' && t <= 'Z') ||
               (t >= '0' && t <= '9');
      if (!a) break;
      token.push_back(t >= 'A' && t <= 'Z' ? static_cast<char>(t - 'A' + 'a')
                                           : t);
      ++i;
    }
    if (wanted.count(token) > 0) {
      out += open;
      out.append(text, start, i - start);
      out += close;
    } else {
      out.append(text, start, i - start);
    }
  }
  return out;
}

std::vector<QueryHit> Engine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  TopKSearchOptions topk_options;
  topk_options.semantics = semantics;
  topk_options.k = k;
  topk_options.scoring = options_.scoring;
  TopKSearch search(topk_index_, topk_options);
  return Materialize(search.Search(Normalize(keywords)));
}

std::vector<QueryHit> Engine::SearchHybrid(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  HybridOptions hybrid_options;
  hybrid_options.semantics = semantics;
  hybrid_options.k = k;
  hybrid_options.scoring = options_.scoring;
  HybridSearch search(topk_index_, hybrid_options);
  return Materialize(search.Search(Normalize(keywords)));
}

std::vector<BatchQueryResult> Engine::RunBatch(
    const std::vector<BatchQuery>& queries, size_t threads) const {
  std::vector<BatchQueryResult> results(queries.size());
  // Workers write to pre-sized, index-disjoint slots; the shared indexes
  // are read-only, so no synchronization beyond the join is needed.
  ParallelFor(queries.size(), threads, [&](size_t i) {
    const BatchQuery& query = queries[i];
    BatchQueryResult& out = results[i];
    if (query.k == 0) {
      JoinSearchOptions join_options;
      join_options.semantics = query.semantics;
      join_options.compute_scores = true;
      join_options.scoring = options_.scoring;
      JoinSearch search(jdewey_index_, join_options);
      std::vector<SearchResult> found = search.Search(Normalize(query.keywords));
      SortByScoreDesc(&found);
      out.hits = Materialize(found);
      out.join_stats = search.stats();
    } else {
      TopKSearchOptions topk_options;
      topk_options.semantics = query.semantics;
      topk_options.k = query.k;
      topk_options.scoring = options_.scoring;
      TopKSearch search(topk_index_, topk_options);
      out.hits = Materialize(search.Search(Normalize(query.keywords)));
    }
  });
  return results;
}

uint32_t Engine::Frequency(const std::string& keyword) const {
  return jdewey_index_.Frequency(keyword);
}

}  // namespace xtopk
