file(REMOVE_RECURSE
  "CMakeFiles/core_join_search_test.dir/core/join_search_test.cc.o"
  "CMakeFiles/core_join_search_test.dir/core/join_search_test.cc.o.d"
  "core_join_search_test"
  "core_join_search_test.pdb"
  "core_join_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_join_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
