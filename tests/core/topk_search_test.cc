#include "core/topk_search.h"

#include <gtest/gtest.h>

#include "core/join_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

/// Reference: complete join-based search, scored, sorted, truncated.
std::vector<SearchResult> CompleteTopK(const JDeweyIndex& index,
                                       const std::vector<std::string>& terms,
                                       Semantics semantics, size_t k) {
  JoinSearchOptions options;
  options.semantics = semantics;
  JoinSearch search(index, options);
  auto results = search.Search(terms);
  SortByScoreDesc(&results);
  if (results.size() > k) results.resize(k);
  return results;
}

TEST(TopKSearchTest, SmallCorpusTop2Elca) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk = builder.BuildTopKIndex(jindex);

  TopKSearchOptions options;
  options.k = 2;
  TopKSearch search(topk, options);
  auto got = search.Search({"xml", "data"});
  auto want = CompleteTopK(jindex, {"xml", "data"}, Semantics::kElca, 2);
  ASSERT_EQ(got.size(), 2u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node);
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9);
  }
}

TEST(TopKSearchTest, KLargerThanResultSetReturnsAll) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk = builder.BuildTopKIndex(jindex);
  TopKSearchOptions options;
  options.k = 100;
  TopKSearch search(topk, options);
  auto got = search.Search({"xml", "data"});
  EXPECT_EQ(got.size(), 4u);  // includes the root under recursive ELCA
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i - 1].score, got[i].score - 1e-12);
  }
}

TEST(TopKSearchTest, KZeroAndMissingKeyword) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk = builder.BuildTopKIndex(jindex);
  TopKSearchOptions options;
  options.k = 0;
  TopKSearch zero(topk, options);
  EXPECT_TRUE(zero.Search({"xml", "data"}).empty());
  options.k = 5;
  TopKSearch missing(topk, options);
  EXPECT_TRUE(missing.Search({"xml", "zzz"}).empty());
}

struct TopKCase {
  uint64_t seed;
  size_t nodes;
  uint32_t max_depth;
  double term_prob;
  size_t query_k;  // keywords
  size_t top_k;    // results requested
};

class TopKEquivalenceTest : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKEquivalenceTest, MatchesCompleteSearchTopK) {
  const TopKCase& c = GetParam();
  std::vector<std::string> all_terms = {"alpha", "beta", "gamma", "delta"};
  std::vector<std::string> terms(all_terms.begin(),
                                 all_terms.begin() + c.query_k);
  XmlTree tree =
      MakeRandomTree(c.seed, c.nodes, 4, c.max_depth, terms, c.term_prob);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    for (bool grouped : {true, false}) {
      // hybrid 0: pure star join; 1e9: every column swept completely;
      // 20: genuinely mixed on these corpora.
      for (double hybrid : {0.0, 20.0, 1e9}) {
        TopKSearchOptions options;
        options.semantics = semantics;
        options.k = c.top_k;
        options.group_threshold = grouped;
        options.hybrid_min_matches = hybrid;
        TopKSearch search(topk_index, options);
        auto got = search.Search(terms);
        auto want = CompleteTopK(jindex, terms, semantics, c.top_k);
        ASSERT_EQ(got.size(), want.size())
            << "seed " << c.seed << " grouped " << grouped << " hybrid "
            << hybrid;
        for (size_t i = 0; i < got.size(); ++i) {
          // Score ties can permute nodes; scores must agree positionally.
          ASSERT_NEAR(got[i].score, want[i].score, 1e-6)
              << "seed " << c.seed << " pos " << i << " grouped " << grouped
              << " hybrid " << hybrid;
        }
        // Emission order is score-descending.
        for (size_t i = 1; i < got.size(); ++i) {
          ASSERT_GE(got[i - 1].score, got[i].score - 1e-9);
        }
        if (hybrid >= 1e9) {
          ASSERT_EQ(search.stats().columns_star_join, 0u);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, TopKEquivalenceTest,
    ::testing::Values(TopKCase{21, 60, 5, 0.4, 2, 3},
                      TopKCase{22, 60, 5, 0.4, 2, 10},
                      TopKCase{23, 150, 7, 0.2, 2, 5},
                      TopKCase{24, 150, 7, 0.2, 3, 5},
                      TopKCase{25, 300, 6, 0.12, 2, 10},
                      TopKCase{26, 300, 6, 0.12, 3, 10},
                      TopKCase{27, 500, 9, 0.07, 2, 10},
                      TopKCase{28, 500, 9, 0.07, 4, 10},
                      TopKCase{29, 900, 6, 0.05, 2, 10},
                      TopKCase{30, 900, 6, 0.05, 3, 25},
                      TopKCase{31, 250, 12, 0.15, 2, 8},
                      TopKCase{32, 250, 12, 0.15, 3, 1}),
    [](const ::testing::TestParamInfo<TopKCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "q" +
             std::to_string(info.param.query_k) + "top" +
             std::to_string(info.param.top_k);
    });

TEST(TopKSearchTest, PerLevelHybridMixesModes) {
  // A corpus with heavy root/level-2 overlap but sparse deep overlap: the
  // per-level estimator should sweep some columns and star-join others.
  XmlTree tree = MakeRandomTree(55, 1200, 5, 7, {"alpha", "beta"}, 0.1);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  TopKSearchOptions options;
  options.k = 1000000;  // force processing every level
  options.hybrid_min_matches = 4.0;
  TopKSearch search(topk_index, options);
  auto results = search.Search({"alpha", "beta"});
  const TopKSearchStats& stats = search.stats();
  EXPECT_EQ(stats.columns_star_join + stats.columns_complete_join,
            stats.columns_processed);
  EXPECT_GT(stats.columns_complete_join, 0u);
  // Results equal the pure star-join run.
  TopKSearchOptions pure;
  pure.k = 1000000;
  TopKSearch pure_search(topk_index, pure);
  auto want = pure_search.Search({"alpha", "beta"});
  ASSERT_EQ(results.size(), want.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].score, want[i].score, 1e-9) << i;
  }
}

TEST(TopKSearchTest, EarlyTerminationReadsLessOnLargeResultSets) {
  // A corpus where the keywords co-occur often: the top-K search should
  // terminate without draining every column.
  XmlTree tree = MakeRandomTree(99, 2000, 5, 6, {"alpha", "beta"}, 0.3);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  TopKSearchOptions options;
  options.k = 5;
  TopKSearch search(topk_index, options);
  auto results = search.Search({"alpha", "beta"});
  ASSERT_EQ(results.size(), 5u);
  uint64_t total_rows = jindex.Frequency("alpha") + jindex.Frequency("beta");
  // Entries are re-served per column, so a full drain would read far more
  // than one pass over the lists.
  EXPECT_LT(search.stats().entries_read, total_rows);
  EXPECT_GT(search.stats().early_emissions, 0u);
}

}  // namespace
}  // namespace xtopk
