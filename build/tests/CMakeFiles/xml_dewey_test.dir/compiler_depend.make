# Empty compiler generated dependencies file for xml_dewey_test.
# This may be replaced when dependencies are built.
