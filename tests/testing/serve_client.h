#ifndef XTOPK_TESTS_TESTING_SERVE_CLIENT_H_
#define XTOPK_TESTS_TESTING_SERVE_CLIENT_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "xml/xml_tree.h"

namespace xtopk {
namespace testing {

/// In-process server fixture: owns the document, an Engine over it, and a
/// QueryServer on an ephemeral loopback port. Tests drive it with real
/// sockets (serve::Client) and compare wire answers against direct engine
/// calls — the score travels as its IEEE-754 bit pattern, so "equal"
/// means bit-identical, not approximately.
class ServeHarness {
 public:
  explicit ServeHarness(XmlTree tree,
                        serve::QueryServer::Options options =
                            serve::QueryServer::Options())
      : tree_(std::move(tree)), engine_(tree_), backend_(&engine_) {
    server_ = std::make_unique<serve::QueryServer>(&backend_, options);
    std::string error;
    started_ = server_->Start(&error);
    EXPECT_TRUE(started_) << error;
  }

  ~ServeHarness() {
    if (server_ != nullptr) server_->Stop();
  }

  bool started() const { return started_; }
  uint16_t port() const { return server_->port(); }
  const Engine& engine() const { return engine_; }
  serve::QueryServer& server() { return *server_; }

  /// One binary request/response exchange on a fresh connection.
  serve::QueryResponse Call(const serve::QueryRequest& request) {
    serve::Client client;
    Status s = client.Connect("127.0.0.1", port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    serve::QueryResponse response;
    s = client.Call(request, &response);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return response;
  }

 private:
  XmlTree tree_;
  Engine engine_;
  serve::EngineBackend backend_;
  std::unique_ptr<serve::QueryServer> server_;
  bool started_ = false;
};

/// Asserts the wire answer equals the direct engine answer bit for bit:
/// same hits, same order, same nodes/levels, byte-identical scores, and
/// the same presentation strings.
inline void ExpectHitsBitIdentical(const std::vector<QueryHit>& expected,
                                   const std::vector<serve::ResponseHit>& got,
                                   const std::string& context) {
  ASSERT_EQ(expected.size(), got.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].node, got[i].node) << context << " hit " << i;
    EXPECT_EQ(expected[i].level, got[i].level) << context << " hit " << i;
    // Exact double equality on purpose: both sides ran the same code and
    // the wire carries the raw bit pattern.
    EXPECT_EQ(expected[i].score, got[i].score) << context << " hit " << i;
    EXPECT_EQ(expected[i].tag, got[i].tag) << context << " hit " << i;
    EXPECT_EQ(expected[i].snippet, got[i].snippet)
        << context << " hit " << i;
  }
}

}  // namespace testing
}  // namespace xtopk

#endif  // XTOPK_TESTS_TESTING_SERVE_CLIENT_H_
