#ifndef XTOPK_UTIL_RNG_H_
#define XTOPK_UTIL_RNG_H_

#include <cstdint>

namespace xtopk {

/// Deterministic, fast pseudo-random generator (splitmix64 seeded
/// xoshiro256**). All generators, workloads, and property tests use this so
/// runs reproduce exactly across machines, which EXPERIMENTS.md depends on.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace xtopk

#endif  // XTOPK_UTIL_RNG_H_
