# Empty compiler generated dependencies file for bench_table1_index_size.
# This may be replaced when dependencies are built.
