// QueryService workers racing the background compactor (DESIGN.md §17).
//
// The serve layer's claim: a durable engine's maintenance thread can
// merge and publish segment versions while worker threads execute
// queries, and no response ever changes — each query pins the version it
// started on, and a compaction publish is result-invariant. This test
// runs under TSan in CI, so it also proves the claim data-race-free: the
// workers serialize on the backend mutex, the compactor takes only the
// engine's maintenance mutex and the index's internal lock, and the two
// meet nowhere else.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/updatable_engine.h"
#include "serve/protocol.h"
#include "serve/query_service.h"

namespace xtopk {
namespace serve {
namespace {

constexpr const char* kWords[] = {"xml",   "keyword", "search", "rank",
                                  "index", "query",   "dewey",  "join",
                                  "top",   "segment", "merge",  "log"};

std::string TextFor(size_t i) {
  return std::string(kWords[i % 12]) + " " + kWords[(i * 5 + 3) % 12];
}

const std::vector<std::vector<std::string>> kQueries = {
    {"xml", "keyword"}, {"rank", "join"}, {"segment", "merge"},
    {"dewey", "index"}, {"top", "query"}};

TEST(CompactionConcurrencyTest, ResponsesBitIdenticalWhileCompacting) {
  const std::string dir = ::testing::TempDir() + "/serve_compaction." +
                          std::to_string(static_cast<long>(::getpid()));
  std::system(("rm -rf " + dir).c_str());

  XmlTree shell;
  shell.CreateRoot("db");
  DurableOptions durable;
  durable.data_dir = dir;
  durable.auto_compact = false;  // started manually once ingest is done
  durable.compaction.max_segments = 2;
  auto opened = UpdatableEngine::OpenDurable(std::move(shell), {}, durable);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto engine = std::move(opened).value();
  ASSERT_NE(engine->scheduler(), nullptr);

  // Pile up segments for the compactor to chew through (max_segments = 2,
  // so 8 sealed segments guarantee several merge rounds).
  for (size_t batch = 0; batch < 8; ++batch) {
    for (size_t i = 0; i < 8; ++i) {
      engine->AddElement(engine->tree().root(), "p",
                         TextFor(batch * 8 + i));
    }
    ASSERT_TRUE(engine->SealMemtable().ok());
  }
  ASSERT_EQ(engine->segment_count(), 8u);

  // Expected answers, recorded before any concurrency starts (the engine
  // is single-writer; after the service starts, only the service and the
  // maintenance thread may touch it).
  std::vector<std::vector<QueryHit>> expected;
  for (const auto& q : kQueries) expected.push_back(engine->SearchTopK(q, 10));

  UpdatableBackend backend(engine.get());
  QueryServiceOptions options;
  options.workers = 2;
  QueryService service(&backend, options);

  // Let the merges rip while the workers answer queries.
  engine->scheduler()->Start();
  engine->scheduler()->Notify();

  constexpr size_t kThreads = 3;
  constexpr size_t kQueriesPerThread = 60;
  std::vector<std::string> failures[kThreads];
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        const size_t q = (t + i) % kQueries.size();
        QueryRequest request;
        request.request_id = static_cast<uint32_t>(t * 1000 + i);
        request.k = 10;
        request.keywords = kQueries[q];
        QueryResponse response = service.Execute(request);
        if (response.status != ResponseStatus::kOk) {
          failures[t].push_back("query " + std::to_string(q) + ": status " +
                                StatusName(response.status));
          continue;
        }
        const auto& want = expected[q];
        if (response.hits.size() != want.size()) {
          failures[t].push_back("query " + std::to_string(q) +
                                ": hit count changed");
          continue;
        }
        for (size_t h = 0; h < want.size(); ++h) {
          // Bit identity across concurrent publishes: node, level, AND
          // the exact score double.
          if (response.hits[h].node != want[h].node ||
              response.hits[h].level != want[h].level ||
              response.hits[h].score != want[h].score) {
            failures[t].push_back("query " + std::to_string(q) + " hit " +
                                  std::to_string(h) + " changed");
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (size_t t = 0; t < kThreads; ++t) {
    for (const auto& f : failures[t]) ADD_FAILURE() << "thread " << t << " " << f;
  }

  // The compactor must actually have raced the queries — and converged.
  // Poll the round counter too: it is bumped AFTER a round's publish, so
  // observing the converged count does not yet imply the counter moved
  // (the nice(19) thread can be preempted in between on a loaded box).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((engine->segment_count() > 2 || engine->scheduler()->rounds() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(engine->segment_count(), 2u);
  EXPECT_GE(engine->scheduler()->rounds(), 1u);

  // Post-convergence responses still match.
  for (size_t q = 0; q < kQueries.size(); ++q) {
    QueryRequest request;
    request.request_id = static_cast<uint32_t>(9000 + q);
    request.k = 10;
    request.keywords = kQueries[q];
    QueryResponse response = service.Execute(request);
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    ASSERT_EQ(response.hits.size(), expected[q].size()) << "query " << q;
    for (size_t h = 0; h < expected[q].size(); ++h) {
      EXPECT_EQ(response.hits[h].node, expected[q][h].node);
      EXPECT_EQ(response.hits[h].score, expected[q][h].score);
    }
  }

  service.Stop();
  engine.reset();  // joins the maintenance thread before the rm
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace
}  // namespace serve
}  // namespace xtopk
