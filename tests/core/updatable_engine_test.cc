#include "core/updatable_engine.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "util/rng.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

TEST(UpdatableEngineTest, InsertionsBecomeSearchable) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><paper>xml</paper></db>"));
  EXPECT_TRUE(engine.Search({"xml", "zebra"}).empty());

  NodeId paper = engine.AddElement(engine.tree().root(), "paper");
  engine.AppendText(paper, "zebra xml");
  EXPECT_TRUE(engine.dirty());
  auto hits = engine.Search({"xml", "zebra"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, paper);
  EXPECT_FALSE(engine.dirty());
  EXPECT_EQ(engine.rebuilds(), 1u);
}

TEST(UpdatableEngineTest, RebuildsAreBatched) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>seed</p></db>"));
  for (int i = 0; i < 50; ++i) {
    engine.AddElement(engine.tree().root(), "p", "word" + std::to_string(i));
  }
  EXPECT_EQ(engine.rebuilds(), 0u);  // no query yet, no rebuild
  engine.Search({"word0"});
  engine.Search({"word1"});
  engine.Search({"word2"});
  EXPECT_EQ(engine.rebuilds(), 1u);  // one rebuild served all three
}

TEST(UpdatableEngineTest, EncodingMaintainedAcrossManyInserts) {
  UpdatableEngine engine(testing::MakeSmallCorpus());
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    NodeId parent =
        static_cast<NodeId>(rng.NextBounded(engine.tree().node_count()));
    if (engine.tree().level(parent) >= 8) continue;
    engine.AddElement(parent, "n", rng.NextBernoulli(0.3) ? "xml" : "data");
  }
  ASSERT_TRUE(engine.ValidateEncoding().ok());
  EXPECT_GT(engine.encoding_updates(), 0u);
  // Queries over the mutated tree still work end to end.
  auto hits = engine.Search({"xml", "data"});
  EXPECT_FALSE(hits.empty());
  auto topk = engine.SearchTopK({"xml", "data"}, 3);
  ASSERT_LE(topk.size(), 3u);
  for (size_t i = 0; i < topk.size(); ++i) {
    EXPECT_NEAR(topk[i].score, hits[i].score, 1e-9);
  }
}

TEST(UpdatableEngineTest, CheapInsertsUseReservedGaps) {
  EngineOptions options;
  options.index.jdewey_gap = 8;
  UpdatableEngine engine(ParseXmlStringOrDie("<db><a>x</a><b>y</b></db>"),
                         options);
  // Up to the gap, each insert changes exactly one number.
  uint64_t before = engine.encoding_updates();
  for (int i = 0; i < 8; ++i) {
    engine.AddElement(engine.tree().root(), "c");
  }
  EXPECT_EQ(engine.encoding_updates() - before, 8u);
}

}  // namespace
}  // namespace xtopk
