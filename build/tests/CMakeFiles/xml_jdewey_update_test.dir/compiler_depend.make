# Empty compiler generated dependencies file for xml_jdewey_update_test.
# This may be replaced when dependencies are built.
