// Hybrid planner demo (paper §V-D): the planner estimates join cardinality
// by sampling column overlap, then routes each query to the top-K join
// (correlated keywords, many results) or the complete join + sort
// (uncorrelated keywords, few results).
//
//   ./hybrid_demo

#include <cstdio>
#include <string>
#include <vector>

#include "core/hybrid.h"
#include "index/index_builder.h"
#include "util/timer.h"
#include "workload/dblp_gen.h"

int main() {
  xtopk::DblpGenOptions gen;
  gen.planted = {
      {"stream", 2000, "", 0.0},
      {"processing", 3000, "stream", 0.7},  // strongly correlated pair
      {"origami", 600, "", 0.0},            // unrelated to everything
      {"walrus", 900, "", 0.0},
  };
  xtopk::DblpCorpus corpus = xtopk::GenerateDblp(gen);
  xtopk::IndexBuilder builder(corpus.tree);
  xtopk::JDeweyIndex jindex = builder.BuildJDeweyIndex();
  xtopk::TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  std::printf("corpus: %zu nodes\n\n", corpus.tree.node_count());
  std::printf("%-28s %-12s %-14s %s\n", "query", "estimate", "plan chosen",
              "top-10 time");

  const std::vector<std::vector<std::string>> queries = {
      {"stream", "processing"},
      {"origami", "walrus"},
      {"stream", "origami"},
      {"processing", "walrus"},
  };
  for (const auto& query : queries) {
    xtopk::HybridSearch hybrid(topk_index);
    xtopk::Timer timer;
    auto results = hybrid.Search(query);
    double ms = timer.ElapsedMillis();
    std::string name = query[0] + " + " + query[1];
    std::printf("%-28s %-12.1f %-14s %6.2f ms  (%zu results)\n", name.c_str(),
                hybrid.decision().estimated_results,
                hybrid.decision().used_topk_join ? "top-K join"
                                                 : "complete join",
                ms, results.size());
  }
  return 0;
}
