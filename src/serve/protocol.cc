#include "serve/protocol.h"

#include <cstdio>
#include <cstring>

namespace xtopk {
namespace serve {

namespace {

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t value) {
  PutFixed32(out, static_cast<uint32_t>(value & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(value >> 32));
}

void PutByte(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutString(std::string* out, std::string_view value) {
  PutFixed32(out, static_cast<uint32_t>(value.size()));
  out->append(value.data(), value.size());
}

/// Bounds-checked readers over an immutable payload view. Every Get*
/// verifies the remaining bytes BEFORE touching them; a short payload
/// yields InvalidArgument, never a wild read.
struct Reader {
  std::string_view data;
  size_t pos = 0;

  size_t remaining() const { return data.size() - pos; }

  Status GetByte(uint8_t* value) {
    if (remaining() < 1) return Status::InvalidArgument("frame truncated: u8");
    *value = static_cast<uint8_t>(data[pos++]);
    return Status::Ok();
  }

  Status GetFixed32(uint32_t* value) {
    if (remaining() < 4) return Status::InvalidArgument("frame truncated: u32");
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data.data() + pos);
    *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
             (static_cast<uint32_t>(p[2]) << 16) |
             (static_cast<uint32_t>(p[3]) << 24);
    pos += 4;
    return Status::Ok();
  }

  Status GetFixed64(uint64_t* value) {
    uint32_t lo = 0, hi = 0;
    Status s = GetFixed32(&lo);
    if (!s.ok()) return s;
    s = GetFixed32(&hi);
    if (!s.ok()) return s;
    *value = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return Status::Ok();
  }

  Status GetString(std::string* value, uint32_t max_len) {
    uint32_t len = 0;
    Status s = GetFixed32(&len);
    if (!s.ok()) return s;
    if (len > max_len) return Status::InvalidArgument("string too long");
    if (remaining() < len) {
      return Status::InvalidArgument("frame truncated: string body");
    }
    value->assign(data.data() + pos, len);
    pos += len;
    return Status::Ok();
  }
};

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Percent-decodes one query-string component ('+' means space).
std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < in.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(in[i + 1]), lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Status ParseUint64(std::string_view text, uint64_t* value) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  uint64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return Status::InvalidArgument("bad number");
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("number overflow");
    }
    result = result * 10 + digit;
  }
  *value = result;
  return Status::Ok();
}

}  // namespace

const char* StatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kPartial:
      return "partial";
    case ResponseStatus::kShedOverload:
      return "shed_overload";
    case ResponseStatus::kBadRequest:
      return "bad_request";
    case ResponseStatus::kInternalError:
      return "internal_error";
    case ResponseStatus::kShuttingDown:
      return "shutting_down";
    case ResponseStatus::kDeadlineExpired:
      return "deadline_expired";
  }
  return "unknown";
}

void EncodeFrame(std::string* out, std::string_view payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

Status ExtractFrame(std::string* buffer, std::string* payload,
                    bool* complete) {
  *complete = false;
  if (buffer->size() < 4) return Status::Ok();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(
      buffer->data());
  uint32_t len = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16) |
                 (static_cast<uint32_t>(p[3]) << 24);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds limit");
  }
  if (buffer->size() < 4 + static_cast<size_t>(len)) return Status::Ok();
  payload->assign(buffer->data() + 4, len);
  buffer->erase(0, 4 + static_cast<size_t>(len));
  *complete = true;
  return Status::Ok();
}

void EncodeRequest(const QueryRequest& request, std::string* payload) {
  PutFixed32(payload, request.request_id);
  PutByte(payload, static_cast<uint8_t>(request.op));
  PutByte(payload, static_cast<uint8_t>(request.priority));
  PutByte(payload, request.semantics == Semantics::kSlca ? 1 : 0);
  PutFixed32(payload, request.k);
  PutFixed64(payload, request.deadline_us);
  PutFixed32(payload, static_cast<uint32_t>(request.keywords.size()));
  for (const std::string& keyword : request.keywords) {
    PutString(payload, keyword);
  }
}

Status DecodeRequest(std::string_view payload, QueryRequest* request) {
  Reader reader{payload};
  Status s = reader.GetFixed32(&request->request_id);
  if (!s.ok()) return s;

  uint8_t op = 0;
  s = reader.GetByte(&op);
  if (!s.ok()) return s;
  if (op != static_cast<uint8_t>(RequestOp::kQuery) &&
      op != static_cast<uint8_t>(RequestOp::kPing)) {
    return Status::InvalidArgument("unknown op " + std::to_string(op));
  }
  request->op = static_cast<RequestOp>(op);

  uint8_t priority = 0;
  s = reader.GetByte(&priority);
  if (!s.ok()) return s;
  if (priority > 1) {
    return Status::InvalidArgument("unknown priority " +
                                   std::to_string(priority));
  }
  request->priority = static_cast<Priority>(priority);

  uint8_t semantics = 0;
  s = reader.GetByte(&semantics);
  if (!s.ok()) return s;
  if (semantics > 1) {
    return Status::InvalidArgument("unknown semantics " +
                                   std::to_string(semantics));
  }
  request->semantics = semantics == 1 ? Semantics::kSlca : Semantics::kElca;

  s = reader.GetFixed32(&request->k);
  if (!s.ok()) return s;
  if (request->k > kMaxK) return Status::InvalidArgument("k too large");

  s = reader.GetFixed64(&request->deadline_us);
  if (!s.ok()) return s;

  uint32_t n_keywords = 0;
  s = reader.GetFixed32(&n_keywords);
  if (!s.ok()) return s;
  if (n_keywords > kMaxKeywords) {
    return Status::InvalidArgument("too many keywords");
  }
  request->keywords.clear();
  request->keywords.reserve(n_keywords);
  for (uint32_t i = 0; i < n_keywords; ++i) {
    std::string keyword;
    s = reader.GetString(&keyword, kMaxFrameBytes);
    if (!s.ok()) return s;
    request->keywords.push_back(std::move(keyword));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  if (request->op == RequestOp::kQuery && request->keywords.empty()) {
    return Status::InvalidArgument("query without keywords");
  }
  return Status::Ok();
}

void EncodeResponse(const QueryResponse& response, std::string* payload) {
  PutFixed32(payload, response.request_id);
  PutByte(payload, static_cast<uint8_t>(response.status));
  PutFixed32(payload, response.retry_after_ms);
  PutString(payload, response.error);
  PutFixed32(payload, static_cast<uint32_t>(response.hits.size()));
  for (const ResponseHit& hit : response.hits) {
    PutFixed32(payload, hit.node);
    PutFixed32(payload, hit.level);
    PutFixed64(payload, DoubleBits(hit.score));
    PutString(payload, hit.tag);
    PutString(payload, hit.snippet);
  }
}

Status DecodeResponse(std::string_view payload, QueryResponse* response) {
  Reader reader{payload};
  Status s = reader.GetFixed32(&response->request_id);
  if (!s.ok()) return s;

  uint8_t status = 0;
  s = reader.GetByte(&status);
  if (!s.ok()) return s;
  if (status > static_cast<uint8_t>(ResponseStatus::kDeadlineExpired)) {
    return Status::InvalidArgument("unknown response status");
  }
  response->status = static_cast<ResponseStatus>(status);

  s = reader.GetFixed32(&response->retry_after_ms);
  if (!s.ok()) return s;
  s = reader.GetString(&response->error, kMaxFrameBytes);
  if (!s.ok()) return s;

  uint32_t n_hits = 0;
  s = reader.GetFixed32(&n_hits);
  if (!s.ok()) return s;
  // Each hit needs >= 24 bytes; a count the remaining bytes cannot hold is
  // a forged header, rejected before any allocation.
  if (static_cast<uint64_t>(n_hits) * 24 > reader.remaining()) {
    return Status::InvalidArgument("hit count exceeds frame");
  }
  response->hits.clear();
  response->hits.reserve(n_hits);
  for (uint32_t i = 0; i < n_hits; ++i) {
    ResponseHit hit;
    s = reader.GetFixed32(&hit.node);
    if (!s.ok()) return s;
    s = reader.GetFixed32(&hit.level);
    if (!s.ok()) return s;
    uint64_t bits = 0;
    s = reader.GetFixed64(&bits);
    if (!s.ok()) return s;
    hit.score = DoubleFromBits(bits);
    s = reader.GetString(&hit.tag, kMaxFrameBytes);
    if (!s.ok()) return s;
    s = reader.GetString(&hit.snippet, kMaxFrameBytes);
    if (!s.ok()) return s;
    response->hits.push_back(std::move(hit));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after response");
  }
  return Status::Ok();
}

bool LooksLikeHttp(std::string_view prefix) {
  return prefix.substr(0, 4) == "GET " || prefix.substr(0, 5) == "POST " ||
         prefix.substr(0, 5) == "HEAD ";
}

Status ParseHttpSearchTarget(std::string_view target, QueryRequest* request) {
  size_t qmark = target.find('?');
  std::string_view path = target.substr(0, qmark);
  if (path != "/search") {
    return Status::InvalidArgument("unknown path");
  }
  *request = QueryRequest();
  bool have_q = false;
  std::string_view query =
      qmark == std::string_view::npos ? "" : target.substr(qmark + 1);
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? "" : query.substr(amp + 1);
    size_t eq = pair.find('=');
    std::string_view key = pair.substr(0, eq);
    std::string value =
        eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
    if (key == "q") {
      have_q = true;
      // Space-separated keywords; the engine's tokenizer re-splits anyway.
      size_t start = 0;
      while (start < value.size()) {
        size_t space = value.find(' ', start);
        std::string word = value.substr(
            start, space == std::string::npos ? std::string::npos
                                              : space - start);
        if (!word.empty()) request->keywords.push_back(std::move(word));
        if (space == std::string::npos) break;
        start = space + 1;
      }
      if (request->keywords.size() > kMaxKeywords) {
        return Status::InvalidArgument("too many keywords");
      }
    } else if (key == "k") {
      uint64_t k = 0;
      Status s = ParseUint64(value, &k);
      if (!s.ok()) return s;
      if (k > kMaxK) return Status::InvalidArgument("k too large");
      request->k = static_cast<uint32_t>(k);
    } else if (key == "semantics") {
      if (value == "elca") {
        request->semantics = Semantics::kElca;
      } else if (value == "slca") {
        request->semantics = Semantics::kSlca;
      } else {
        return Status::InvalidArgument("unknown semantics value");
      }
    } else if (key == "deadline_us") {
      Status s = ParseUint64(value, &request->deadline_us);
      if (!s.ok()) return s;
    } else if (key == "priority") {
      if (value == "high") {
        request->priority = Priority::kHigh;
      } else if (value == "low") {
        request->priority = Priority::kLow;
      } else {
        return Status::InvalidArgument("unknown priority value");
      }
    } else if (key == "id") {
      uint64_t id = 0;
      Status s = ParseUint64(value, &id);
      if (!s.ok()) return s;
      request->request_id = static_cast<uint32_t>(id);
    } else {
      return Status::InvalidArgument("unknown parameter: " +
                                     std::string(key));
    }
  }
  if (!have_q || request->keywords.empty()) {
    return Status::InvalidArgument("missing q parameter");
  }
  return Status::Ok();
}

std::string ResponseToJson(const QueryResponse& response) {
  std::string out;
  out.reserve(256 + response.hits.size() * 96);
  out += "{\"request_id\":";
  out += std::to_string(response.request_id);
  out += ",\"status\":";
  AppendJsonString(&out, StatusName(response.status));
  out += ",\"retry_after_ms\":";
  out += std::to_string(response.retry_after_ms);
  out += ",\"error\":";
  AppendJsonString(&out, response.error);
  out += ",\"hits\":[";
  char buf[64];
  for (size_t i = 0; i < response.hits.size(); ++i) {
    const ResponseHit& hit = response.hits[i];
    if (i > 0) out.push_back(',');
    out += "{\"node\":";
    out += std::to_string(hit.node);
    out += ",\"level\":";
    out += std::to_string(hit.level);
    out += ",\"score\":";
    std::snprintf(buf, sizeof(buf), "%.9g", hit.score);
    out += buf;
    out += ",\"tag\":";
    AppendJsonString(&out, hit.tag);
    out += ",\"snippet\":";
    AppendJsonString(&out, hit.snippet);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

int HttpStatusFor(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
    case ResponseStatus::kPartial:
      return 200;
    case ResponseStatus::kShedOverload:
      return 503;
    case ResponseStatus::kBadRequest:
      return 400;
    case ResponseStatus::kInternalError:
      return 500;
    case ResponseStatus::kShuttingDown:
      return 503;
    case ResponseStatus::kDeadlineExpired:
      return 504;
  }
  return 500;
}

}  // namespace serve
}  // namespace xtopk
