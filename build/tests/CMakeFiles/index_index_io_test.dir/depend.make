# Empty dependencies file for index_index_io_test.
# This may be replaced when dependencies are built.
