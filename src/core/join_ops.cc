#include "core/join_ops.h"

#include <algorithm>

namespace xtopk {

std::vector<LevelMatch> SeedMatches(const Column& column) {
  std::vector<LevelMatch> matches;
  matches.reserve(column.run_count());
  for (const Run& run : column.runs()) {
    LevelMatch m;
    m.value = run.value;
    m.runs.push_back(&run);
    matches.push_back(std::move(m));
  }
  return matches;
}

std::vector<LevelMatch> MergeIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats) {
  ++stats->merge_joins;
  std::vector<LevelMatch> out;
  const auto& runs = column.runs();
  size_t i = 0, j = 0;
  while (i < matches.size() && j < runs.size()) {
    ++stats->run_comparisons;
    if (matches[i].value < runs[j].value) {
      ++i;
    } else if (matches[i].value > runs[j].value) {
      ++j;
    } else {
      matches[i].runs.push_back(&runs[j]);
      out.push_back(std::move(matches[i]));
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

// First index in [from, n) whose value is >= target, found by exponential
// probe then binary search within the bracketed stride — O(log d) for jump
// distance d, so a skewed intersection costs O(m log(n/m)) total.
template <typename GetValue>
size_t GallopLowerBound(size_t from, size_t n, uint32_t target,
                        GetValue value, JoinOpStats* stats) {
  ++stats->gallops;
  size_t bound = 1;
  while (from + bound < n && value(from + bound) < target) {
    ++stats->run_comparisons;
    bound *= 2;
  }
  size_t lo = from + bound / 2;
  size_t hi = std::min(from + bound, n);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ++stats->run_comparisons;
    if (value(mid) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::vector<LevelMatch> GallopIntersect(std::vector<LevelMatch> matches,
                                        const Column& column,
                                        JoinOpStats* stats) {
  ++stats->gallop_joins;
  std::vector<LevelMatch> out;
  const auto& runs = column.runs();
  size_t i = 0, j = 0;
  while (i < matches.size() && j < runs.size()) {
    ++stats->run_comparisons;
    uint32_t lv = matches[i].value;
    uint32_t rv = runs[j].value;
    if (lv == rv) {
      matches[i].runs.push_back(&runs[j]);
      out.push_back(std::move(matches[i]));
      ++i;
      ++j;
    } else if (lv < rv) {
      i = GallopLowerBound(
          i, matches.size(), rv,
          [&](size_t idx) { return matches[idx].value; }, stats);
    } else {
      j = GallopLowerBound(
          j, runs.size(), lv, [&](size_t idx) { return runs[idx].value; },
          stats);
    }
  }
  return out;
}

std::vector<LevelMatch> IndexIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats) {
  ++stats->index_joins;
  std::vector<LevelMatch> out;
  for (LevelMatch& m : matches) {
    ++stats->probes;
    const Run* run = column.FindValue(m.value);
    if (run != nullptr) {
      m.runs.push_back(run);
      out.push_back(std::move(m));
    }
  }
  return out;
}

namespace {

std::vector<LevelMatch> RunStep(std::vector<LevelMatch> matches,
                                const Column& next, JoinAlgo algo,
                                JoinOpStats* stats) {
  switch (algo) {
    case JoinAlgo::kIndex:
      return IndexIntersect(std::move(matches), next, stats);
    case JoinAlgo::kGallop:
      return GallopIntersect(std::move(matches), next, stats);
    case JoinAlgo::kMerge:
      break;
  }
  return MergeIntersect(std::move(matches), next, stats);
}

}  // namespace

std::vector<LevelMatch> IntersectColumns(
    const std::vector<const Column*>& columns, const PlannerOptions& planner,
    JoinOpStats* stats, const IntersectStepFn& on_step) {
  if (columns.empty()) return {};
  std::vector<LevelMatch> matches = SeedMatches(*columns[0]);
  for (size_t j = 1; j < columns.size(); ++j) {
    if (matches.empty()) {
      // Empty intersection: the remaining columns at this level cannot
      // resurrect it, so skip them instead of running degenerate merges.
      ++stats->early_empty;
      break;
    }
    const Column& next = *columns[j];
    JoinAlgo algo = ChooseJoinAlgo(matches.size(), next.run_count(), planner);
    matches = RunStep(std::move(matches), next, algo, stats);
    if (on_step) on_step(j, algo, next.run_count(), matches.size());
  }
  return matches;
}

std::vector<LevelMatch> IntersectColumnsPlanned(
    const std::vector<const Column*>& columns,
    const std::vector<JoinAlgo>& algos, JoinOpStats* stats,
    const IntersectStepFn& on_step) {
  if (columns.empty()) return {};
  std::vector<LevelMatch> matches = SeedMatches(*columns[0]);
  for (size_t j = 1; j < columns.size(); ++j) {
    if (matches.empty()) {
      ++stats->early_empty;
      break;
    }
    const Column& next = *columns[j];
    JoinAlgo algo = algos[j - 1];
    matches = RunStep(std::move(matches), next, algo, stats);
    if (on_step) on_step(j, algo, next.run_count(), matches.size());
  }
  return matches;
}

}  // namespace xtopk
