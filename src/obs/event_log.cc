#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace xtopk {
namespace obs {
namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();  // never destroyed
  return *log;
}

void EventLog::Append(std::string_view kind, std::string_view text) {
  uint64_t sequence = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<size_t>(sequence % kCapacity)];
  // Seqlock write: odd marks in-progress. Two writers lapping each other on
  // the same slot (kCapacity appends apart) can interleave; the slot then
  // holds a blend and stays marked unstable until the last writer finishes,
  // which readers handle by skipping it.
  uint64_t seq = slot.seq.fetch_add(1, std::memory_order_acq_rel);
  (void)seq;
  slot.sequence = sequence;
  slot.ts_us = MonotonicNowUs();
  CopyTruncated(slot.kind, kKindBytes, kind);
  CopyTruncated(slot.text, kTextBytes, text);
  slot.seq.fetch_add(1, std::memory_order_release);
  XTOPK_COUNTER("obs.events.logged").Add(1);
}

std::vector<EventLog::Event> EventLog::Snapshot(size_t max) const {
  std::vector<Event> events;
  events.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    Event event;
    event.sequence = slot.sequence;
    event.ts_us = slot.ts_us;
    event.kind = slot.kind;
    event.text = slot.text;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) != before) continue;  // torn
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.sequence < b.sequence;
            });
  if (max != 0 && events.size() > max) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max));
  }
  return events;
}

std::string EventLog::ToJson(size_t max) const {
  std::string out = "{\"events\":[";
  bool first = true;
  for (const Event& event : Snapshot(max)) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"seq\":" + std::to_string(event.sequence);
    out += ",\"ts_us\":" + std::to_string(event.ts_us);
    out += ",\"kind\":\"";
    AppendEscaped(&out, event.kind);
    out += "\",\"text\":\"";
    AppendEscaped(&out, event.text);
    out += "\"}";
  }
  out += "]}";
  return out;
}

void LogEvent(std::string_view kind, std::string_view text) {
  EventLog::Global().Append(kind, text);
}

}  // namespace obs
}  // namespace xtopk
