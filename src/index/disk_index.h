#ifndef XTOPK_INDEX_DISK_INDEX_H_
#define XTOPK_INDEX_DISK_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "core/search_result.h"
#include "index/dag.h"
#include "index/jdewey_index.h"
#include "index/reader.h"
#include "storage/buffer_pool.h"
#include "storage/compression.h"
#include "storage/decoded_cache.h"
#include "storage/dictionary.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace xtopk {

class DiskJDeweyIndex;

/// A byte extent within a PageFile (blobs may span pages).
struct BlobExtent {
  PageId start_page = 0;
  uint32_t start_offset = 0;
  uint64_t length = 0;
};

/// Writes a JDeweyIndex into the paged on-disk layout:
///
///   data pages:   per term — lengths blob, optional scores blob, then one
///                 column blob per level (kAuto codec, §III-D); the
///                 directory blob is the last data blob
///   checksum table: one CRC32C (fixed32 LE) per data page
///   footer page:  magic "XTKDISK2", format version, directory extent,
///                 checksum-table extent, data page count, table CRC,
///                 footer CRC (over all preceding footer bytes)
///
/// Columns are separate blobs on purpose: a query that starts its scan at
/// level l0 (§III-B) touches only the pages of columns 1..l0.
///
/// Format version 3 (DESIGN.md §15) adds an optional compression sidecar
/// blob whose extent sits in the footer between the checksum-table extent
/// and the data page count: a flags byte, the front-coded term dictionary
/// (terms then live only there — directory entries drop their inline
/// names and file term ids become dictionary codes), the subtree-DAG
/// catalog, and per-term DAG metadata (which levels are stored
/// deduplicated, plus per-class row deltas). DAG-deduplicated column
/// blobs are written with the self-contained kDict codec; readers expand
/// them back to bit-identical full columns through
/// ExpandDedupColumnChecked. v1/v2 files stay readable, and Write without
/// compression options keeps emitting v2 (or v1) bytes.
class DiskIndexWriter {
 public:
  /// `codec` is forwarded to EncodeColumn for every column blob. The
  /// default (kAuto) picks run-length vs group-varint per column; tests
  /// pass kDelta to emulate segments written before the group-varint
  /// codec existed (the codec byte is self-describing, so old segments
  /// read back without a format version bump).
  ///
  /// `write_checksums=false` emits the legacy v1 layout (magic
  /// "XTKDISK1", no per-page CRCs) — segments written before the
  /// checksummed format existed. Readers accept both; legacy segments
  /// load unverified and bump storage.checksum.legacy_segments.
  static Status Write(const JDeweyIndex& index, bool include_scores,
                      const std::string& path,
                      ColumnCodec codec = ColumnCodec::kAuto,
                      bool write_checksums = true);

  /// Structure-aware compression knobs of the v3 layout. All off by
  /// default, in which case Write(…, options) emits exactly the legacy
  /// v2 (or v1) bytes.
  struct Options {
    ColumnCodec codec = ColumnCodec::kAuto;
    bool include_scores = true;
    bool write_checksums = true;
    /// Persist the term space as one front-coded dictionary; directory
    /// entries are written in sorted term order without inline names.
    bool dict_terms = false;
    /// Persist DAG-deduplicated columns (kDict codec) plus the catalog
    /// and expansion metadata for every list that carries DagListData.
    /// No-op when the index was built without enable_dag.
    bool dag = false;
    /// Dictionary-encode the per-row length and score streams
    /// (EncodeDictRows) instead of raw varints / floats.
    bool dict_rows = false;

    bool compressed() const { return dict_terms || dag || dict_rows; }
  };

  static Status Write(const JDeweyIndex& index, const std::string& path,
                      const Options& options);
};

/// Options for opening a disk index's shared read substrate.
struct DiskIndexOptions {
  /// Buffer-pool capacity in 8 KiB pages and its shard count.
  size_t pool_pages = 1024;
  size_t pool_shards = BufferPool::kDefaultShards;
  /// Byte budget of the decoded-block cache (0 disables it — every access
  /// re-decodes, the pre-cache behaviour).
  size_t decoded_cache_bytes = 32u << 20;
  /// Skip-decode: sessions of this environment load only the group-varint
  /// blocks whose value range can intersect the query's probe bounds
  /// (SearchComplete derives them from the seed list). Results are
  /// bit-identical either way; the XTOPK_DISABLE_SKIP environment
  /// variable (any value but "0") forces this off at Open for A/B runs.
  bool enable_skip = true;
  /// Verify the per-page CRC32C of v2 segments on every physical page
  /// read (cached hits are not re-verified). Legacy v1 segments have no
  /// checksums and always load unverified.
  bool verify_checksums = true;
  /// Bounded retry of failed physical reads (transient I/O errors and
  /// checksum mismatches both retry — in-flight damage is transient; true
  /// on-disk corruption just exhausts the attempts and surfaces as the
  /// last error). `io_retries` is the number of *re*-attempts after the
  /// first failure; each waits `retry_backoff_us` microseconds longer
  /// than the previous one.
  uint32_t io_retries = 3;
  uint32_t retry_backoff_us = 50;
};

/// Aggregate I/O / cache counters of one disk index environment. Page
/// reads come from the environment's own PageFile; the cache fields are
/// deltas of the process-wide MetricsRegistry counters (storage.pool.*,
/// storage.decoded.*) against a baseline captured at Open / ResetIoStats —
/// exact when one environment is active between reset and read, which is
/// how every caller scopes them.
struct DiskIoStats {
  uint64_t pages_read = 0;   ///< physical page reads since last reset
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t decoded_hits = 0;    ///< decoded-block cache hits
  uint64_t decoded_misses = 0;
};

/// The shared, thread-safe read substrate of one on-disk index: the page
/// file (pread-based reads), the sharded BufferPool above it, the
/// DecodedBlockCache above that, and the immutable directory + node
/// mapping loaded at Open. Any number of DiskJDeweyIndex sessions — one
/// per concurrently running query or worker thread — read through one
/// environment, so hot pages and decoded columns are shared across
/// queries while per-query materialization state stays private.
class DiskIndexEnv : public std::enable_shared_from_this<DiskIndexEnv> {
 public:
  /// Opens `path`, loading footer + directory (+ node mapping).
  static StatusOr<std::shared_ptr<DiskIndexEnv>> Open(
      const std::string& path, DiskIndexOptions options = {});

  /// A new empty session. Cheap (no I/O, borrows the node mapping);
  /// safe to call from any thread. The session keeps the environment
  /// alive. Each session is single-threaded; concurrency comes from using
  /// one session per worker.
  std::unique_ptr<DiskJDeweyIndex> NewSession();

  /// Frequency / deepest level from the directory alone (no data I/O).
  uint32_t Frequency(const std::string& term) const;
  uint32_t MaxLength(const std::string& term) const;
  /// Planner statistics from the optional `<path>.manifest` sidecar;
  /// nullptr when the sidecar is absent, damaged, or has no histograms
  /// for `term`. The sidecar is advisory — a missing or corrupt one never
  /// fails Open, it only costs plan quality.
  const TermStats* Stats(const std::string& term) const;
  size_t term_count() const {
    return dict_dir_.empty() ? directory_.size() : dict_dir_.size();
  }
  bool has_scores() const { return has_scores_; }
  /// Whether sessions may skip-decode (options.enable_skip, unless the
  /// XTOPK_DISABLE_SKIP environment variable overrode it at Open).
  bool skip_enabled() const { return skip_enabled_; }
  /// Whether this segment carries per-page checksums (v2 format) and the
  /// environment verifies them on physical reads.
  bool checksums_verified() const { return !page_crcs_.empty(); }

  /// The segment's (level, value) -> node mapping / deepest level, from
  /// the node map loaded at Open. Immutable, so safe from any thread
  /// without a session (SegmentSetVersion resolves nodes through these).
  NodeId NodeAt(uint32_t level, uint32_t value) const {
    return node_map_.NodeAt(level, value);
  }
  uint32_t max_level() const { return node_map_.max_level(); }

  DiskIoStats io_stats() const;
  void ResetIoStats();

  const BufferPool& pool() const { return *pool_; }
  const DecodedBlockCache& decoded_cache() const { return *decoded_; }

 private:
  friend class DiskJDeweyIndex;

  /// Immutable per-term directory entry (shared across sessions).
  struct TermInfo {
    uint32_t term_id = 0;  ///< directory order; the decoded-cache column id
    uint32_t rows = 0;
    uint32_t max_length = 0;
    BlobExtent lengths;
    BlobExtent scores;  // length 0 when the file carries no scores
    std::vector<BlobExtent> columns;  // one per level
  };

  /// v3 sidecar: per-term DAG expansion metadata (which column blobs are
  /// stored deduplicated, and this term's per-class instance row deltas).
  struct DagTermMeta {
    std::vector<char> has_dedup;  ///< index = level - 1
    std::unordered_map<uint32_t, std::vector<int64_t>> row_deltas;
  };

  DiskIndexEnv() = default;

  /// Directory entry of `term` through whichever term space is active —
  /// the hash map (v1/v2 and uncompressed v3) or the front-coded
  /// dictionary (v3 with dict_terms, where code == term id). nullptr when
  /// absent.
  const TermInfo* FindTerm(const std::string& term) const;

  /// Thread-safe (reads go through the pool / pread). Failed attempts —
  /// transient I/O errors or checksum mismatches — are retried up to
  /// options.io_retries times with linear backoff before the last error
  /// is surfaced; the pool never caches a page from a failed read, so
  /// each retry hits the disk again.
  Status ReadBlob(const BlobExtent& extent, std::string* out);
  Status ReadBlobOnce(const BlobExtent& extent, std::string* out);
  /// Reads an extent straight from the file, bypassing pool and verifier
  /// (used for the checksum table, which is covered by the footer's
  /// table CRC rather than by itself).
  Status ReadBlobUnpooled(const BlobExtent& extent, std::string* out);
  /// The verifier installed on the buffer pool for v2 segments.
  Status VerifyPage(PageId id, const std::string& page) const;

  /// Plain PageFile normally; the fault-injecting wrapper when the
  /// process-wide FaultInjector is armed (tests, XTOPK_FAULT_INJECT).
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<DecodedBlockCache> decoded_;
  bool has_scores_ = false;
  bool skip_enabled_ = true;
  uint32_t io_retries_ = 3;
  uint32_t retry_backoff_us_ = 50;
  /// Registry counter values at Open / last ResetIoStats; io_stats()
  /// reports the deltas since then (pages_read excluded — it stays on the
  /// PageFile instance).
  DiskIoStats stats_baseline_;
  /// v2 segments: CRC32C of each data page, indexed by PageId; empty for
  /// legacy v1 segments (nothing to verify).
  std::vector<uint32_t> page_crcs_;
  std::unordered_map<std::string, TermInfo> directory_;
  /// v3 dict_terms segments: the directory keyed by dictionary code
  /// instead of the hash map above (exactly one of the two is populated).
  FrontCodedDict term_dict_;
  std::vector<TermInfo> dict_dir_;
  /// v3 compression state (empty / false on v1/v2 segments).
  bool dict_rows_ = false;
  std::shared_ptr<const DagCatalog> dag_catalog_;
  std::vector<std::unique_ptr<DagTermMeta>> dag_meta_;  ///< by term id
  /// Per-term planner statistics from the manifest sidecar (empty when
  /// none was found). Immutable after Open, so shared across sessions.
  std::unordered_map<std::string, TermStats> term_stats_;
  /// Holds only the (level, value) -> node mapping + max level; sessions
  /// borrow it instead of copying it (it can dominate the directory size).
  JDeweyIndex node_map_;
};

/// Read side: a *session* over a shared DiskIndexEnv. Materializes each
/// queried term's columns lazily and only down to the level the query
/// needs. This is the paper's I/O story — "the algorithm does not read the
/// whole JDewey sequences from the disk at once … this would save disk I/O
/// when the XML tree is deep and some keywords only appear at high levels."
///
/// A session is not thread-safe; it is the per-query (or per-worker) view.
/// All sessions of one environment share its buffer pool and decoded-block
/// cache, so a list decoded by one query is a memcpy for the next.
///
/// A session IS a TermSource: JoinSearch / TopKSearch run directly against
/// it, which is what makes the disk path share the single implementation of
/// the paper's algorithms (Resolve = LoadList, bounds = skip-decode).
class DiskJDeweyIndex : public TermSource {
 public:
  using IoStats = DiskIoStats;

  /// Convenience: opens a private environment and returns its first
  /// session (the single-threaded usage most tests and tools want).
  static StatusOr<std::unique_ptr<DiskJDeweyIndex>> Open(
      const std::string& path, size_t pool_pages = 1024);

  /// Materializes `term`'s list with columns 1..up_to_level (clamped to
  /// the list's max length). Cached; later calls extend as needed.
  /// `need_scores` skips the scores blob (Fig. 9-style unranked runs).
  /// Returns nullptr if the term is absent.
  StatusOr<const JDeweyList*> LoadList(const std::string& term,
                                       uint32_t up_to_level,
                                       bool need_scores = true);

  /// Bounds-aware variant: `level_bounds[l - 1]` is the value range the
  /// query can touch at level l. Group-varint columns are materialized
  /// partially — only the blocks overlapping the range — which is sound
  /// whenever the caller joins the result against a list whose values all
  /// lie inside the bounds (the partial column is a superset of every run
  /// with a value in range). Levels already materialized more widely are
  /// left as-is; narrower prior loads are widened to the union range.
  StatusOr<const JDeweyList*> LoadList(
      const std::string& term, uint32_t up_to_level, bool need_scores,
      const std::vector<ValueBounds>* level_bounds);

  /// Frequency from the directory alone (no data I/O).
  uint32_t Frequency(const std::string& term) const override;
  /// Deepest occurrence level from the directory alone.
  uint32_t MaxLength(const std::string& term) const override;

  /// TermSource: Resolve is LoadList (bounded loads become skip-decodes
  /// when the environment has skip enabled; otherwise bounds are ignored
  /// inside MaterializeColumns and the full columns load).
  StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t up_to_level, bool need_scores,
      const std::vector<ValueBounds>* level_bounds) override {
    return LoadList(term, up_to_level, need_scores, level_bounds);
  }
  NodeId NodeAt(uint32_t level, uint32_t value) const override {
    return view_.NodeAt(level, value);
  }
  uint32_t max_level() const override { return view_.max_level(); }
  const TermStats* Stats(const std::string& term) const override {
    return env_->Stats(term);
  }

  /// Evaluates a complete-result query against the disk-resident index:
  /// computes l0 from the directory, loads only columns 1..l0 of each
  /// keyword, and runs the join-based algorithm (Algorithm 1).
  StatusOr<std::vector<SearchResult>> SearchComplete(
      const std::vector<std::string>& keywords,
      JoinSearchOptions options = {});

  /// Like SearchComplete, and additionally copies the per-query
  /// JoinSearchStats (race-free: the counters live in the per-session
  /// JoinSearch object, never in shared state).
  StatusOr<std::vector<SearchResult>> SearchComplete(
      const std::vector<std::string>& keywords, JoinSearchOptions options,
      JoinSearchStats* stats);

  /// Top-k against the disk-resident index. The top-K algorithm's
  /// semantic pruning probes components below the current column, so the
  /// queried lists are materialized fully (all columns + scores) and the
  /// score segments derived on the fly.
  StatusOr<std::vector<SearchResult>> SearchTopK(
      const std::vector<std::string>& keywords, TopKSearchOptions options);

  /// A view usable by JoinSearch directly; contains exactly the lists
  /// loaded so far plus the (borrowed) node mapping.
  const JDeweyIndex& view() const { return view_; }

  /// Environment-wide counters (shared across sessions).
  IoStats io_stats() const { return env_->io_stats(); }
  void ResetIoStats() { env_->ResetIoStats(); }

  size_t term_count() const { return env_->term_count(); }
  const DiskIndexEnv& env() const { return *env_; }

 private:
  friend class DiskIndexEnv;

  /// What part of one level's column this session has materialized.
  struct LevelCoverage {
    bool full = false;     ///< whole column present in view_
    bool partial = false;  ///< contiguous block range [lo_block, hi_block)
    uint32_t lo_block = 0;
    uint32_t hi_block = 0;
  };

  /// Session-local materialization state of one term.
  struct TermState {
    bool scores_loaded = false;
    /// Slot in view_.
    uint32_t view_id = UINT32_MAX;
    /// Per-level coverage, index = level - 1 (sized at first load).
    std::vector<LevelCoverage> coverage;
    /// v3 DAG terms: the session's mutable DagListData (the list holds a
    /// const view of the same object). has_dedup flips on per level as
    /// the deduplicated columns materialize.
    std::shared_ptr<DagListData> dag;
  };

  explicit DiskJDeweyIndex(std::shared_ptr<DiskIndexEnv> env);

  Status MaterializeBase(const std::string& term,
                         const DiskIndexEnv::TermInfo& info, TermState* state,
                         bool need_scores);
  Status MaterializeScores(const DiskIndexEnv::TermInfo& info,
                           TermState* state);
  Status MaterializeColumns(const DiskIndexEnv::TermInfo& info,
                            TermState* state, uint32_t up_to_level,
                            const std::vector<ValueBounds>* level_bounds);

  std::shared_ptr<DiskIndexEnv> env_;
  std::unordered_map<uint32_t, TermState> state_;  // keyed by term_id
  JDeweyIndex view_;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_DISK_INDEX_H_
