// Ablation A3 (paper §III-C): dynamic join-algorithm selection vs forcing
// the merge join or the index join for every step. The paper's claim: at
// very low frequencies the index join is the right pick, beyond ~1000 the
// dynamic optimizer switches to merge ("if we force the query plan to use
// the index join, the performance can be as bad as the index-based
// algorithm").

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/join_search.h"

namespace {

double AvgMs(const xtopk::JDeweyIndex& jindex, xtopk::JoinPolicy policy,
             const std::vector<std::vector<std::string>>& queries,
             uint64_t* index_joins, uint64_t* merge_joins) {
  double total = 0;
  *index_joins = *merge_joins = 0;
  for (const auto& query : queries) {
    xtopk::JoinSearchOptions options;
    options.compute_scores = false;
    options.planner.policy = policy;
    xtopk::JoinSearch search(jindex, options);
    total += xtopk::bench::TimeOnceMs([&] { search.Search(query); });
    *index_joins += search.stats().join_ops.index_joins;
    *merge_joins += search.stats().join_ops.merge_joins;
  }
  return total / queries.size();
}

}  // namespace

int main() {
  xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();

  std::printf("=== Ablation A3: dynamic join selection (3 keywords) ===\n");
  std::printf("%-10s %12s %12s %12s   %s\n", "low freq", "dynamic",
              "force-merge", "force-index", "dynamic picks (index/merge)");
  for (uint32_t f : xtopk::bench::kLowFreqs) {
    std::vector<std::vector<std::string>> queries;
    for (size_t i = 0; i < xtopk::bench::kQueriesPerPoint; ++i) {
      queries.push_back(xtopk::bench::MixedQuery(f, 3, i));
    }
    uint64_t dyn_idx, dyn_merge, tmp_a, tmp_b;
    double dynamic =
        AvgMs(jindex, xtopk::JoinPolicy::kDynamic, queries, &dyn_idx,
              &dyn_merge);
    double merge =
        AvgMs(jindex, xtopk::JoinPolicy::kForceMerge, queries, &tmp_a, &tmp_b);
    double index =
        AvgMs(jindex, xtopk::JoinPolicy::kForceIndex, queries, &tmp_a,
              &tmp_b);
    std::printf("%-10u %9.3f ms %9.3f ms %9.3f ms   %llu/%llu\n", f, dynamic,
                merge, index, (unsigned long long)dyn_idx,
                (unsigned long long)dyn_merge);
  }
  std::printf(
      "\nexpected shape: dynamic tracks the best forced plan at both ends\n");
  return 0;
}
