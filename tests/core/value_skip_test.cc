#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/topk_search.h"
#include "core/topk_star_join.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;

void ExpectSameTopK(const std::vector<SearchResult>& a,
                    const std::vector<SearchResult>& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << what << " result " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " result " << i;  // bit-equal
  }
}

TEST(ValueSkipTest, TopKValueRangeSkipIsBitIdentical) {
  for (uint64_t seed : {401u, 402u, 403u, 404u}) {
    XmlTree tree = MakeRandomTree(seed, 800, 4, 8,
                                  {"alpha", "beta", "gamma"}, 0.1);
    IndexBuilder builder(tree, IndexBuildOptions{});
    JDeweyIndex jindex = builder.BuildJDeweyIndex();
    TopKIndex topk = builder.BuildTopKIndex(jindex);
    for (const auto& query : std::vector<std::vector<std::string>>{
             {"alpha", "beta"}, {"alpha", "beta", "gamma"}}) {
      TopKSearchOptions with_skip;
      with_skip.k = 6;
      with_skip.value_range_skip = true;
      TopKSearchOptions no_skip = with_skip;
      no_skip.value_range_skip = false;
      TopKSearch search_skip(topk, with_skip);
      TopKSearch search_plain(topk, no_skip);
      ExpectSameTopK(search_skip.Search(query), search_plain.Search(query),
                     "seed=" + std::to_string(seed));
    }
  }
}

TEST(ValueSkipTest, DisjointSubtreesTriggerColumnSkips) {
  // "left" only under the first child of the root, "right" only under the
  // second: at deep levels their column value ranges cannot intersect, so
  // the skip fires; any LCA sits near the root.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AddChild(root, "a");
  NodeId b = tree.AddChild(root, "b");
  for (int i = 0; i < 40; ++i) {
    NodeId la = tree.AddChild(a, "x");
    tree.AppendText(la, "left");
    NodeId lb = tree.AddChild(b, "x");
    tree.AppendText(lb, "right");
  }
  IndexBuildOptions build;
  build.index_tag_names = false;
  IndexBuilder builder(tree, build);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk = builder.BuildTopKIndex(jindex);

  TopKSearchOptions options;
  options.k = 4;
  TopKSearch with_skip(topk, options);
  auto got = with_skip.Search({"left", "right"});
  EXPECT_GT(with_skip.stats().columns_value_skipped, 0u);

  options.value_range_skip = false;
  TopKSearch without(topk, options);
  ExpectSameTopK(got, without.Search({"left", "right"}), "disjoint");
}

TEST(ValueSkipTest, StarJoinIdBoundsDropOutsidersOnly) {
  // Joinable ids all lie in [100, 200); each relation also carries ids
  // outside that window that never complete. With the caller-guaranteed
  // bounds the join must return the same rows while skipping the rest.
  std::vector<RankedTuple> r1, r2;
  for (uint64_t id = 100; id < 200; ++id) {
    r1.push_back({id, 1.0 / static_cast<double>(id)});
    r2.push_back({id, 2.0 / static_cast<double>(id)});
  }
  for (uint64_t id = 0; id < 100; ++id) {
    r1.push_back({id, 0.9 / (1.0 + static_cast<double>(id))});
  }
  for (uint64_t id = 300; id < 400; ++id) {
    r2.push_back({id, 1.7 / static_cast<double>(id - 250)});
  }
  auto by_score = [](const RankedTuple& x, const RankedTuple& y) {
    return x.score > y.score;
  };
  std::sort(r1.begin(), r1.end(), by_score);
  std::sort(r2.begin(), r2.end(), by_score);

  StarJoinOptions plain;
  plain.k = 10;
  VectorRankedSource s1(r1), s2(r2);
  TopKStarJoin join_plain({&s1, &s2}, plain);
  auto want = join_plain.Run();

  StarJoinOptions bounded = plain;
  bounded.use_id_bounds = true;
  bounded.id_lo = 100;
  bounded.id_hi = 199;
  VectorRankedSource t1(r1), t2(r2);
  TopKStarJoin join_bounded({&t1, &t2}, bounded);
  auto got = join_bounded.Run();

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << i;
    EXPECT_EQ(got[i].score, want[i].score) << i;
  }
  EXPECT_GT(join_bounded.stats().tuples_skipped, 0u);
  EXPECT_EQ(join_plain.stats().tuples_skipped, 0u);
}

TEST(ValueSkipTest, StarJoinFullRangeBoundsAreNoOp) {
  std::vector<RankedTuple> r1 = {{1, 1.0}, {2, 0.9}, {3, 0.2}};
  std::vector<RankedTuple> r2 = {{2, 0.8}, {3, 0.7}, {4, 0.6}};
  StarJoinOptions bounded;
  bounded.k = 2;
  bounded.use_id_bounds = true;  // default [0, UINT64_MAX]: nothing skipped
  VectorRankedSource s1(r1), s2(r2);
  TopKStarJoin join({&s1, &s2}, bounded);
  auto results = join.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_EQ(join.stats().tuples_skipped, 0u);
}

}  // namespace
}  // namespace xtopk
