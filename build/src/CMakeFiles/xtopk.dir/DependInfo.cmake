
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/elca_eval.cc" "src/CMakeFiles/xtopk.dir/baseline/elca_eval.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/baseline/elca_eval.cc.o.d"
  "/root/repo/src/baseline/indexed_lookup.cc" "src/CMakeFiles/xtopk.dir/baseline/indexed_lookup.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/baseline/indexed_lookup.cc.o.d"
  "/root/repo/src/baseline/naive.cc" "src/CMakeFiles/xtopk.dir/baseline/naive.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/baseline/naive.cc.o.d"
  "/root/repo/src/baseline/rdil.cc" "src/CMakeFiles/xtopk.dir/baseline/rdil.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/baseline/rdil.cc.o.d"
  "/root/repo/src/baseline/stack_search.cc" "src/CMakeFiles/xtopk.dir/baseline/stack_search.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/baseline/stack_search.cc.o.d"
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/xtopk.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/btree/btree.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/xtopk.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/engine.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/xtopk.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/join_ops.cc" "src/CMakeFiles/xtopk.dir/core/join_ops.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/join_ops.cc.o.d"
  "/root/repo/src/core/join_planner.cc" "src/CMakeFiles/xtopk.dir/core/join_planner.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/join_planner.cc.o.d"
  "/root/repo/src/core/join_search.cc" "src/CMakeFiles/xtopk.dir/core/join_search.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/join_search.cc.o.d"
  "/root/repo/src/core/multi_doc.cc" "src/CMakeFiles/xtopk.dir/core/multi_doc.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/multi_doc.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/CMakeFiles/xtopk.dir/core/scoring.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/scoring.cc.o.d"
  "/root/repo/src/core/topk_search.cc" "src/CMakeFiles/xtopk.dir/core/topk_search.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/topk_search.cc.o.d"
  "/root/repo/src/core/topk_star_join.cc" "src/CMakeFiles/xtopk.dir/core/topk_star_join.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/topk_star_join.cc.o.d"
  "/root/repo/src/core/updatable_engine.cc" "src/CMakeFiles/xtopk.dir/core/updatable_engine.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/core/updatable_engine.cc.o.d"
  "/root/repo/src/index/dewey_index.cc" "src/CMakeFiles/xtopk.dir/index/dewey_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/dewey_index.cc.o.d"
  "/root/repo/src/index/disk_index.cc" "src/CMakeFiles/xtopk.dir/index/disk_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/disk_index.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/CMakeFiles/xtopk.dir/index/index_builder.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/index_builder.cc.o.d"
  "/root/repo/src/index/index_io.cc" "src/CMakeFiles/xtopk.dir/index/index_io.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/index_io.cc.o.d"
  "/root/repo/src/index/index_stats.cc" "src/CMakeFiles/xtopk.dir/index/index_stats.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/index_stats.cc.o.d"
  "/root/repo/src/index/index_validate.cc" "src/CMakeFiles/xtopk.dir/index/index_validate.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/index_validate.cc.o.d"
  "/root/repo/src/index/jdewey_index.cc" "src/CMakeFiles/xtopk.dir/index/jdewey_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/jdewey_index.cc.o.d"
  "/root/repo/src/index/rdil_index.cc" "src/CMakeFiles/xtopk.dir/index/rdil_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/rdil_index.cc.o.d"
  "/root/repo/src/index/topk_index.cc" "src/CMakeFiles/xtopk.dir/index/topk_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/index/topk_index.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/xtopk.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/xtopk.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/compression.cc" "src/CMakeFiles/xtopk.dir/storage/compression.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/compression.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/xtopk.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/page_file.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "src/CMakeFiles/xtopk.dir/storage/serializer.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/serializer.cc.o.d"
  "/root/repo/src/storage/sparse_index.cc" "src/CMakeFiles/xtopk.dir/storage/sparse_index.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/storage/sparse_index.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/xtopk.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xtopk.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/xtopk.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/varint.cc" "src/CMakeFiles/xtopk.dir/util/varint.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/util/varint.cc.o.d"
  "/root/repo/src/workload/dblp_gen.cc" "src/CMakeFiles/xtopk.dir/workload/dblp_gen.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/workload/dblp_gen.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/xtopk.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/vocab.cc" "src/CMakeFiles/xtopk.dir/workload/vocab.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/workload/vocab.cc.o.d"
  "/root/repo/src/workload/xmark_gen.cc" "src/CMakeFiles/xtopk.dir/workload/xmark_gen.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/workload/xmark_gen.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/xtopk.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/workload/zipf.cc.o.d"
  "/root/repo/src/xml/dewey.cc" "src/CMakeFiles/xtopk.dir/xml/dewey.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/dewey.cc.o.d"
  "/root/repo/src/xml/jdewey.cc" "src/CMakeFiles/xtopk.dir/xml/jdewey.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/jdewey.cc.o.d"
  "/root/repo/src/xml/jdewey_builder.cc" "src/CMakeFiles/xtopk.dir/xml/jdewey_builder.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/jdewey_builder.cc.o.d"
  "/root/repo/src/xml/tokenizer.cc" "src/CMakeFiles/xtopk.dir/xml/tokenizer.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/tokenizer.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/xtopk.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_tree.cc" "src/CMakeFiles/xtopk.dir/xml/xml_tree.cc.o" "gcc" "src/CMakeFiles/xtopk.dir/xml/xml_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
