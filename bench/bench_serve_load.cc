// Query-service load generator (DESIGN.md §16 "Query service").
//
// Two sections, each emitting one machine-readable BENCH line:
//
//   A. closed loop — N clients issue blocking Execute() calls back-to-back
//      against a QueryService worker pool. Throughput here is the service
//      capacity (the knee of the latency curve), and the latency
//      percentiles are the un-queued service times.
//   B. open loop at 2x overload — a dispatcher offers 2x the measured
//      capacity with burst-corrected pacing, 25% high / 75% low priority,
//      every request carrying a 50 ms deadline. Under overload the service
//      must shed (typed kShedOverload + retry hint) rather than queue
//      without bound: the line reports goodput (kOk per second), shed
//      latency p99 (sheds are answered inline, so microseconds), and
//      queue_collapse — requests still unanswered after the drain window,
//      which must be zero.
//
// The CI perf-smoke gate greps these lines and asserts
//   goodput >= 0.8 * capacity, shed p99 < 100 ms, queue_collapse == 0.
//
// The result cache is sized far below the distinct-query pool so the
// engine stays on the critical path; the cache hit rate is reported so a
// future regression (cache suddenly absorbing the load) is visible.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "serve/protocol.h"
#include "serve/query_service.h"
#include "workload/dblp_gen.h"

namespace {

using namespace xtopk;
using serve::Priority;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::QueryService;
using serve::QueryServiceOptions;
using serve::ResponseStatus;

constexpr size_t kWorkers = 4;
constexpr size_t kClosedClients = 8;   // > workers: keeps the pool saturated
constexpr uint64_t kDeadlineUs = 50'000;
constexpr uint32_t kRetryAfterMs = 25;

double SecondsEnv(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The serving corpus: smaller than the figure benches (the perf gate
/// runs on every CI push) but with the same planted-frequency shape.
struct ServeCorpus {
  XmlTree tree;
  std::vector<std::vector<std::string>> queries;
};

ServeCorpus BuildServeCorpus() {
  DblpGenOptions gen;
  gen.num_conferences = 30;
  gen.years_per_conference = 8;
  gen.papers_per_year = 25 * bench::BenchScale();
  gen.seed = 2029;
  for (uint32_t i = 0; i < 4; ++i) {
    gen.planted.push_back({"hi" + std::to_string(i), 2000, "", 0.0});
  }
  for (uint32_t i = 0; i < 8; ++i) {
    gen.planted.push_back({"lo100q" + std::to_string(i), 100, "", 0.0});
    gen.planted.push_back({"lo1000q" + std::to_string(i), 1000, "", 0.0});
  }
  ServeCorpus corpus;
  DblpCorpus dblp = GenerateDblp(gen);
  corpus.tree = std::move(dblp.tree);
  std::fprintf(stderr, "[bench] serve corpus: %zu nodes\n",
               corpus.tree.node_count());
  // 16 distinct mixed-frequency queries — the steady-state recurring mix.
  for (uint32_t i = 0; i < 8; ++i) {
    corpus.queries.push_back(
        {"lo100q" + std::to_string(i), "hi" + std::to_string(i % 4)});
    corpus.queries.push_back({"lo1000q" + std::to_string(i),
                              "hi" + std::to_string(i % 4),
                              "hi" + std::to_string((i + 1) % 4)});
  }
  return corpus;
}

QueryRequest MakeRequest(const ServeCorpus& corpus, uint64_t seq,
                         Priority priority) {
  QueryRequest request;
  request.request_id = static_cast<uint32_t>(seq);
  request.priority = priority;
  request.k = 10;
  request.deadline_us = kDeadlineUs;
  request.keywords = corpus.queries[seq % corpus.queries.size()];
  return request;
}

double PercentileUs(std::vector<uint64_t>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted_us.size()));
  if (rank >= sorted_us.size()) rank = sorted_us.size() - 1;
  return static_cast<double>(sorted_us[rank]);
}

QueryServiceOptions ServiceOptions() {
  QueryServiceOptions options;
  options.workers = kWorkers;
  options.max_queue_high = 32;
  options.max_queue_low = 32;
  options.retry_after_ms = kRetryAfterMs;
  // Far below the 16-query rotation x nothing: engine work dominates.
  options.result_cache_capacity = 4;
  return options;
}

struct ClosedLoopResult {
  double capacity_qps = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
};

/// Section A: blocking clients back-to-back = service capacity.
ClosedLoopResult RunClosedLoop(const ServeCorpus& corpus,
                               serve::EngineBackend& backend,
                               double seconds) {
  QueryService service(&backend, ServiceOptions());
  std::atomic<uint64_t> sequence{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> latencies(kClosedClients);

  // Warm the engine's per-term state once per distinct query.
  for (size_t i = 0; i < corpus.queries.size(); ++i) {
    service.Execute(MakeRequest(corpus, i, Priority::kHigh));
  }

  uint64_t start = NowUs();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClosedClients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
        uint64_t begin = NowUs();
        QueryResponse response =
            service.Execute(MakeRequest(corpus, seq, Priority::kHigh));
        if (response.status == ResponseStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
          latencies[c].push_back(NowUs() - begin);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& client : clients) client.join();
  double elapsed = static_cast<double>(NowUs() - start) / 1e6;
  service.Stop();

  std::vector<uint64_t> merged;
  for (auto& bucket : latencies) {
    merged.insert(merged.end(), bucket.begin(), bucket.end());
  }
  std::sort(merged.begin(), merged.end());

  ClosedLoopResult result;
  result.capacity_qps = static_cast<double>(ok.load()) / elapsed;
  result.p50_us = PercentileUs(merged, 0.50);
  result.p99_us = PercentileUs(merged, 0.99);
  result.p999_us = PercentileUs(merged, 0.999);

  bench::BenchJson("serve_load")
      .Field("section", "closed_loop")
      .Field("clients", static_cast<uint64_t>(kClosedClients))
      .Field("workers", static_cast<uint64_t>(kWorkers))
      .Field("ok", ok.load())
      .Field("capacity_qps", result.capacity_qps)
      .Field("p50_us", result.p50_us)
      .Field("p99_us", result.p99_us)
      .Field("p999_us", result.p999_us)
      .Emit();
  return result;
}

/// Section B: offered load = 2x capacity; the service must shed, not
/// collapse.
void RunOverload(const ServeCorpus& corpus, serve::EngineBackend& backend,
                 double capacity_qps, double seconds) {
  QueryService service(&backend, ServiceOptions());
  double offered_qps = 2.0 * capacity_qps;

  std::mutex mu;
  std::vector<uint64_t> ok_us, shed_us;
  uint64_t expired = 0, other = 0;
  std::atomic<uint64_t> answered{0};

  uint64_t submitted = 0;
  uint64_t start = NowUs();
  uint64_t horizon = start + static_cast<uint64_t>(seconds * 1e6);
  while (true) {
    uint64_t now = NowUs();
    if (now >= horizon) break;
    // Burst-corrected pacing: submit the arrival deficit, then nap. At
    // high offered rates per-request sleeps would under-offer.
    uint64_t due = static_cast<uint64_t>(
        offered_qps * static_cast<double>(now - start) / 1e6);
    while (submitted < due) {
      Priority priority =
          (submitted % 4 == 0) ? Priority::kHigh : Priority::kLow;
      uint64_t begin = NowUs();
      service.Submit(
          MakeRequest(corpus, submitted, priority),
          [&, begin](QueryResponse response) {
            uint64_t latency = NowUs() - begin;
            {
              std::lock_guard<std::mutex> lock(mu);
              switch (response.status) {
                case ResponseStatus::kOk:
                  ok_us.push_back(latency);
                  break;
                case ResponseStatus::kShedOverload:
                  shed_us.push_back(latency);
                  break;
                case ResponseStatus::kDeadlineExpired:
                case ResponseStatus::kPartial:
                  ++expired;
                  break;
                default:
                  ++other;
              }
            }
            answered.fetch_add(1, std::memory_order_release);
          });
      ++submitted;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  double offered_elapsed = static_cast<double>(NowUs() - start) / 1e6;

  // Drain window: every submitted request must be answered promptly —
  // an unanswered request is queue collapse, the thing shedding exists
  // to prevent.
  uint64_t drain_deadline = NowUs() + 2'000'000;
  while (answered.load(std::memory_order_acquire) < submitted &&
         NowUs() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  uint64_t queue_collapse = submitted - answered.load();
  service.Stop();

  std::lock_guard<std::mutex> lock(mu);
  std::sort(ok_us.begin(), ok_us.end());
  std::sort(shed_us.begin(), shed_us.end());
  double goodput = static_cast<double>(ok_us.size()) / offered_elapsed;
  serve::QueryServiceStats stats = service.stats();

  bench::BenchJson("serve_load")
      .Field("section", "overload_2x")
      .Field("offered_qps", offered_qps)
      .Field("submitted", submitted)
      .Field("goodput_qps", goodput)
      .Field("goodput_ratio",
             capacity_qps > 0 ? goodput / capacity_qps : 0.0)
      .Field("ok", static_cast<uint64_t>(ok_us.size()))
      .Field("shed", static_cast<uint64_t>(shed_us.size()))
      .Field("expired", expired)
      .Field("errors", other)
      .Field("queue_collapse", queue_collapse)
      .Field("ok_p50_us", PercentileUs(ok_us, 0.50))
      .Field("ok_p99_us", PercentileUs(ok_us, 0.99))
      .Field("ok_p999_us", PercentileUs(ok_us, 0.999))
      .Field("shed_p99_us", PercentileUs(shed_us, 0.99))
      .Field("cache_hit_rate",
             bench::HitRate(stats.cache_hits, stats.cache_misses))
      .Emit();
}

}  // namespace

int main() {
  ServeCorpus corpus = BuildServeCorpus();
  Engine engine(corpus.tree);
  serve::EngineBackend backend(&engine);

  double closed_seconds = SecondsEnv("XTOPK_SERVE_BENCH_SECONDS", 1.5);
  ClosedLoopResult capacity = RunClosedLoop(corpus, backend, closed_seconds);
  RunOverload(corpus, backend, capacity.capacity_qps, closed_seconds);
  return 0;
}
