// Cost-based planning is a pure performance feature: on every corpus,
// workload, and backend, a DP-planned query must return bit-identical
// results to the observed-size heuristic. This suite sweeps the
// differential harness's seeded corpora over memory / disk / segmented
// backends with the planner on and off, and checks the plan cache's
// watermark behavior: hits on repeats, invalidation on seal and compact.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "core/plan_cache.h"
#include "core/topk_search.h"
#include "core/updatable_engine.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "index/segment.h"
#include "index/segment_builder.h"
#include "storage/segment_manifest.h"
#include "testing/corpus.h"
#include "xml/jdewey_builder.h"

namespace xtopk {
namespace {

using testing::CorpusSpec;
using testing::MakeCorpusSpec;
using testing::MakeCorpusTree;
using testing::MakeRandomWorkload;
using testing::WorkloadQuery;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Bit-identical comparison: same count, same nodes in the same order,
/// exactly equal scores (the join emits matches in value order and sums
/// scores in query-keyword order — neither depends on the join order, so
/// the planned and heuristic paths must agree to the last bit).
void ExpectBitIdentical(const std::vector<SearchResult>& got,
                        const std::vector<SearchResult>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << label << " rank " << i;
    EXPECT_EQ(got[i].level, want[i].level) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

class PlannerCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerCorrectnessTest, PlannedEqualsHeuristicOnEveryBackend) {
  const uint64_t seed = GetParam();
  CorpusSpec spec = MakeCorpusSpec(seed);
  XmlTree tree = MakeCorpusTree(spec);
  std::vector<WorkloadQuery> workload = MakeRandomWorkload(spec, 8);

  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  ASSERT_TRUE(jindex.has_stats()) << "build-time stats missing";

  // Disk backend (stats from the auto-written manifest sidecar).
  std::string disk_path = TempPath("planner_corr_" + std::to_string(seed));
  ASSERT_TRUE(
      DiskIndexWriter::Write(jindex, /*include_scores=*/true, disk_path).ok());
  auto env = DiskIndexEnv::Open(disk_path, DiskIndexOptions{});
  ASSERT_TRUE(env.ok()) << env.status().ToString();

  // Segmented backend: sealed disk segments + memtable, stats aggregated
  // from the manifests alone.
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, build_options.jdewey_gap);
  size_t sealed_parts = 1 + static_cast<size_t>(seed % 3);
  std::vector<std::vector<NodeId>> groups(sealed_parts + 1);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    groups[id % groups.size()].push_back(id);
  }
  JDeweyIndex memtable =
      BuildSegmentIndex(tree, enc, groups.back(), build_options);
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(tree.node_count());
  std::vector<std::string> cleanup = {disk_path, disk_path + ".manifest"};
  for (size_t i = 0; i < sealed_parts; ++i) {
    JDeweyIndex segment =
        BuildSegmentIndex(tree, enc, groups[i], build_options);
    std::string path = TempPath("planner_corr_" + std::to_string(seed) +
                                "_seg" + std::to_string(i));
    ASSERT_TRUE(
        DiskIndexWriter::Write(segment, /*include_scores=*/true, path).ok());
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = groups[i].size();
    ASSERT_TRUE(manifest.Save(path + ".manifest").ok());
    ASSERT_TRUE(segmented.AddDiskSegment(path).ok());
    cleanup.push_back(path);
    cleanup.push_back(path + ".manifest");
  }
  segmented.SetMemtable(&memtable);

  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const WorkloadQuery& query = workload[qi];
    std::string label = "seed=" + std::to_string(seed) +
                        " query=" + std::to_string(qi);

    bool all_terms_present = true;
    for (const std::string& kw : query.keywords) {
      if (jindex.Frequency(kw) == 0) all_terms_present = false;
    }
    auto run = [&](TermSource* source, bool planned) {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      options.use_planner = planned;
      JoinSearch search(source, options);
      std::vector<SearchResult> results = search.Search(query.keywords);
      EXPECT_TRUE(search.status().ok()) << label;
      if (planned && all_terms_present) {
        EXPECT_TRUE(search.stats().planned) << label << " planner inactive";
      }
      return results;
    };

    // Memory backend.
    MemoryTermSource memory(jindex);
    std::vector<SearchResult> want = run(&memory, false);
    ExpectBitIdentical(run(&memory, true), want, label + " memory");

    // Disk backend (one session per run; sessions are single-use cursors).
    {
      auto heuristic_session = (*env)->NewSession();
      auto planned_session = (*env)->NewSession();
      ExpectBitIdentical(run(planned_session.get(), true),
                         run(heuristic_session.get(), false),
                         label + " disk");
    }

    // Segmented backend.
    ExpectBitIdentical(run(&segmented, true), run(&segmented, false),
                       label + " segmented");

    // Top-K with forced complete-join sweeps: planned and heuristic sweep
    // orders must emit the same ranked prefix.
    {
      auto run_topk = [&](bool planned) {
        TopKSearchOptions options;
        options.semantics = query.semantics;
        options.k = query.k;
        options.hybrid_min_matches = 1e9;  // always sweep
        options.use_planner = planned;
        TopKSearch search(&segmented, options);
        return search.Search(query.keywords);
      };
      ExpectBitIdentical(run_topk(true), run_topk(false), label + " topk");
    }
  }
  for (const std::string& path : cleanup) std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerCorrectnessTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

/// A corpus where "alpha" and "beta" definitely occur (cache tests must
/// not depend on a random corpus happening to plant both terms).
XmlTree MakePlantedTree() {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  for (int i = 0; i < 20; ++i) {
    NodeId group = tree.AddChild(root, "g");
    NodeId x = tree.AddChild(group, "x");
    tree.AppendText(x, "alpha");
    NodeId y = tree.AddChild(group, "y");
    tree.AppendText(y, i % 2 == 0 ? "beta alpha" : "beta");
  }
  return tree;
}

TEST(PlanCacheBehaviorTest, RepeatedQueriesHitAfterFirstMiss) {
  XmlTree tree = MakePlantedTree();
  IndexBuilder builder(tree, IndexBuildOptions{});
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  MemoryTermSource source(jindex);

  PlanCache cache;
  JoinSearchOptions options;
  options.plan_cache = &cache;
  JoinSearch search(&source, options);
  std::vector<std::string> keywords = {"alpha", "beta"};
  std::vector<SearchResult> first = search.Search(keywords);
  EXPECT_FALSE(search.stats().plan_cache_hit);
  for (int i = 0; i < 19; ++i) {
    ExpectBitIdentical(search.Search(keywords), first, "repeat");
    EXPECT_TRUE(search.stats().plan_cache_hit);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 19u);
  // >= 90% hit rate on the repeated-query loop (acceptance bar).
  double rate = static_cast<double>(cache.hits()) /
                static_cast<double>(cache.hits() + cache.misses());
  EXPECT_GE(rate, 0.9);
}

TEST(PlanCacheBehaviorTest, KeywordOrderSharesOneEntry) {
  XmlTree tree = MakePlantedTree();
  IndexBuilder builder(tree, IndexBuildOptions{});
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  MemoryTermSource source(jindex);

  PlanCache cache;
  JoinSearchOptions options;
  options.plan_cache = &cache;
  JoinSearch search(&source, options);
  search.Search({"alpha", "beta"});
  search.Search({"beta", "alpha"});  // same set, different spelling
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheBehaviorTest, SealAndCompactInvalidate) {
  UpdatableEngine engine(MakePlantedTree());
  std::vector<std::string> keywords = {"alpha", "beta"};

  auto hits_before = engine.Search(keywords);
  uint64_t misses_after_first = engine.plan_cache().misses();
  EXPECT_GE(misses_after_first, 1u);
  engine.Search(keywords);
  EXPECT_GE(engine.plan_cache().hits(), 1u) << "repeat must hit";

  // Sealing bumps the segmented index version: the cached plan's
  // watermark no longer matches, so the next lookup misses and replans.
  // The memtable only covers post-construction nodes, so feed it first.
  engine.AddElement(engine.tree().root(), "n", "alpha beta");
  std::string seal_path = TempPath("planner_cache_seal");
  ASSERT_TRUE(engine.SealMemtable(seal_path).ok());
  engine.AddElement(engine.tree().root(), "n", "alpha beta");
  uint64_t hits_before_requery = engine.plan_cache().hits();
  uint64_t misses_before_requery = engine.plan_cache().misses();
  engine.Search(keywords);
  EXPECT_EQ(engine.plan_cache().hits(), hits_before_requery)
      << "stale plan served after seal";
  EXPECT_GT(engine.plan_cache().misses(), misses_before_requery);
  engine.Search(keywords);
  EXPECT_GT(engine.plan_cache().hits(), hits_before_requery)
      << "fresh plan must be cached again";

  // Compaction invalidates the same way.
  std::string seal2_path = TempPath("planner_cache_seal2");
  ASSERT_TRUE(engine.SealMemtable(seal2_path).ok());
  std::string compact_path = TempPath("planner_cache_compact");
  ASSERT_TRUE(engine.Compact(compact_path).ok());
  uint64_t hits_before_compacted = engine.plan_cache().hits();
  engine.Search(keywords);
  EXPECT_EQ(engine.plan_cache().hits(), hits_before_compacted)
      << "stale plan served after compact";
  engine.Search(keywords);
  EXPECT_GT(engine.plan_cache().hits(), hits_before_compacted);

  (void)hits_before;
  std::remove(seal_path.c_str());
  std::remove((seal_path + ".manifest").c_str());
  std::remove(seal2_path.c_str());
  std::remove((seal2_path + ".manifest").c_str());
  std::remove(compact_path.c_str());
  std::remove((compact_path + ".manifest").c_str());
}

TEST(PlanCacheBehaviorTest, EnvEscapeHatchDisablesPlanning) {
  XmlTree tree = MakePlantedTree();
  IndexBuilder builder(tree, IndexBuildOptions{});
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  MemoryTermSource source(jindex);

  setenv("XTOPK_DISABLE_PLANNER", "1", 1);
  PlanCache cache;
  JoinSearchOptions options;
  options.plan_cache = &cache;
  JoinSearch search(&source, options);
  std::vector<SearchResult> disabled = search.Search({"alpha", "beta"});
  EXPECT_FALSE(search.stats().planned);
  EXPECT_EQ(cache.size(), 0u);
  unsetenv("XTOPK_DISABLE_PLANNER");
  ExpectBitIdentical(search.Search({"alpha", "beta"}), disabled, "env off");
  EXPECT_TRUE(search.stats().planned);
}

}  // namespace
}  // namespace xtopk
