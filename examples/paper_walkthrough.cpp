// A guided tour of the paper's machinery on a small document, mirroring
// its figures: the JDewey encoding (Fig. 1), the column-oriented inverted
// lists with their runs (Fig. 2/3), Algorithm 1's bottom-up joins with the
// semantic pruning, and the top-K pass with its thresholds.
//
//   ./paper_walkthrough

#include <cstdio>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "xml/jdewey.h"
#include "xml/xml_parser.h"

namespace {

using namespace xtopk;  // example code; the library itself never does this

void DumpEncoding(const XmlTree& tree, const IndexBuilder& builder) {
  std::printf("1. The document with Dewey ids and JDewey sequences\n");
  std::printf("   (JDewey: the pair (level, number) alone identifies a"
              " node)\n\n");
  const JDeweyEncoding& enc = builder.jdewey_encoding();
  const std::vector<DeweyId>& deweys = builder.dewey_ids();
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    JDeweySeq seq = enc.SequenceOf(tree, id);
    std::printf("   %*s<%s>%s%s  dewey=%-10s jdewey=%s\n",
                2 * (tree.level(id) - 1), "", tree.TagName(id).c_str(),
                tree.text(id).empty() ? "" : " ",
                tree.text(id).c_str(), deweys[id].ToString().c_str(),
                JDeweySeqToString(seq).c_str());
  }
}

void DumpList(const char* term, const JDeweyList& list) {
  std::printf("\n   inverted list of \"%s\" (%u rows, stored by column;\n"
              "   each column is run-length (v, first-row, count) per"
              " §III-D):\n", term, list.num_rows());
  for (uint32_t level = 1; level <= list.max_length; ++level) {
    std::printf("     column %u:", level);
    for (const Run& run : list.column(level).runs()) {
      std::printf("  (v=%u, r=%u, c=%u)", run.value, run.first_row,
                  run.count);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // A miniature of the paper's Figure 1 situation: "xml" and "data"
  // co-occur tightly in one section and loosely across sections.
  XmlTree tree = ParseXmlStringOrDie(R"(
    <proceedings>
      <section>
        <paper>xml</paper>
        <paper>keyword search</paper>
      </section>
      <section>
        <paper>xml data management</paper>
        <paper>data</paper>
      </section>
      <section>
        <paper>xml</paper>
        <paper>data</paper>
      </section>
    </proceedings>)");

  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  DumpEncoding(tree, builder);

  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::printf("\n2. Column-oriented inverted lists (paper Fig. 2/3)\n");
  DumpList("xml", *jindex.GetList("xml"));
  DumpList("data", *jindex.GetList("data"));

  std::printf("\n3. Algorithm 1: join columns bottom-up; every value\n"
              "   matched in all lists is checked against previously\n"
              "   erased ranges (ELCA) and erases its runs on success\n\n");
  JoinSearch search(jindex);
  std::vector<LevelTrace> trace;
  auto results = search.SearchWithTrace({"xml", "data"}, &trace);
  for (const SearchResult& r : results) {
    std::printf("   ELCA: <%s> at level %u, score %.4f\n",
                tree.TagName(r.node).c_str(), r.level, r.score);
  }
  std::printf("\n   EXPLAIN (per level, bottom-up):\n");
  for (const LevelTrace& level : trace) {
    std::printf("     level %u:", level.level);
    for (const JoinStepTrace& step : level.steps) {
      const char* algo = step.algo == JoinAlgo::kIndex    ? "index"
                         : step.algo == JoinAlgo::kGallop ? "gallop"
                                                          : "merge";
      std::printf(" %s-join(col of kw#%zu, %llu runs)->%llu", algo,
                  step.query_position, (unsigned long long)step.input_runs,
                  (unsigned long long)step.output_matches);
    }
    std::printf("  candidates=%llu results=%llu erased=%llu\n",
                (unsigned long long)level.candidates,
                (unsigned long long)level.results,
                (unsigned long long)level.rows_erased);
  }

  std::printf("\n4. The top-K pass (§IV): score-ordered segments per\n"
              "   column, star join with the grouped threshold, early\n"
              "   emission against the cross-column bounds\n\n");
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);
  TopKSearchOptions topk_options;
  topk_options.k = 2;
  TopKSearch topk(topk_index, topk_options);
  auto top = topk.Search({"xml", "data"});
  for (const SearchResult& r : top) {
    std::printf("   top: <%s> at level %u, score %.4f\n",
                tree.TagName(r.node).c_str(), r.level, r.score);
  }
  std::printf("   (entries read: %llu — rows are served per column — over "
              "%u list rows; early emissions: %llu)\n",
              (unsigned long long)topk.stats().entries_read,
              jindex.Frequency("xml") + jindex.Frequency("data"),
              (unsigned long long)topk.stats().early_emissions);
  return 0;
}
