#ifndef XTOPK_OBS_METRICS_H_
#define XTOPK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xtopk {
namespace obs {

class WindowedHistogram;
class WindowedCounter;

/// A monotonically increasing event count. Lock-free; safe to Add from any
/// number of threads. Handles returned by the registry are stable for the
/// process lifetime, so hot paths resolve the name once (XTOPK_COUNTER) and
/// pay a single relaxed fetch_add per event afterwards.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time signed level (bytes cached, sessions live, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative samples (latencies in
/// microseconds, sizes in bytes). Bucket 0 holds the value 0; bucket i>=1
/// holds values in [2^(i-1), 2^i). Recording is a pair of relaxed atomic
/// adds — cheap enough for per-query (not per-row) hot paths.
///
/// Usable standalone (benches keep one per worker thread and Merge at the
/// end) or through the registry.
class Histogram {
 public:
  /// 0 plus one bucket per bit of a uint64 sample.
  static constexpr size_t kNumBuckets = 65;

  static size_t BucketOf(uint64_t value) {
    size_t bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits;  // 0 -> 0, [2^(i-1), 2^i) -> i
  }

  /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
  static uint64_t BucketLowerBound(size_t i) {
    return i <= 1 ? 0 : (uint64_t{1} << (i - 1));
  }
  /// Exclusive upper bound of bucket `i` (saturated: the last bucket's
  /// 2^64 does not fit a uint64, so it reports UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 1;
    if (i >= 64) return UINT64_MAX;
    return uint64_t{1} << i;
  }

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated value at quantile `q` in [0, 1]: linear interpolation inside
  /// the bucket holding the q-th sample. 0 when empty.
  double Percentile(double q) const;

  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Sentinel returned by PercentileFromBuckets for an empty histogram, so
/// dashboards can distinguish "no data" (-1) from "everything was fast"
/// (0). Negative on purpose: no real sample can produce it.
inline constexpr double kEmptyPercentile = -1.0;

/// Quantile estimate over a raw bucket-count array (same layout as
/// Histogram). Lets callers diff two snapshots and query the delta.
///
/// Edge behavior (pinned by tests):
///  - empty buckets -> kEmptyPercentile (-1), never 0;
///  - q is clamped to [0, 1];
///  - interpolation is uniform inside the bucket holding the q-th sample,
///    including the first bucket (value 0, bounds [0, 1)) and the last
///    bucket, whose upper bound saturates at UINT64_MAX because 2^64 does
///    not fit a uint64 — so a last-bucket estimate can be huge but finite.
double PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets, double q);

/// A stable copy of every registered metric at one instant. Values are
/// plain integers, so a snapshot is isolated: later increments do not show
/// through. Serializable to JSON and Prometheus text exposition format.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
    /// kEmptyPercentile (-1) when count == 0.
    double p50 = 0, p95 = 0, p99 = 0;
  };

  /// Recent-window aggregate of one windowed metric (scalar view of
  /// WindowedHistogram::WindowSnapshot — the registry snapshot drops the
  /// bucket array).
  struct WindowStats {
    uint64_t window_us = 0;
    uint64_t count = 0;
    uint64_t sum = 0;
    double p50 = kEmptyPercentile, p99 = kEmptyPercentile,
           p999 = kEmptyPercentile;
    double rate_per_sec = 0;
  };
  struct WindowedHistogramData {
    std::string name;
    WindowStats w10s, w60s;
  };
  struct WindowedCounterData {
    std::string name;
    uint64_t sum_10s = 0, sum_60s = 0;
    double rate_10s = 0, rate_60s = 0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;
  std::vector<WindowedHistogramData> windowed_histograms;
  std::vector<WindowedCounterData> windowed_counters;

  /// Full document: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "windows":{...}} — "windows" maps each windowed metric to its 10s/60s
  /// recent-window stats.
  std::string ToJson() const;
  /// `# TYPE`-annotated Prometheus text format (histograms as cumulative
  /// `_bucket{le=...}` series).
  std::string ToPrometheusText() const;
  /// One flat object for embedding in a larger JSON line: zero-valued
  /// counters/gauges are dropped and histograms collapse to
  /// name_count/name_p50/name_p95/name_p99 fields.
  void AppendCompactJson(std::string* out) const;
};

/// The process-wide metric namespace. Registration (first use of a name)
/// takes a mutex; every later access through the returned reference is
/// lock-free. Names are dotted paths ("storage.pool.hits"); a name is
/// permanently bound to its first-registered type.
class MetricsRegistry {
 public:
  /// The process-global registry (never destroyed, so static handles in
  /// hot paths stay valid through shutdown).
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);
  /// Windowed metrics live in their own namespaces, so a windowed metric
  /// may (and usually does) share its name with the cumulative metric it
  /// shadows — "engine.query_us" exists both since-boot and windowed.
  WindowedHistogram& GetWindowedHistogram(std::string_view name);
  WindowedCounter& GetWindowedCounter(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Benches use this
  /// to scope a snapshot to one measured section.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  // std::map keeps snapshots name-sorted; unique_ptr keeps handles stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windowed_histograms_;
  std::map<std::string, std::unique_ptr<WindowedCounter>, std::less<>>
      windowed_counters_;
};

}  // namespace obs
}  // namespace xtopk

/// Static-handle metric accessors: resolve the name once per call site,
/// then a single relaxed atomic op per event.
///
///   XTOPK_COUNTER("storage.page_reads").Add(1);
///   XTOPK_HISTOGRAM("engine.query_us").Record(us);
#define XTOPK_COUNTER(name)                                              \
  ([]() -> ::xtopk::obs::Counter& {                                      \
    static ::xtopk::obs::Counter& counter =                              \
        ::xtopk::obs::MetricsRegistry::Global().GetCounter(name);        \
    return counter;                                                      \
  }())
#define XTOPK_GAUGE(name)                                                \
  ([]() -> ::xtopk::obs::Gauge& {                                        \
    static ::xtopk::obs::Gauge& gauge =                                  \
        ::xtopk::obs::MetricsRegistry::Global().GetGauge(name);          \
    return gauge;                                                        \
  }())
#define XTOPK_HISTOGRAM(name)                                            \
  ([]() -> ::xtopk::obs::Histogram& {                                    \
    static ::xtopk::obs::Histogram& histogram =                          \
        ::xtopk::obs::MetricsRegistry::Global().GetHistogram(name);      \
    return histogram;                                                    \
  }())

#endif  // XTOPK_OBS_METRICS_H_
