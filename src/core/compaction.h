#ifndef XTOPK_CORE_COMPACTION_H_
#define XTOPK_CORE_COMPACTION_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xtopk {

/// Tiered-compaction policy knobs (DESIGN.md §17).
struct CompactionOptions {
  /// Background compaction triggers when more than this many disk
  /// segments are live.
  size_t max_segments = 4;
  /// A run of same-tier segments is merged when the largest member is
  /// within this factor of the smallest (size-ratio tiering: merge peers,
  /// never a huge segment with a tiny one).
  double tier_ratio = 4.0;
  /// Crude write-rate throttle: after a round that wrote B bytes, the
  /// maintenance thread sleeps B / throttle_bytes_per_sec seconds before
  /// the next round. 0 = unthrottled.
  uint64_t throttle_bytes_per_sec = 0;
};

/// Picks the segments (by index into `sizes`, ascending sizes assumed
/// NOT required — any order) one tiered round should merge, or an empty
/// vector when the set is healthy. Policy: nothing to do while
/// count <= max_segments; otherwise merge the longest prefix of the
/// size-sorted list whose members stay within tier_ratio of the
/// smallest (at least 2 — when even the two smallest violate the ratio,
/// merge those two: the count bound dominates the tier preference).
std::vector<size_t> PickTieredCompaction(const std::vector<uint64_t>& sizes,
                                         const CompactionOptions& options);

/// Runs a work function on a dedicated background thread until stopped:
/// the engine hands it "do one compaction round if one is due" and
/// notifies it after every seal. The loop re-runs immediately while work
/// reports progress (true) and waits on a condition variable (with a
/// periodic timeout, so missed notifications only delay work) otherwise.
///
/// The XTOPK_DISABLE_BG_COMPACT environment variable (any non-empty
/// value) makes Start a no-op — the escape hatch for debugging and for
/// tests that need a quiescent engine; RunOnce still works.
class CompactionScheduler {
 public:
  /// `work` returns true when it made progress (another round may be due
  /// immediately). It runs on the scheduler thread only.
  explicit CompactionScheduler(std::function<bool()> work);
  ~CompactionScheduler();
  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// Launches the background thread (idempotent; no-op when disabled by
  /// the environment).
  void Start();
  /// Stops and joins the thread. Safe to call repeatedly; the destructor
  /// calls it.
  void Stop();
  /// Wakes the background thread (a seal happened; work may be due).
  void Notify();
  /// Runs the work function once on the CALLER's thread — the manual /
  /// test path, independent of Start.
  bool RunOnce() { return work_(); }

  bool running() const;
  /// Rounds that reported progress, across both the thread and RunOnce.
  uint64_t rounds() const;

  /// Whether XTOPK_DISABLE_BG_COMPACT suppresses Start in this process.
  static bool BackgroundDisabled();

 private:
  void Loop();

  std::function<bool()> work_raw_;
  /// work_raw_ wrapped with the rounds counter.
  std::function<bool()> work_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  bool wake_ = false;
  std::atomic<uint64_t> rounds_{0};
};

}  // namespace xtopk

#endif  // XTOPK_CORE_COMPACTION_H_
