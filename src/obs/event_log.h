#ifndef XTOPK_OBS_EVENT_LOG_H_
#define XTOPK_OBS_EVENT_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xtopk {
namespace obs {

/// A fixed-size, lock-free-for-writers ring of recent structured events
/// (segment flushes, slow queries, fault injections, config changes).
/// Writers claim a slot with one fetch_add and publish it with a per-slot
/// sequence number (seqlock): readers that race a writer simply skip the
/// torn slot. Old events are overwritten; this is a flight recorder, not a
/// durable log.
class EventLog {
 public:
  static constexpr size_t kCapacity = 256;
  static constexpr size_t kKindBytes = 32;
  static constexpr size_t kTextBytes = 224;

  struct Event {
    uint64_t sequence = 0;  ///< global append index, monotonically increasing
    uint64_t ts_us = 0;     ///< MonotonicNowUs at append
    std::string kind;
    std::string text;
  };

  /// The process-wide flight recorder.
  static EventLog& Global();

  /// Appends one event; truncates kind/text to the fixed slot size. Safe
  /// from any thread; never blocks readers or other writers.
  void Append(std::string_view kind, std::string_view text);

  /// The most recent events, oldest first, at most `max` (0 = all). Slots
  /// being concurrently rewritten are skipped.
  std::vector<Event> Snapshot(size_t max = 0) const;

  /// Total events ever appended (including overwritten ones).
  uint64_t appended() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// {"events":[{"seq":...,"ts_us":...,"kind":"...","text":"..."},...]}
  std::string ToJson(size_t max = 0) const;

 private:
  struct Slot {
    /// Even = stable, odd = being written. A reader validates the slot by
    /// reading seq, copying the payload, and re-reading seq.
    std::atomic<uint64_t> seq{0};
    uint64_t sequence = 0;
    uint64_t ts_us = 0;
    char kind[kKindBytes] = {};
    char text[kTextBytes] = {};
  };

  std::atomic<uint64_t> next_{0};
  mutable std::array<Slot, kCapacity> slots_{};
};

/// Convenience: EventLog::Global().Append(kind, text).
void LogEvent(std::string_view kind, std::string_view text);

}  // namespace obs
}  // namespace xtopk

#endif  // XTOPK_OBS_EVENT_LOG_H_
