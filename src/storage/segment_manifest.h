#ifndef XTOPK_STORAGE_SEGMENT_MANIFEST_H_
#define XTOPK_STORAGE_SEGMENT_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/histogram.h"
#include "util/status.h"

namespace xtopk {

/// Per-term statistics of one sealed segment. `rows` is the segment's
/// inverted-list length (its contribution to the corpus-wide document
/// frequency); `max_tf` the largest raw term frequency of any row. Both
/// are what query-time score normalization needs from a segment WITHOUT
/// loading its lists: df(t) = sum of rows over segments, and the global
/// normalizer max_raw = max over terms of RawLocalScore(max_tf, df, N)
/// (RawLocalScore is monotone in tf for fixed df, so the per-term max is
/// attained at max_tf).
///
/// `levels` (manifest v2) adds one equal-height histogram per JDewey level
/// over the term's distinct level ids in this segment; SegmentedIndex
/// merges these across segments into corpus-global planner statistics
/// without touching any posting pages. Empty for v1 manifests.
struct SegmentTermStats {
  std::string term;
  uint32_t rows = 0;
  uint32_t max_tf = 0;
  std::vector<LevelHistogram> levels;  ///< levels[l-1] = level l, may be empty
};

/// Sidecar metadata of a sealed segment (stored next to the page file as
/// `<segment>.manifest`). Byte layout (v2):
///
///   magic "XTKSMAN2" | varint covered_nodes | varint term_count
///   per term: varint term_len | term bytes | varint rows | varint max_tf
///            | varint level_count
///            per level: varint bucket_count
///              per bucket: varint (lo - prev_hi) | varint (hi - lo)
///                        | varint count          (prev_hi starts at 0)
///   fixed32 LE CRC32C over all preceding bytes
///
/// v1 ("XTKSMAN1") is the same without the per-term histogram block and is
/// still readable — Load leaves `levels` empty so callers degrade to
/// row-count-only statistics. Load verifies the magic and the checksum and
/// returns Corruption on any mismatch or truncation, so a damaged manifest
/// is detected before its statistics can skew scores or plans.
struct SegmentManifest {
  uint64_t covered_nodes = 0;          ///< nodes this segment indexed
  std::vector<SegmentTermStats> terms; ///< sorted by term

  Status Save(const std::string& path) const;  ///< writes v2
  /// Writes the legacy v1 layout (histograms dropped); kept so the
  /// backward-compat path stays testable without fixture files.
  Status SaveV1(const std::string& path) const;
  /// Writes v3 ("XTKSMAN3"): identical to v2 except the term strings move
  /// into one front-coded dictionary (storage/dictionary.h) ahead of the
  /// per-term records, which then follow in dictionary-code order without
  /// inline names. Written next to compressed (v3) disk segments; Load
  /// reads all three versions.
  Status SaveV3(const std::string& path) const;
  static StatusOr<SegmentManifest> Load(const std::string& path);
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_SEGMENT_MANIFEST_H_
