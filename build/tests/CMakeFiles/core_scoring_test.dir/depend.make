# Empty dependencies file for core_scoring_test.
# This may be replaced when dependencies are built.
