#include "util/status.h"

namespace xtopk {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xtopk
