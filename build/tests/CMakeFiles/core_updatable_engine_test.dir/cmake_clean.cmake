file(REMOVE_RECURSE
  "CMakeFiles/core_updatable_engine_test.dir/core/updatable_engine_test.cc.o"
  "CMakeFiles/core_updatable_engine_test.dir/core/updatable_engine_test.cc.o.d"
  "core_updatable_engine_test"
  "core_updatable_engine_test.pdb"
  "core_updatable_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_updatable_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
