#ifndef XTOPK_INDEX_DEWEY_INDEX_H_
#define XTOPK_INDEX_DEWEY_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "xml/dewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// The document-order Dewey inverted list of one keyword, used by the
/// baselines the paper compares against (stack-based merge, index-based
/// lookups, RDIL). Rows are sorted by Dewey id (document order).
struct DeweyList {
  std::vector<DeweyId> deweys;  ///< Per row, ascending document order.
  std::vector<float> scores;    ///< Per row, local score g(v, w).
  std::vector<NodeId> nodes;    ///< Per row, occurrence node.

  uint32_t num_rows() const { return static_cast<uint32_t>(deweys.size()); }

  /// Index of the first row with dewey >= `key` (num_rows() if none).
  uint32_t LowerBound(const DeweyId& key) const;

  /// Row range [lo, hi) of occurrences inside the subtree rooted at
  /// `prefix` (descendants-or-self).
  std::pair<uint32_t, uint32_t> SubtreeRange(const DeweyId& prefix) const;
};

/// Keyword -> Dewey inverted list.
class DeweyIndex {
 public:
  DeweyIndex() = default;
  DeweyIndex(DeweyIndex&&) = default;
  DeweyIndex& operator=(DeweyIndex&&) = default;
  DeweyIndex(const DeweyIndex&) = delete;
  DeweyIndex& operator=(const DeweyIndex&) = delete;

  const DeweyList* GetList(const std::string& term) const;
  uint32_t Frequency(const std::string& term) const;
  size_t term_count() const { return lists_.size(); }

  /// Serialized size in bytes with the prefix+varint Dewey compression of
  /// Xu & Papakonstantinou (Table I "stack-based" row).
  uint64_t EncodedListBytes() const;

 private:
  friend class IndexBuilder;
  friend struct IndexIoAccess;

  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<DeweyList> lists_;
};

/// Order-preserving byte encoding of a Dewey id (4-byte big-endian
/// components): byte-lexicographic order equals document order, so B+-tree
/// probes over encoded keys behave like Dewey-order probes.
std::string EncodeDeweyKey(const DeweyId& dewey);

/// Inverse of EncodeDeweyKey.
DeweyId DecodeDeweyKey(std::string_view key);

}  // namespace xtopk

#endif  // XTOPK_INDEX_DEWEY_INDEX_H_
