file(REMOVE_RECURSE
  "CMakeFiles/util_varint_test.dir/util/varint_test.cc.o"
  "CMakeFiles/util_varint_test.dir/util/varint_test.cc.o.d"
  "util_varint_test"
  "util_varint_test.pdb"
  "util_varint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_varint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
