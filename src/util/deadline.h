#ifndef XTOPK_UTIL_DEADLINE_H_
#define XTOPK_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace xtopk {

/// A per-query time budget checked at coarse execution boundaries (level
/// rounds, column rounds, star-join entry blocks, TermSource::Resolve call
/// sites). The token is a plain value — copy it freely; every copy answers
/// against the same absolute deadline.
///
/// The clock is injectable: production tokens read a steady monotonic
/// clock, deterministic tests install a fake (a function returning a
/// controlled value) so "the deadline expired mid-query" is reproducible
/// without sleeping. A default-constructed token is unbounded and costs a
/// single branch per check — queries without deadlines never read the
/// clock.
class DeadlineToken {
 public:
  using ClockFn = uint64_t (*)();

  /// Monotonic process clock in microseconds (steady_clock since first
  /// use). The default clock of every bounded token.
  static uint64_t NowMicros() {
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  /// Unbounded: expired() is always false, no clock reads.
  DeadlineToken() = default;

  /// Expires `budget_us` from now on `clock` (0 = unbounded).
  static DeadlineToken AfterMicros(uint64_t budget_us,
                                   ClockFn clock = &NowMicros) {
    if (budget_us == 0) return DeadlineToken();
    return DeadlineToken(clock() + budget_us, clock);
  }

  /// Expires at absolute instant `deadline_us` on `clock`.
  static DeadlineToken AtMicros(uint64_t deadline_us,
                                ClockFn clock = &NowMicros) {
    return DeadlineToken(deadline_us, clock);
  }

  bool unbounded() const { return clock_ == nullptr; }

  /// True once the clock has reached the deadline. Monotone: once a token
  /// observes expiry it stays expired (steady clocks never go backwards;
  /// fake clocks in tests must respect the same contract).
  bool expired() const {
    return clock_ != nullptr && clock_() >= deadline_us_;
  }

  /// Microseconds until expiry; 0 when expired, UINT64_MAX when unbounded.
  uint64_t remaining_us() const {
    if (clock_ == nullptr) return UINT64_MAX;
    uint64_t now = clock_();
    return now >= deadline_us_ ? 0 : deadline_us_ - now;
  }

  uint64_t deadline_us() const { return deadline_us_; }

 private:
  DeadlineToken(uint64_t deadline_us, ClockFn clock)
      : deadline_us_(deadline_us), clock_(clock) {}

  uint64_t deadline_us_ = 0;
  ClockFn clock_ = nullptr;  ///< null = unbounded
};

}  // namespace xtopk

#endif  // XTOPK_UTIL_DEADLINE_H_
