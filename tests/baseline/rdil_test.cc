#include "baseline/rdil.h"

#include <gtest/gtest.h>

#include <memory>

#include "baseline/naive.h"
#include "core/search_result.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;

struct Built {
  std::unique_ptr<XmlTree> tree;
  std::unique_ptr<IndexBuilder> builder;
  std::unique_ptr<DeweyIndex> dindex;
  std::unique_ptr<RdilIndex> rdil;
};

Built Build(XmlTree tree) {
  Built b;
  b.tree = std::make_unique<XmlTree>(std::move(tree));
  IndexBuildOptions options;
  options.index_tag_names = false;
  b.builder = std::make_unique<IndexBuilder>(*b.tree, options);
  b.dindex = std::make_unique<DeweyIndex>(b.builder->BuildDeweyIndex());
  b.rdil = std::make_unique<RdilIndex>(b.builder->BuildRdilIndex(*b.dindex));
  return b;
}

std::vector<SearchResult> OracleTopK(const XmlTree& tree,
                                     const DeweyIndex& index,
                                     const std::vector<std::string>& terms,
                                     Semantics semantics, size_t k) {
  NaiveOracle oracle(tree, index);
  auto results = oracle.Search(terms, semantics);
  SortByScoreDesc(&results);
  if (results.size() > k) results.resize(k);
  return results;
}

TEST(RdilTest, TopKMatchesOracleOnRandomTrees) {
  for (uint64_t seed = 40; seed < 52; ++seed) {
    Built b = Build(
        MakeRandomTree(seed, 150 + (seed % 4) * 100, 4, 7, {"alpha", "beta"},
                       0.15));
    for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
      RdilOptions options;
      options.semantics = semantics;
      options.k = 5;
      RdilSearch search(*b.tree, *b.rdil, options);
      auto got = search.Search({"alpha", "beta"});
      auto want =
          OracleTopK(*b.tree, *b.dindex, {"alpha", "beta"}, semantics, 5);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].score, want[i].score, 1e-6)
            << "seed " << seed << " pos " << i;
      }
    }
  }
}

TEST(RdilTest, ThreeKeywords) {
  Built b = Build(
      MakeRandomTree(60, 300, 4, 6, {"alpha", "beta", "gamma"}, 0.2));
  RdilOptions options;
  options.k = 10;
  RdilSearch search(*b.tree, *b.rdil, options);
  auto got = search.Search({"alpha", "beta", "gamma"});
  auto want = OracleTopK(*b.tree, *b.dindex, {"alpha", "beta", "gamma"},
                         Semantics::kElca, 10);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-6) << i;
  }
}

TEST(RdilTest, StatsShowOutOfOrderVerificationCost) {
  Built b = Build(MakeRandomTree(61, 600, 4, 6, {"alpha", "beta"}, 0.2));
  RdilOptions options;
  options.k = 3;
  RdilSearch search(*b.tree, *b.rdil, options);
  auto results = search.Search({"alpha", "beta"});
  ASSERT_FALSE(results.empty());
  const RdilStats& stats = search.stats();
  EXPECT_GT(stats.entries_read, 0u);
  EXPECT_GT(stats.btree_probes, 0u);
  EXPECT_GT(stats.candidates_checked, 0u);
  EXPECT_GT(stats.eval.range_probes, 0u);
}

TEST(RdilTest, MissingKeywordEmpty) {
  Built b = Build(MakeSmallCorpus());
  RdilSearch search(*b.tree, *b.rdil, RdilOptions{});
  EXPECT_TRUE(search.Search({"xml", "zzz"}).empty());
}

}  // namespace
}  // namespace xtopk
