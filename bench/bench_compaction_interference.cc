// Query-latency interference from background compaction (DESIGN.md §17).
//
// The segment-lifecycle promise is that maintenance is invisible to
// readers: queries pin an immutable segment-set version, so a background
// compaction publish costs them nothing but whatever CPU/IO the merge
// steals. This bench puts a number on that theft. The same workload —
// ingest documents, seal every batch, query between batches — runs twice:
//
//   quiescent — background compaction off; segments pile up;
//   busy      — the CompactionScheduler runs concurrently, merging tiers
//               while the queries execute.
//
// Each mode runs kReps times and keeps the MINIMUM p99 (the CI box has
// one core, so any single rep can be stalled by unrelated noise; min-of-N
// is the stable estimator). The gate in CI is on p99_ratio = busy/quiet.
//
// Correctness rides along: the query stream is deterministic and
// compaction must not change any answer, so the per-mode result checksum
// has to be identical between modes — the bench fails hard otherwise.
//
// Emits one `BENCH {json}` line:
//   {"bench":"compaction_interference","p99_quiet_us":...,
//    "p99_busy_us":...,"p99_ratio":...,"rounds":...,"checksum":...}

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/updatable_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "xml/xml_parser.h"

namespace {

using namespace xtopk;

constexpr size_t kReps = 3;
constexpr size_t kBatches = 12;
constexpr size_t kQueriesPerBatch = 25;

std::string MakeDocXml(Rng* rng, size_t i) {
  static const char* const kWords[] = {"xml",   "keyword", "search", "rank",
                                       "index", "query",   "dewey",  "join",
                                       "top",   "segment", "merge",  "log"};
  std::string title;
  for (int w = 0; w < 5; ++w) {
    if (w > 0) title += ' ';
    title += kWords[rng->NextBounded(12)];
  }
  return "<paper><title>" + title + "</title><author>a" +
         std::to_string(rng->NextBounded(100)) + "</author><year>" +
         std::to_string(2000 + i % 26) + "</year></paper>";
}

struct RunResult {
  double p99_us = 0;
  uint64_t checksum = 0;
  uint64_t rounds = 0;
};

// One full workload pass. `busy` starts the background compactor; the
// data dir is fresh per run so both modes build the identical segment
// history.
RunResult RunWorkload(bool busy, size_t rep) {
  const std::string dir = "bench_compaction_dir." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(rep) + (busy ? "b" : "q");
  std::system(("rm -rf " + dir).c_str());

  XmlTree shell;
  shell.CreateRoot("collection");
  DurableOptions durable;
  durable.data_dir = dir;
  durable.auto_compact = busy;
  durable.compaction.max_segments = 3;  // keep the compactor hungry
  auto opened = UpdatableEngine::OpenDurable(std::move(shell), {}, durable);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<UpdatableEngine> engine = std::move(opened).value();

  const size_t docs_per_batch = 40 * bench::BenchScale();
  const std::vector<std::vector<std::string>> queries = {
      {"xml", "keyword"}, {"rank", "join"}, {"segment", "merge"},
      {"dewey", "index"}, {"top", "query"}};

  Rng rng(4057);  // same stream in both modes: identical docs, queries
  obs::Histogram query_us;
  RunResult result;
  // Steady-state shape: ingest a batch, query it, then seal (which kicks
  // the compactor, whose merge overlaps the NEXT batch's ingest). The
  // queries still race active merges — rounds drain slower than seals
  // arrive — but not a merge scheduled one microsecond earlier, which
  // would measure the worst possible phase alignment instead of the
  // steady state.
  for (size_t batch = 0; batch < kBatches; ++batch) {
    for (size_t d = 0; d < docs_per_batch; ++d) {
      XmlTree doc = ParseXmlStringOrDie(
          MakeDocXml(&rng, batch * docs_per_batch + d));
      engine->AddDocument("p" + std::to_string(batch) + "_" +
                              std::to_string(d),
                          doc);
    }
    for (size_t q = 0; q < kQueriesPerBatch; ++q) {
      const auto& keywords = queries[q % queries.size()];
      Timer timer;
      auto hits = engine->SearchTopK(keywords, 10);
      query_us.Record(static_cast<uint64_t>(timer.ElapsedMicros()));
      for (const auto& hit : hits) {
        result.checksum =
            result.checksum * 1315423911u + hit.node * 31 + hits.size();
      }
    }
    Status sealed = engine->SealMemtable();
    if (!sealed.ok()) {
      std::fprintf(stderr, "seal failed: %s\n", sealed.ToString().c_str());
      std::exit(1);
    }
  }
  result.p99_us = query_us.Percentile(0.99);
  if (engine->scheduler() != nullptr) {
    result.rounds = engine->scheduler()->rounds();
  }
  engine.reset();  // stops the scheduler before the rm
  std::system(("rm -rf " + dir).c_str());
  return result;
}

int RunBench() {
  std::printf("=== Compaction interference: query p99 busy vs quiescent "
              "===\n");
  double p99_quiet = 0, p99_busy = 0;
  uint64_t checksum_quiet = 0, checksum_busy = 0, rounds = 0;
  for (size_t rep = 0; rep < kReps; ++rep) {
    RunResult quiet = RunWorkload(/*busy=*/false, rep);
    RunResult busy = RunWorkload(/*busy=*/true, rep);
    std::printf("rep %zu: quiet p99 %.0f us, busy p99 %.0f us "
                "(%llu rounds)\n",
                rep, quiet.p99_us, busy.p99_us,
                (unsigned long long)busy.rounds);
    if (rep == 0) {
      checksum_quiet = quiet.checksum;
      checksum_busy = busy.checksum;
    }
    if (quiet.checksum != checksum_quiet ||
        busy.checksum != checksum_quiet) {
      std::fprintf(stderr,
                   "REGRESSION: compaction changed query results "
                   "(quiet %llu, busy %llu)\n",
                   (unsigned long long)quiet.checksum,
                   (unsigned long long)busy.checksum);
      return 1;
    }
    p99_quiet = rep == 0 ? quiet.p99_us : std::min(p99_quiet, quiet.p99_us);
    p99_busy = rep == 0 ? busy.p99_us : std::min(p99_busy, busy.p99_us);
    rounds += busy.rounds;
  }
  const double ratio = p99_quiet > 0 ? p99_busy / p99_quiet : 0.0;
  std::printf("min-of-%zu: quiet p99 %.0f us, busy p99 %.0f us, ratio "
              "%.3f\n",
              kReps, p99_quiet, p99_busy, ratio);
  bench::BenchJson("compaction_interference")
      .Field("p99_quiet_us", p99_quiet)
      .Field("p99_busy_us", p99_busy)
      .Field("p99_ratio", ratio)
      .Field("rounds", rounds)
      .Field("checksum", checksum_busy)
      .Emit();
  return 0;
}

}  // namespace

int main() { return RunBench(); }
