#ifndef XTOPK_CORE_TOPK_STAR_JOIN_H_
#define XTOPK_CORE_TOPK_STAR_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

namespace xtopk {

/// A (join id, score) tuple of one ranked input.
struct RankedTuple {
  uint64_t id = 0;
  double score = 0.0;
};

/// A ranked input of the star join: tuples in descending score order.
class RankedSource {
 public:
  virtual ~RankedSource() = default;
  /// The next tuple, or nullptr when exhausted. Stable until Pop().
  virtual const RankedTuple* Peek() = 0;
  /// Consumes the peeked tuple.
  virtual void Pop() = 0;
};

/// RankedSource over an in-memory vector (tests, ablations, and the
/// relational example of paper Fig. 5).
class VectorRankedSource : public RankedSource {
 public:
  explicit VectorRankedSource(std::vector<RankedTuple> tuples);
  const RankedTuple* Peek() override;
  void Pop() override;

 private:
  std::vector<RankedTuple> tuples_;
  size_t pos_ = 0;
};

/// Upper bound on the score of any result not yet completed, for a k-way
/// star join (§IV-B).
///
/// The classic (HRJN / TA-style) bound is max_i (s^i + Σ_{j≠i} s_m^j).
/// The paper's bound groups the partially-joined tuples by the subset P of
/// inputs they were seen in and takes max_P (ms(G_P) + Σ_{j∉P} s^j), which
/// is never looser (Theorem in §IV-B; pinned by tests).
class StarThreshold {
 public:
  /// `group_mode` selects the paper's grouped bound; false = classic bound.
  StarThreshold(size_t k, bool group_mode);

  /// Updates s^i after input `source` advanced. Pass kExhausted when the
  /// input has no further tuples.
  void SetHeadScore(size_t source, double score);

  /// A partial result entered the bucket in group `mask` with score `sum`.
  void AddPartial(uint32_t mask, double sum);
  /// A partial result left group `mask` (moved groups or completed).
  void RemovePartial(uint32_t mask, double sum);

  /// Current upper bound for all unseen/incomplete results; -inf when no
  /// further result can appear.
  double Bound() const;

  static constexpr double kExhausted =
      -std::numeric_limits<double>::infinity();

 private:
  size_t k_;
  bool group_mode_;
  std::vector<double> head_;      // s^i, kExhausted when done
  std::vector<double> max_seen_;  // s_m^i (first head score)
  std::vector<bool> max_set_;
  /// Group G_P keyed by bit mask; multiset of partial sums.
  std::unordered_map<uint32_t, std::multiset<double>> groups_;
};

/// Options of the generic top-K star join.
struct StarJoinOptions {
  size_t k = 10;
  /// Use the paper's grouped threshold (§IV-B); false = classic bound
  /// (ablation A2 and the tightness tests).
  bool group_threshold = true;
  /// Optional id probe bounds: when set, tuples with id outside
  /// [id_lo, id_hi] are dropped right after their head score feeds the
  /// threshold — they never enter the partial bucket. Sound only when the
  /// caller guarantees every joinable id lies inside the bounds (e.g. the
  /// bounds come from the value range of the smallest input's column); the
  /// threshold stays an upper bound because dropping a tuple can only
  /// remove completions the caller already knows cannot exist.
  bool use_id_bounds = false;
  uint64_t id_lo = 0;
  uint64_t id_hi = UINT64_MAX;
};

struct StarJoinResultRow {
  uint64_t id = 0;
  double score = 0.0;
  /// True if the row was emitted before the inputs were exhausted (i.e.,
  /// the threshold proved it safe early).
  bool emitted_early = false;
};

struct StarJoinStats {
  uint64_t tuples_read = 0;
  uint64_t early_emissions = 0;
  uint64_t bucket_peak = 0;
  uint64_t tuples_skipped = 0;  ///< dropped by the id probe bounds
};

/// The top-K star join R_1.id = ... = R_k.id with SUM scoring (§IV-B):
/// reads one tuple at a time (round-robin until k results exist, then from
/// the input with the highest next score), hash-joins partials, and emits a
/// completed result as soon as its score reaches the unseen-result bound.
class TopKStarJoin {
 public:
  TopKStarJoin(std::vector<RankedSource*> sources, StarJoinOptions options);

  /// Runs until `k` results are emitted or every input is exhausted.
  /// Results are in emission order (descending score).
  std::vector<StarJoinResultRow> Run();

  const StarJoinStats& stats() const { return stats_; }

 private:
  std::vector<RankedSource*> sources_;
  StarJoinOptions options_;
  StarJoinStats stats_;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_TOPK_STAR_JOIN_H_
