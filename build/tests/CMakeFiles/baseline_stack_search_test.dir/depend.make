# Empty dependencies file for baseline_stack_search_test.
# This may be replaced when dependencies are built.
