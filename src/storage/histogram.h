#ifndef XTOPK_STORAGE_HISTOGRAM_H_
#define XTOPK_STORAGE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace xtopk {

/// An equal-height histogram over the distinct JDewey values of one column
/// (one level of one term's inverted list). Because runs are maximal —
/// equal values are contiguous in row order (Property 3.1) — the distinct
/// values of a column are exactly its runs, so a histogram over runs is a
/// histogram over the JDewey value set at that level.
///
/// Buckets are disjoint closed integer intervals [lo, hi] in ascending
/// order, each carrying the number of distinct values inside it. Counts
/// are doubles so merged histograms (whose bucket boundaries are the union
/// of the inputs' boundaries, splitting counts piecewise-uniformly) stay
/// representable; histograms built directly from a column have integral
/// counts and are the only ones persisted.
///
/// The planner consumes two derived quantities:
///   - total(): estimated distinct-value count (= run count when exact);
///   - EstimateOverlap(other): expected |A ∩ B| of the two value sets,
///     per elementary interval min(min(da, db), da*db/width) — the
///     independence estimate capped by containment.
class LevelHistogram {
 public:
  struct Bucket {
    uint32_t lo = 0;     ///< smallest value covered (inclusive)
    uint32_t hi = 0;     ///< largest value covered (inclusive)
    double count = 0.0;  ///< distinct values inside [lo, hi]
  };

  LevelHistogram() = default;

  /// Builds an equal-height histogram over `column`'s runs with at most
  /// `max_buckets` buckets. Bucket boundaries land on observed values, so
  /// a histogram of <= max_buckets distinct values is exact.
  static LevelHistogram FromColumn(const Column& column, size_t max_buckets);

  /// Reconstructs a histogram from persisted buckets (manifest v2 load).
  /// Returns false (leaving the histogram empty) when the buckets violate
  /// the invariants: ascending, disjoint, non-negative counts.
  bool AssignChecked(std::vector<Bucket> buckets);

  /// Merges `other` into this histogram: bucket boundaries become the
  /// union of both inputs' boundaries and step densities add, then the
  /// result is coalesced down to `max_buckets`. Exact for disjoint value
  /// sets (segments partition the node space); associative up to
  /// coalescing granularity.
  void Merge(const LevelHistogram& other, size_t max_buckets);

  /// Expected number of values shared with `other` under piecewise
  /// uniformity: per elementary interval min(min(da, db), da*db/width).
  double EstimateOverlap(const LevelHistogram& other) const;

  /// Expected number of values in [lo, hi].
  double EstimateInRange(uint32_t lo, uint32_t hi) const;

  double total() const { return total_; }
  bool empty() const { return buckets_.empty(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  /// Greedily merges adjacent buckets (smallest combined count first)
  /// until at most `max_buckets` remain.
  void Coalesce(size_t max_buckets);

  std::vector<Bucket> buckets_;
  double total_ = 0.0;
};

/// Per-term statistics carried by an index or aggregated across segments:
/// the list's row count plus one histogram per JDewey level (levels[l-1]
/// describes level l). `levels` may be empty — "rows only" — when any
/// contributing segment predates histogram manifests (v1); the planner
/// then degrades to size-based estimates for that term.
struct TermStats {
  uint32_t rows = 0;
  std::vector<LevelHistogram> levels;

  bool has_histograms() const { return !levels.empty(); }

  /// Accumulates `other` into this stats object (histograms merged
  /// per level with `max_buckets` granularity). If either side has rows
  /// but no histograms the result keeps rows only.
  void Merge(const TermStats& other, size_t max_buckets);
};

/// Default histogram resolution: build-time buckets per level and the cap
/// applied when merging segment histograms into corpus-global ones.
inline constexpr size_t kDefaultStatsBuckets = 32;
inline constexpr size_t kMergedStatsBuckets = 96;

}  // namespace xtopk

#endif  // XTOPK_STORAGE_HISTOGRAM_H_
