#ifndef XTOPK_INDEX_READER_H_
#define XTOPK_INDEX_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/jdewey_index.h"
#include "storage/compression.h"
#include "util/status.h"

namespace xtopk {

/// A cursor over one level of one term's posting list: the runs of a
/// Column in value order. This is the unit the join layer consumes —
/// every posting source (in-memory index, disk session, segmented index)
/// materializes columns, and a LevelCursor walks them identically.
///
/// Runs arrive in non-decreasing value order (Property 3.1), so SkipTo is
/// a forward-only binary search and bounds() is just the first/last run.
class LevelCursor {
 public:
  LevelCursor() = default;
  explicit LevelCursor(const Column* column) : column_(column) {}

  bool Valid() const {
    return column_ != nullptr && pos_ < column_->run_count();
  }
  const Run& Current() const { return column_->runs()[pos_]; }

  /// Advances to the next run.
  void Next() { ++pos_; }

  /// Positions the cursor at the first run with value >= `value`
  /// (forward-only). Returns Valid() afterwards.
  bool SkipTo(uint32_t value) {
    if (column_ == nullptr) return false;
    if (Valid() && Current().value >= value) return true;
    size_t lo = column_->LowerBoundValue(value);
    pos_ = lo > pos_ ? lo : pos_;
    return Valid();
  }

  /// Value range [lo, hi] the remaining runs span; {1, 0} (unsatisfiable)
  /// when exhausted. The same min/max the on-disk block skip directory
  /// carries, so a seed cursor's bounds translate directly into bounded
  /// column loads.
  ValueBounds bounds() const {
    if (!Valid()) return ValueBounds{1, 0};
    return ValueBounds{column_->runs()[pos_].value,
                       column_->runs().back().value};
  }

  size_t run_count() const {
    return column_ == nullptr ? 0 : column_->run_count();
  }
  const Column* column() const { return column_; }

 private:
  const Column* column_ = nullptr;
  size_t pos_ = 0;
};

/// The posting-source abstraction the search algorithms run against: one
/// interface over the in-memory JDeweyIndex, a DiskJDeweyIndex session,
/// and the SegmentedIndex, so JoinSearch / TopKSearch exist exactly once.
///
/// The contract mirrors the paper's I/O story (§III-B): Frequency and
/// MaxLength come from the directory alone (no data I/O); Resolve
/// materializes a term's list down to the requested level, optionally
/// restricted to per-level value bounds. A bounded resolve may return a
/// superset of the runs inside the bounds (partial columns are sound
/// whenever the caller joins against a list whose values all lie inside
/// them); sources without skip support simply ignore the bounds.
class TermSource {
 public:
  virtual ~TermSource() = default;

  /// Document frequency (list length); 0 for unknown terms. No data I/O.
  virtual uint32_t Frequency(const std::string& term) const = 0;

  /// Deepest occurrence level of `term`; 0 for unknown terms. No data I/O.
  virtual uint32_t MaxLength(const std::string& term) const = 0;

  /// Materializes `term`'s list with columns 1..up_to_level (clamped to
  /// the list's max length). `level_bounds`, when non-null, gives the
  /// value range the query can touch at each level (index = level - 1);
  /// skip-capable sources load only the overlapping blocks. Returns
  /// nullptr (ok) for unknown terms; repeated calls may widen an earlier
  /// materialization and return the same pointer.
  virtual StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t up_to_level, bool need_scores,
      const std::vector<ValueBounds>* level_bounds) = 0;

  /// Node with JDewey number `value` at `level`; kInvalidNode if none.
  virtual NodeId NodeAt(uint32_t level, uint32_t value) const = 0;

  /// Deepest level of the encoded tree.
  virtual uint32_t max_level() const = 0;

  /// Planner statistics of `term` (row count + per-level value
  /// histograms), or nullptr when the source carries none — the planner
  /// then falls back to Frequency-based estimates. No data I/O; the
  /// pointer stays valid until the source's PlanWatermark changes.
  virtual const TermStats* Stats(const std::string& /*term*/) const {
    return nullptr;
  }

  /// Monotone version of this source's contents: cached join plans are
  /// keyed on it and discarded when it moves (seal, compact, ingest).
  /// Immutable sources keep the default constant.
  virtual uint64_t PlanWatermark() const { return 1; }

  /// Cursor over a resolved list's column at `level` (1-based). Null
  /// column (level beyond the list) yields an exhausted cursor.
  static LevelCursor CursorAt(const JDeweyList& list, uint32_t level) {
    if (level == 0 || level > list.max_length) return LevelCursor();
    return LevelCursor(&list.column(level));
  }
};

/// TermSource over an in-memory JDeweyIndex: everything is already
/// materialized, so Resolve is a map lookup and bounds are ignored.
class MemoryTermSource : public TermSource {
 public:
  explicit MemoryTermSource(const JDeweyIndex& index) : index_(index) {}

  uint32_t Frequency(const std::string& term) const override {
    return index_.Frequency(term);
  }
  uint32_t MaxLength(const std::string& term) const override {
    const JDeweyList* list = index_.GetList(term);
    return list == nullptr ? 0 : list->max_length;
  }
  StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t /*up_to_level*/, bool /*need_scores*/,
      const std::vector<ValueBounds>* /*level_bounds*/) override {
    return index_.GetList(term);
  }
  NodeId NodeAt(uint32_t level, uint32_t value) const override {
    return index_.NodeAt(level, value);
  }
  uint32_t max_level() const override { return index_.max_level(); }
  const TermStats* Stats(const std::string& term) const override {
    return index_.StatsOf(term);
  }

  const JDeweyIndex& index() const { return index_; }

 private:
  const JDeweyIndex& index_;
};

/// Shared resolve pipeline of the complete-result search (used by
/// JoinSearch; kept here so every TermSource benefits identically):
/// computes l0 = min over keywords of MaxLength, resolves the seed list
/// (fewest rows) fully, derives per-level value bounds from the seed's
/// columns, and resolves every other list restricted to those bounds.
/// Any join match at level l carries a value present in the seed's
/// level-l column, so partial columns covering the seed's [first, last]
/// range are supersets of every run the join can touch — results are
/// bit-identical to full loads.
///
/// On success `lists` is keyword-aligned. When a keyword is unknown or
/// empty, `lists` is left empty (ok status) — the query has no answers.
Status ResolveForJoin(TermSource* source,
                      const std::vector<std::string>& keywords,
                      bool need_scores,
                      std::vector<const JDeweyList*>* lists);

}  // namespace xtopk

#endif  // XTOPK_INDEX_READER_H_
