// Multi-threaded stress tests of the concurrent-serving substrate: the
// sharded BufferPool, the DecodedBlockCache, and disk-index sessions
// hammering both from 8 threads must return bit-identical results to a
// single-threaded run. Run under TSan in CI (the tsan job builds these).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/join_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/decoded_cache.h"
#include "storage/page_file.h"
#include "storage/sharded_lru.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

constexpr int kThreads = 8;

TEST(ShardedLruCacheTest, SingleShardLruSemantics) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // refresh 1: now 2 is LRU
  cache.Put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ShardedLruCacheTest, ZeroCapacityDisablesCaching) {
  ShardedLruCache<int, int> cache(/*capacity=*/0, /*shards=*/4);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCacheTest, CostBudgetRespectedUnderReplacement) {
  ShardedLruCache<int, int> cache(/*capacity=*/100, /*shards=*/1);
  cache.Put(1, 10, 60);
  cache.Put(1, 11, 30);  // replacement must not leak the old cost
  cache.Put(2, 20, 60);  // fits: 30 + 60 <= 100
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_EQ(cache.cost_used(), 90u);
  cache.Put(3, 30, 200);  // exceeds the shard budget: not cached
  EXPECT_FALSE(cache.Get(3).has_value());
}

TEST(BufferPoolTest, ConcurrentGetPageIsCoherent) {
  // Write a file whose pages are self-describing, then read it back from
  // 8 threads through a small (eviction-heavy) sharded pool.
  std::string path = TempPath("concurrent_pool_pages");
  constexpr uint32_t kPages = 64;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, /*create=*/true).ok());
    for (uint32_t p = 0; p < kPages; ++p) {
      std::string data = "page-" + std::to_string(p);
      ASSERT_TRUE(file.AppendPage(data).ok());
    }
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path, /*create=*/false).ok());
  BufferPool pool(&file, /*capacity_pages=*/16, /*shards=*/4);
  const uint64_t hits_before =
      obs::MetricsRegistry::Global().GetCounter("storage.pool.hits").value();
  const uint64_t misses_before =
      obs::MetricsRegistry::Global().GetCounter("storage.pool.misses").value();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        uint32_t id = static_cast<uint32_t>((i * 13 + t * 7) % kPages);
        auto page = pool.GetPage(id);
        if (!page.ok()) {
          ++mismatches;
          continue;
        }
        std::string want = "page-" + std::to_string(id);
        if ((*page)->compare(0, want.size(), want) != 0) ++mismatches;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const uint64_t hits_after =
      obs::MetricsRegistry::Global().GetCounter("storage.pool.hits").value();
  const uint64_t misses_after =
      obs::MetricsRegistry::Global().GetCounter("storage.pool.misses").value();
  EXPECT_EQ((hits_after - hits_before) + (misses_after - misses_before),
            8u * 400u);
  EXPECT_LE(pool.cached_pages(), 16u);
  std::remove(path.c_str());
}

TEST(DecodedBlockCacheTest, EvictsAtSmallByteBudget) {
  // Columns of 100 runs cost ~100 * sizeof(Run) + overhead ≈ 1.3 KB; with
  // a 4 KB single-shard budget only ~2 fit, so inserting 8 must evict.
  DecodedBlockCache cache(/*byte_budget=*/4096, /*shards=*/1);
  auto make_column = [](uint32_t seed) {
    Column column;
    for (uint32_t i = 0; i < 100; ++i) {
      column.Append(i, seed + i);  // distinct values: one run each
    }
    return std::make_shared<const Column>(std::move(column));
  };
  for (uint32_t id = 0; id < 8; ++id) {
    cache.PutColumn(id, 1, make_column(id * 1000));
  }
  EXPECT_LE(cache.bytes_used(), 4096u);
  EXPECT_LT(cache.entry_count(), 8u);
  EXPECT_GE(cache.entry_count(), 1u);
  // LRU: the most recently inserted column survives, the first is gone.
  EXPECT_NE(cache.GetColumn(7, 1), nullptr);
  EXPECT_EQ(cache.GetColumn(0, 1), nullptr);
  // Survivors decode back bit-identically.
  auto survivor = cache.GetColumn(7, 1);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->runs().size(), 100u);
  EXPECT_EQ(survivor->runs()[0].value, 7000u);
}

TEST(DecodedBlockCacheTest, ZeroBudgetDisables) {
  DecodedBlockCache cache(/*byte_budget=*/0);
  EXPECT_FALSE(cache.enabled());
  Column column;
  column.Append(0, 42);
  cache.PutColumn(1, 1, std::make_shared<const Column>(std::move(column)));
  EXPECT_EQ(cache.GetColumn(1, 1), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(DecodedBlockCacheTest, KeyKindsDoNotCollide) {
  DecodedBlockCache cache(/*byte_budget=*/1 << 20);
  Column column;
  column.Append(0, 7);
  cache.PutColumn(5, 1, std::make_shared<const Column>(std::move(column)));
  cache.PutLengths(5, std::make_shared<const std::vector<uint16_t>>(
                          std::vector<uint16_t>{1, 2, 3}));
  cache.PutScores(5, std::make_shared<const std::vector<float>>(
                         std::vector<float>{0.5f}));
  ASSERT_NE(cache.GetColumn(5, 1), nullptr);
  ASSERT_NE(cache.GetLengths(5), nullptr);
  ASSERT_NE(cache.GetScores(5), nullptr);
  EXPECT_EQ(cache.GetLengths(5)->size(), 3u);
  EXPECT_EQ(cache.GetScores(5)->size(), 1u);
  EXPECT_EQ(cache.GetColumn(6, 1), nullptr);
}

/// The tentpole stress test: 8 threads serve queries through fresh
/// disk-index sessions sharing one environment (sharded pool + decoded
/// cache), and every result must be bit-identical to the single-threaded
/// reference. A tiny pool and decoded budget force constant eviction and
/// re-decode races.
TEST(ConcurrentServingTest, EightThreadSessionsMatchSingleThreaded) {
  XmlTree tree = MakeRandomTree(77, 2000, 4, 8, {"alpha", "beta", "gamma"},
                                0.15);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("concurrent_serving_idx");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "beta"},
      {"beta", "gamma"},
      {"alpha", "beta", "gamma"},
  };

  // Single-threaded reference over the in-memory index.
  std::vector<std::vector<SearchResult>> want;
  for (const auto& query : queries) {
    JoinSearch search(jindex);
    want.push_back(search.Search(query));
  }

  DiskIndexOptions options;
  options.pool_pages = 8;              // eviction-heavy
  options.pool_shards = 4;
  options.decoded_cache_bytes = 8192;  // eviction-heavy
  auto env = DiskIndexEnv::Open(path, options);
  ASSERT_TRUE(env.ok()) << env.status().ToString();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        size_t q = static_cast<size_t>(t + i) % queries.size();
        auto session = (*env)->NewSession();
        auto got = session->SearchComplete(queries[q], JoinSearchOptions{});
        if (!got.ok() || got->size() != want[q].size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < want[q].size(); ++j) {
          if ((*got)[j].node != want[q][j].node ||
              (*got)[j].score != want[q][j].score) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  DiskIoStats stats = (*env)->io_stats();
  // The decoded cache must have been exercised from both sides.
  EXPECT_GT(stats.decoded_hits + stats.decoded_misses, 0u);
  EXPECT_GT(stats.pool_hits + stats.pool_misses, 0u);
  std::remove(path.c_str());
}

/// Same environment shared by long-lived per-worker sessions (the batch
/// driver shape) — also deterministic, and the decoded cache turns later
/// workers' materializations into hits.
TEST(ConcurrentServingTest, SharedCachesProduceHitsAcrossSessions) {
  XmlTree tree = MakeRandomTree(31, 1200, 4, 7, {"alpha", "beta"}, 0.2);
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("shared_cache_idx");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  DiskIndexOptions options;
  options.decoded_cache_bytes = 16u << 20;
  auto env = DiskIndexEnv::Open(path, options);
  ASSERT_TRUE(env.ok());

  // First session decodes everything; the second must hit for every block.
  auto first = (*env)->NewSession();
  ASSERT_TRUE(first->SearchComplete({"alpha", "beta"}).ok());
  DiskIoStats after_first = (*env)->io_stats();
  EXPECT_EQ(after_first.decoded_hits, 0u);
  EXPECT_GT(after_first.decoded_misses, 0u);

  auto second = (*env)->NewSession();
  ASSERT_TRUE(second->SearchComplete({"alpha", "beta"}).ok());
  DiskIoStats after_second = (*env)->io_stats();
  EXPECT_EQ(after_second.decoded_misses, after_first.decoded_misses);
  EXPECT_GT(after_second.decoded_hits, 0u);

  // And the sessions' results agree.
  auto a = first->SearchComplete({"alpha", "beta"});
  auto b = second->SearchComplete({"alpha", "beta"});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].node, (*b)[i].node);
    EXPECT_EQ((*a)[i].score, (*b)[i].score);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtopk
