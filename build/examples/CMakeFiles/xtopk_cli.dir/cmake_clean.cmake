file(REMOVE_RECURSE
  "CMakeFiles/xtopk_cli.dir/xtopk_cli.cpp.o"
  "CMakeFiles/xtopk_cli.dir/xtopk_cli.cpp.o.d"
  "xtopk_cli"
  "xtopk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtopk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
