#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xtopk {
namespace serve {

namespace {

Status ConnectSocket(const std::string& host, uint16_t port, int* out_fd) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect failed: " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::Ok();
}

Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  return ConnectSocket(host, port, &fd_);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status Client::Send(const QueryRequest& request) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::string payload;
  EncodeRequest(request, &payload);
  std::string framed;
  EncodeFrame(&framed, payload);
  return SendAll(fd_, framed);
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  return SendAll(fd_, bytes);
}

Status Client::Receive(QueryResponse* response) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  for (;;) {
    std::string payload;
    bool complete = false;
    Status s = ExtractFrame(&read_buffer_, &payload, &complete);
    if (!s.ok()) return s;
    if (complete) return DecodeResponse(payload, response);
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv failed");
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::Call(const QueryRequest& request, QueryResponse* response) {
  Status s = Send(request);
  if (!s.ok()) return s;
  return Receive(response);
}

Status Client::HttpGet(const std::string& host, uint16_t port,
                       const std::string& target, int* http_status,
                       std::string* body) {
  int fd = -1;
  Status s = ConnectSocket(host, port, &fd);
  if (!s.ok()) return s;
  std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  s = SendAll(fd, request);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("recv failed");
    }
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 NNN ..." then headers, blank line, body.
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::IoError("malformed HTTP response");
  }
  size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > raw.size()) {
    return Status::IoError("malformed HTTP status line");
  }
  *http_status = 0;
  for (size_t i = space + 1; i < raw.size() && raw[i] >= '0' && raw[i] <= '9';
       ++i) {
    *http_status = *http_status * 10 + (raw[i] - '0');
  }
  size_t blank = raw.find("\r\n\r\n");
  size_t body_start = blank == std::string::npos ? raw.size() : blank + 4;
  body->assign(raw, body_start, std::string::npos);
  return Status::Ok();
}

}  // namespace serve
}  // namespace xtopk
