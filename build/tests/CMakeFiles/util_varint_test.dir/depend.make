# Empty dependencies file for util_varint_test.
# This may be replaced when dependencies are built.
