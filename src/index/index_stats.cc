#include "index/index_stats.h"

#include <cstdio>

#include "util/string_util.h"

namespace xtopk {

std::string IndexSizeReport::ToTable() const {
  char buf[256];
  std::string out;
  out += "Index sizes — " + corpus + "\n";
  auto row = [&](const char* name, uint64_t il, const char* aux_name,
                 uint64_t aux) {
    if (aux_name != nullptr) {
      std::snprintf(buf, sizeof(buf), "  %-12s IL %10s   %-8s %10s\n", name,
                    HumanBytes(il).c_str(), aux_name,
                    HumanBytes(aux).c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "  %-12s IL %10s\n", name,
                    HumanBytes(il).c_str());
    }
    out += buf;
  };
  row("Join-based", join_based_il, "sparse", join_based_sparse);
  row("stack-based", stack_based_il, nullptr, 0);
  std::snprintf(buf, sizeof(buf), "  %-12s B-tree %6s\n", "index-based",
                HumanBytes(index_based_btree).c_str());
  out += buf;
  row("Top-K Join", topk_join_il, "sparse", topk_join_sparse);
  row("RDIL", rdil_il, "B+-tree", rdil_btree);
  return out;
}

IndexSizeReport MeasureIndexSizes(const IndexBuilder& builder,
                                  const std::string& corpus) {
  IndexSizeReport report;
  report.corpus = corpus;

  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  report.join_based_il = jindex.EncodedListBytes(/*include_scores=*/false);
  report.join_based_sparse = jindex.SparseIndexBytes();

  DeweyIndex dindex = builder.BuildDeweyIndex();
  report.stack_based_il = dindex.EncodedListBytes();

  BTree combined = builder.BuildCombinedBTree(dindex);
  report.index_based_btree = combined.EncodedSizeBytes();

  TopKIndex topk = builder.BuildTopKIndex(jindex);
  report.topk_join_il = topk.EncodedListBytes();
  report.topk_join_sparse = report.join_based_sparse;

  RdilIndex rdil = builder.BuildRdilIndex(dindex);
  report.rdil_il = rdil.EncodedListBytes();
  report.rdil_btree = rdil.BTreeBytes();

  return report;
}

}  // namespace xtopk
