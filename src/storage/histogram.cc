#include "storage/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xtopk {

LevelHistogram LevelHistogram::FromColumn(const Column& column,
                                          size_t max_buckets) {
  LevelHistogram hist;
  const std::vector<Run>& runs = column.runs();
  if (runs.empty() || max_buckets == 0) return hist;
  size_t n = runs.size();
  size_t buckets = std::min(max_buckets, n);
  hist.buckets_.reserve(buckets);
  // Equal-height split: bucket i covers runs [i*n/B, (i+1)*n/B). Distinct
  // run values are strictly increasing, so consecutive buckets get disjoint
  // [lo, hi] ranges.
  for (size_t i = 0; i < buckets; ++i) {
    size_t begin = i * n / buckets;
    size_t end = (i + 1) * n / buckets;
    if (begin == end) continue;
    Bucket b;
    b.lo = runs[begin].value;
    b.hi = runs[end - 1].value;
    b.count = static_cast<double>(end - begin);
    hist.buckets_.push_back(b);
  }
  hist.total_ = static_cast<double>(n);
  return hist;
}

bool LevelHistogram::AssignChecked(std::vector<Bucket> buckets) {
  double total = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    if (b.hi < b.lo || b.count < 0.0) return false;
    if (i > 0 && buckets[i - 1].hi >= b.lo) return false;
    total += b.count;
  }
  buckets_ = std::move(buckets);
  total_ = total;
  return true;
}

namespace {

double Width(uint32_t lo, uint32_t hi) {
  return static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
}

/// Density (values per integer position) of a bucket.
double Density(const LevelHistogram::Bucket& b) {
  return b.count / Width(b.lo, b.hi);
}

}  // namespace

void LevelHistogram::Merge(const LevelHistogram& other, size_t max_buckets) {
  if (other.buckets_.empty()) return;
  if (buckets_.empty()) {
    buckets_ = other.buckets_;
    total_ = other.total_;
    Coalesce(max_buckets);
    return;
  }
  // Union of both inputs' boundaries: cut points are bucket starts and
  // one-past-ends so every elementary interval has constant density on
  // both sides. Walk the cuts, summing the two step densities.
  std::vector<uint64_t> cuts;
  cuts.reserve(2 * (buckets_.size() + other.buckets_.size()));
  for (const Bucket& b : buckets_) {
    cuts.push_back(b.lo);
    cuts.push_back(static_cast<uint64_t>(b.hi) + 1);
  }
  for (const Bucket& b : other.buckets_) {
    cuts.push_back(b.lo);
    cuts.push_back(static_cast<uint64_t>(b.hi) + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Bucket> merged;
  size_t ia = 0;
  size_t ib = 0;
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    uint64_t lo = cuts[c];
    uint64_t hi = cuts[c + 1] - 1;
    while (ia < buckets_.size() && buckets_[ia].hi < lo) ++ia;
    while (ib < other.buckets_.size() && other.buckets_[ib].hi < lo) ++ib;
    double density = 0.0;
    if (ia < buckets_.size() && buckets_[ia].lo <= lo &&
        lo <= buckets_[ia].hi) {
      density += Density(buckets_[ia]);
    }
    if (ib < other.buckets_.size() && other.buckets_[ib].lo <= lo &&
        lo <= other.buckets_[ib].hi) {
      density += Density(other.buckets_[ib]);
    }
    if (density <= 0.0) continue;
    Bucket b;
    b.lo = static_cast<uint32_t>(lo);
    b.hi = static_cast<uint32_t>(hi);
    b.count = density * Width(b.lo, b.hi);
    // Fuse with the previous interval when density is continuous across
    // the cut — keeps the merged histogram from fragmenting needlessly.
    if (!merged.empty() && merged.back().hi + 1 == b.lo) {
      double prev_density = Density(merged.back());
      if (std::abs(prev_density - density) <=
          1e-9 * std::max(1.0, prev_density)) {
        merged.back().hi = b.hi;
        merged.back().count += b.count;
        continue;
      }
    }
    merged.push_back(b);
  }
  buckets_ = std::move(merged);
  total_ = 0.0;
  for (const Bucket& b : buckets_) total_ += b.count;
  Coalesce(max_buckets);
}

void LevelHistogram::Coalesce(size_t max_buckets) {
  if (max_buckets == 0) max_buckets = 1;
  while (buckets_.size() > max_buckets) {
    // Merge the adjacent pair with the smallest combined count: cheapest
    // loss of resolution where the least mass lives.
    size_t best = 0;
    double best_count = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
      double combined = buckets_[i].count + buckets_[i + 1].count;
      if (combined < best_count) {
        best_count = combined;
        best = i;
      }
    }
    buckets_[best].hi = buckets_[best + 1].hi;
    buckets_[best].count += buckets_[best + 1].count;
    buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
}

double LevelHistogram::EstimateOverlap(const LevelHistogram& other) const {
  if (buckets_.empty() || other.buckets_.empty()) return 0.0;
  double overlap = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < buckets_.size() && ib < other.buckets_.size()) {
    const Bucket& a = buckets_[ia];
    const Bucket& b = other.buckets_[ib];
    uint32_t lo = std::max(a.lo, b.lo);
    uint32_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) {
      double width = Width(lo, hi);
      double da = Density(a) * width;  // expected values of A in [lo, hi]
      double db = Density(b) * width;  // expected values of B in [lo, hi]
      // Between the two classic bucket estimates: independence (da*db /
      // width — right for unrelated sets, blind to co-location when both
      // sides are sparse in the slice) and containment (min(da, db) — the
      // System-R equi-join bound, right for correlated sets, optimistic
      // for unrelated ones). Their geometric mean keeps disjoint slices
      // at zero and dense-identical slices at the full count while giving
      // sparse co-located sets a visible signal; containment stays the
      // hard cap.
      double independence = da * db / width;
      double containment = std::min(da, db);
      overlap += std::min(containment, std::sqrt(independence * containment));
    }
    if (a.hi <= b.hi) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return overlap;
}

double LevelHistogram::EstimateInRange(uint32_t lo, uint32_t hi) const {
  if (hi < lo) return 0.0;
  double count = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.hi < lo) continue;
    if (b.lo > hi) break;
    uint32_t ilo = std::max(b.lo, lo);
    uint32_t ihi = std::min(b.hi, hi);
    count += Density(b) * Width(ilo, ihi);
  }
  return count;
}

void TermStats::Merge(const TermStats& other, size_t max_buckets) {
  // A side with rows but no histograms poisons the merge: the combined
  // value distribution is unknown, so keep only the row total.
  bool poisoned = (rows > 0 && !has_histograms()) ||
                  (other.rows > 0 && !other.has_histograms());
  rows += other.rows;
  if (poisoned) {
    levels.clear();
    return;
  }
  if (other.levels.size() > levels.size()) {
    levels.resize(other.levels.size());
  }
  for (size_t l = 0; l < other.levels.size(); ++l) {
    levels[l].Merge(other.levels[l], max_buckets);
  }
}

}  // namespace xtopk
