#include "index/index_validate.h"

#include <string>

#include "index/index_access.h"

namespace xtopk {
namespace {

Status Fail(const std::string& term, const std::string& what) {
  return Status::Corruption("index validate: list '" + term + "': " + what);
}

}  // namespace

Status ValidateIndex(const JDeweyIndex& index, const XmlTree* tree) {
  // Node mapping: sorted, duplicate-free per level.
  const auto& level_nodes = IndexIoAccess::LevelNodes(index);
  for (size_t l = 0; l < level_nodes.size(); ++l) {
    const auto& level = level_nodes[l];
    for (size_t i = 1; i < level.size(); ++i) {
      if (level[i - 1].first >= level[i].first) {
        return Status::Corruption(
            "index validate: node mapping unsorted at level " +
            std::to_string(l + 1));
      }
    }
    if (tree != nullptr) {
      for (const auto& [value, node] : level) {
        if (node >= tree->node_count() || tree->level(node) != l + 1) {
          return Status::Corruption(
              "index validate: node mapping points at wrong level");
        }
      }
    }
  }

  for (size_t t = 0; t < index.terms().size(); ++t) {
    const std::string& term = index.terms()[t];
    const JDeweyList& list = index.lists()[t];
    const uint32_t rows = list.num_rows();
    if (list.scores.size() != rows) return Fail(term, "score count mismatch");
    if (list.columns.size() != list.max_length) {
      return Fail(term, "column count != max length");
    }
    uint16_t max_seen = 0;
    for (uint32_t r = 0; r < rows; ++r) {
      if (list.lengths[r] == 0 || list.lengths[r] > list.max_length) {
        return Fail(term, "row length out of range");
      }
      max_seen = std::max(max_seen, list.lengths[r]);
    }
    if (rows > 0 && max_seen != list.max_length) {
      return Fail(term, "max length not attained by any row");
    }

    for (uint32_t level = 1; level <= list.max_length; ++level) {
      const Column& col = list.columns[level - 1];
      // Runs sorted by value and row, non-overlapping, within bounds.
      uint32_t expected_rows = 0;
      for (uint32_t r = 0; r < rows; ++r) {
        if (list.lengths[r] >= level) ++expected_rows;
      }
      if (col.row_count() != expected_rows) {
        return Fail(term, "column " + std::to_string(level) +
                              " row count mismatch");
      }
      uint32_t prev_value = 0;
      uint32_t prev_end = 0;
      bool first = true;
      for (const Run& run : col.runs()) {
        if (run.count == 0) return Fail(term, "empty run");
        if (!first && run.value <= prev_value) {
          return Fail(term, "runs not value-sorted");
        }
        if (!first && run.first_row < prev_end) {
          return Fail(term, "runs overlap");
        }
        if (run.end_row() > rows) return Fail(term, "run past row count");
        // Every row of the run must reach this level.
        for (uint32_t r = run.first_row; r < run.end_row(); ++r) {
          if (list.lengths[r] < level) {
            return Fail(term, "run covers a too-short row");
          }
        }
        // The value must resolve to a node at this level.
        if (index.NodeAt(level, run.value) == kInvalidNode) {
          return Fail(term, "column value not in node mapping");
        }
        prev_value = run.value;
        prev_end = run.end_row();
        first = false;
      }
    }

    for (uint32_t r = 0; r < rows; ++r) {
      if (!(list.scores[r] > 0.0f) || list.scores[r] > 1.0f) {
        // Scores may legitimately be all-zero when the index was stored
        // without them; accept that uniform case.
        bool all_zero = true;
        for (float s : list.scores) {
          if (s != 0.0f) all_zero = false;
        }
        if (all_zero) break;
        return Fail(term, "score out of range");
      }
    }

    if (tree != nullptr) {
      // Row sequences are root paths: consecutive components are
      // parent/child in the tree.
      for (uint32_t r = 0; r < rows; ++r) {
        NodeId prev = kInvalidNode;
        for (uint32_t level = 1; level <= list.lengths[r]; ++level) {
          const Run* run = list.columns[level - 1].FindRow(r);
          if (run == nullptr) return Fail(term, "row missing a component");
          NodeId node = index.NodeAt(level, run->value);
          if (level > 1 && tree->parent(node) != prev) {
            return Fail(term, "row sequence is not a root path");
          }
          prev = node;
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace xtopk
