# Empty dependencies file for btree_btree_test.
# This may be replaced when dependencies are built.
