file(REMOVE_RECURSE
  "CMakeFiles/core_paper_fig5_test.dir/core/paper_fig5_test.cc.o"
  "CMakeFiles/core_paper_fig5_test.dir/core/paper_fig5_test.cc.o.d"
  "core_paper_fig5_test"
  "core_paper_fig5_test.pdb"
  "core_paper_fig5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_paper_fig5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
