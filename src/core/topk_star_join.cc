#include "core/topk_star_join.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "obs/metrics.h"

namespace xtopk {

namespace {

// Mirrored once per Run() (never per tuple) so the hot loop stays free of
// atomic traffic; bucket_peak goes to a histogram because it is a per-run
// maximum, not a summable count.
void FlushStarJoinStatsToRegistry(const StarJoinStats& stats) {
  XTOPK_COUNTER("core.topk.star.runs").Add(1);
  XTOPK_COUNTER("core.topk.star.tuples_read").Add(stats.tuples_read);
  XTOPK_COUNTER("core.topk.star.early_emissions").Add(stats.early_emissions);
  XTOPK_COUNTER("core.topk.star.tuples_skipped").Add(stats.tuples_skipped);
  XTOPK_HISTOGRAM("core.topk.star.bucket_peak").Record(stats.bucket_peak);
}

}  // namespace

VectorRankedSource::VectorRankedSource(std::vector<RankedTuple> tuples)
    : tuples_(std::move(tuples)) {
  assert(std::is_sorted(tuples_.begin(), tuples_.end(),
                        [](const RankedTuple& a, const RankedTuple& b) {
                          return a.score > b.score;
                        }));
}

const RankedTuple* VectorRankedSource::Peek() {
  return pos_ < tuples_.size() ? &tuples_[pos_] : nullptr;
}

void VectorRankedSource::Pop() { ++pos_; }

StarThreshold::StarThreshold(size_t k, bool group_mode)
    : k_(k),
      group_mode_(group_mode),
      head_(k, kExhausted),
      max_seen_(k, kExhausted),
      max_set_(k, false) {}

void StarThreshold::SetHeadScore(size_t source, double score) {
  head_[source] = score;
  if (!max_set_[source] && score != kExhausted) {
    max_seen_[source] = score;
    max_set_[source] = true;
  }
}

void StarThreshold::AddPartial(uint32_t mask, double sum) {
  groups_[mask].insert(sum);
}

void StarThreshold::RemovePartial(uint32_t mask, double sum) {
  auto it = groups_.find(mask);
  assert(it != groups_.end());
  auto pos = it->second.find(sum);
  assert(pos != it->second.end());
  it->second.erase(pos);
  if (it->second.empty()) groups_.erase(it);
}

double StarThreshold::Bound() const {
  double bound = kExhausted;
  if (!group_mode_) {
    // Classic bound: one input at its head score, the others at their max.
    for (size_t i = 0; i < k_; ++i) {
      if (head_[i] == kExhausted) continue;
      double b = head_[i];
      bool feasible = true;
      for (size_t j = 0; j < k_ && feasible; ++j) {
        if (j == i) continue;
        if (!max_set_[j]) {
          feasible = false;  // nothing ever read from j
        } else {
          b += max_seen_[j];
        }
      }
      if (feasible) bound = std::max(bound, b);
    }
    return bound;
  }

  // Grouped bound (§IV-B). Case 1: an id unseen everywhere.
  double case1 = 0.0;
  bool case1_feasible = true;
  for (size_t i = 0; i < k_; ++i) {
    if (head_[i] == kExhausted) {
      case1_feasible = false;
      break;
    }
    case1 += head_[i];
  }
  if (case1_feasible) bound = std::max(bound, case1);

  // Case 2: partially-joined ids, per group: ms(G_P) + Σ_{j∉P} s^j.
  for (const auto& [mask, sums] : groups_) {
    double b = *sums.rbegin();  // ms(G_P)
    bool feasible = true;
    for (size_t j = 0; j < k_ && feasible; ++j) {
      if (mask & (1u << j)) continue;
      if (head_[j] == kExhausted) {
        feasible = false;  // this partial can never complete
      } else {
        b += head_[j];
      }
    }
    if (feasible) bound = std::max(bound, b);
  }
  return bound;
}

TopKStarJoin::TopKStarJoin(std::vector<RankedSource*> sources,
                           StarJoinOptions options)
    : sources_(std::move(sources)), options_(options) {}

std::vector<StarJoinResultRow> TopKStarJoin::Run() {
  stats_ = StarJoinStats{};
  const size_t k = sources_.size();
  assert(k >= 1 && k <= 31);
  const uint32_t full_mask = k == 32 ? ~0u : ((1u << k) - 1);

  StarThreshold threshold(k, options_.group_threshold);
  for (size_t i = 0; i < k; ++i) {
    const RankedTuple* head = sources_[i]->Peek();
    threshold.SetHeadScore(i,
                           head ? head->score : StarThreshold::kExhausted);
  }

  struct Partial {
    uint32_t mask = 0;
    double sum = 0.0;
  };
  std::unordered_map<uint64_t, Partial> bucket;

  // Completed results not yet provably in the top k.
  struct Pending {
    uint64_t id;
    double score;
  };
  auto cmp = [](const Pending& a, const Pending& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id > b.id;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(cmp)> pending(
      cmp);

  std::vector<StarJoinResultRow> emitted;
  size_t completed = 0;  // completed results (pending + emitted)
  size_t rr_next = 0;    // round-robin cursor

  auto flush = [&](bool inputs_live) {
    double bound = inputs_live ? threshold.Bound() : StarThreshold::kExhausted;
    // "Early" means the threshold proved the result safe while future
    // results were still possible (bound above -inf).
    bool early = bound != StarThreshold::kExhausted;
    while (!pending.empty() && emitted.size() < options_.k &&
           pending.top().score >= bound) {
      StarJoinResultRow row;
      row.id = pending.top().id;
      row.score = pending.top().score;
      row.emitted_early = early;
      if (early) ++stats_.early_emissions;
      emitted.push_back(row);
      pending.pop();
    }
  };

  while (emitted.size() < options_.k) {
    // Pick the next input: round-robin until k results exist, then the one
    // with the maximum next score (§IV-B step 1).
    size_t chosen = k;  // sentinel
    if (completed < options_.k) {
      for (size_t step = 0; step < k; ++step) {
        size_t i = (rr_next + step) % k;
        if (sources_[i]->Peek() != nullptr) {
          chosen = i;
          rr_next = (i + 1) % k;
          break;
        }
      }
    } else {
      double best = StarThreshold::kExhausted;
      for (size_t i = 0; i < k; ++i) {
        const RankedTuple* head = sources_[i]->Peek();
        if (head != nullptr && head->score > best) {
          best = head->score;
          chosen = i;
        }
      }
    }
    if (chosen == k) {  // every input exhausted
      flush(/*inputs_live=*/false);
      break;
    }

    RankedTuple tuple = *sources_[chosen]->Peek();
    sources_[chosen]->Pop();
    ++stats_.tuples_read;
    const RankedTuple* next = sources_[chosen]->Peek();
    threshold.SetHeadScore(
        chosen, next ? next->score : StarThreshold::kExhausted);

    // Probe-bound skip: an id the caller proved unjoinable never enters
    // the bucket. The head-score update above already happened, so the
    // threshold still upper-bounds every remaining completion.
    if (options_.use_id_bounds &&
        (tuple.id < options_.id_lo || tuple.id > options_.id_hi)) {
      ++stats_.tuples_skipped;
      flush(/*inputs_live=*/true);
      continue;
    }

    uint32_t bit = 1u << chosen;
    Partial& partial = bucket[tuple.id];
    if (partial.mask & bit) {
      // Duplicate id within one input: keep the first (highest) score.
      flush(/*inputs_live=*/true);
      continue;
    }
    if (partial.mask != 0) threshold.RemovePartial(partial.mask, partial.sum);
    partial.mask |= bit;
    partial.sum += tuple.score;
    if (partial.mask == full_mask) {
      pending.push(Pending{tuple.id, partial.sum});
      ++completed;
      bucket.erase(tuple.id);
    } else {
      threshold.AddPartial(partial.mask, partial.sum);
    }
    stats_.bucket_peak = std::max<uint64_t>(stats_.bucket_peak, bucket.size());

    flush(/*inputs_live=*/true);
  }
  FlushStarJoinStatsToRegistry(stats_);
  return emitted;
}

}  // namespace xtopk
