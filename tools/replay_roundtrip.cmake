# Record -> schema-check -> replay round trip for xtopk_replay (driven by
# the replay_roundtrip ctest entry). Fails if any stage exits non-zero.
set(capture "${WORK_DIR}/replay_roundtrip.jsonl")

execute_process(
  COMMAND "${REPLAY_BIN}" --record "${capture}"
  RESULT_VARIABLE record_rc)
if(NOT record_rc EQUAL 0)
  message(FATAL_ERROR "record failed: ${record_rc}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${TOOLS_DIR}/check_slowlog_schema.py" "${capture}"
  RESULT_VARIABLE schema_rc)
if(NOT schema_rc EQUAL 0)
  message(FATAL_ERROR "slow-log schema check failed: ${schema_rc}")
endif()

execute_process(
  COMMAND "${REPLAY_BIN}" "${capture}"
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "replay failed: ${replay_rc}")
endif()

file(REMOVE "${capture}")
