// Table I reproduction: serialized index sizes of every index family on
// the DBLP-like and XMark-like corpora.
//
// Paper (Table I, 496 MB DBLP / 113 MB XMark):
//              DBLP                      XMark
//   Join-based   IL 327MB  sparse 14MB    IL 302MB  sparse 4MB
//   stack-based  IL 392MB                 IL 267MB
//   index-based  B-tree 2.1GB             B-tree 1.3GB
//   Top-K Join   IL 394MB  sparse 14MB    IL 351MB  sparse 4MB
//   RDIL         IL 392MB  B+-tree 446MB  IL 267MB  B+-tree 252MB
//
// The reproduction target is the shape: join-based IL in the same ballpark
// as the stack-based Dewey lists; the (keyword, Dewey) B-tree an order of
// magnitude larger; Top-K Join IL = join-based + scores + segment orders;
// RDIL paying an extra per-keyword B+-tree comparable to its lists.
//
// Beyond the Table-I family figures, each corpus also reports the full
// on-disk footprint of the join-based index — segment file plus the
// planner-statistics manifest sidecar, which the raw IL figure omits —
// broken into components (tree mapping, postings, dictionaries,
// manifests) for the legacy v2 layout and the compressed v3 layout
// (DESIGN.md §15). The `BENCH` lines carry the breakdown.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "index/disk_index.h"
#include "index/index_stats.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace {

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

int64_t GaugeValue(const char* name) {
  return xtopk::obs::MetricsRegistry::Global().GetGauge(name).value();
}

/// Serializes `jindex` in `format` ("v2" legacy / "v3" compressed), emits
/// one BENCH line with the total bytes (manifest sidecar included — the
/// raw IL figures omit it) and the per-component breakdown published by
/// the writer, and returns the total.
uint64_t EmitSerializedBreakdown(const char* corpus, const char* format,
                                 const xtopk::JDeweyIndex& jindex,
                                 const xtopk::IndexSizeReport& report) {
  const char* tmp = std::getenv("TMPDIR");
  std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                     "/xtopk_table1_" + corpus + "_" + format;
  xtopk::DiskIndexWriter::Options options;
  options.include_scores = false;  // Table I's join-based configuration
  if (std::string(format) == "v3") {
    options.dict_terms = true;
    options.dag = true;
    options.dict_rows = true;
  }
  xtopk::DiskIndexWriter::Write(jindex, path, options).ok();
  uint64_t file_bytes = FileBytes(path);
  uint64_t manifest_bytes = FileBytes(path + ".manifest");
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());

  uint64_t total = file_bytes + manifest_bytes;
  xtopk::bench::BenchJson("table1_index_size")
      .Field("corpus", corpus)
      .Field("format", format)
      .Field("file_bytes", file_bytes)
      .Field("manifest_bytes", manifest_bytes)
      .Field("total_bytes", total)
      .Field("component_tree",
             static_cast<uint64_t>(GaugeValue("storage.disk_write.bytes.tree")))
      .Field("component_postings",
             static_cast<uint64_t>(
                 GaugeValue("storage.disk_write.bytes.postings")))
      .Field("component_directory",
             static_cast<uint64_t>(
                 GaugeValue("storage.disk_write.bytes.directory")))
      .Field("component_dictionaries",
             static_cast<uint64_t>(
                 GaugeValue("storage.disk_write.bytes.sidecar")))
      .Field("component_manifests", manifest_bytes)
      .Field("join_based_il", report.join_based_il)
      .Field("join_based_sparse", report.join_based_sparse)
      .Field("stack_based_il", report.stack_based_il)
      .Field("index_based_btree", report.index_based_btree)
      .Field("topk_join_il", report.topk_join_il)
      .Field("topk_join_sparse", report.topk_join_sparse)
      .Field("rdil_il", report.rdil_il)
      .Field("rdil_btree", report.rdil_btree)
      .Emit();
  return total;
}

void RunCorpus(const char* corpus, xtopk::bench::BenchCorpus (*build)()) {
  xtopk::bench::BenchCorpus bench_corpus = build();
  xtopk::IndexSizeReport report = xtopk::MeasureIndexSizes(
      *bench_corpus.builder, std::string(corpus) + "-like (scaled)");
  std::printf("%s\n", report.ToTable().c_str());
  std::printf("  ratios: index-based/join-IL = %.1fx, rdil-btree/rdil-IL"
              " = %.2fx, topk-IL/join-IL = %.2fx\n",
              double(report.index_based_btree) / report.join_based_il,
              double(report.rdil_btree) / report.rdil_il,
              double(report.topk_join_il) / report.join_based_il);

  xtopk::JDeweyIndex plain = bench_corpus.builder->BuildJDeweyIndex();
  uint64_t v2 = EmitSerializedBreakdown(corpus, "v2", plain, report);

  xtopk::IndexBuildOptions comp_options;
  comp_options.build_threads = 8;
  comp_options.enable_dag = true;
  comp_options.enable_dict = true;
  xtopk::IndexBuilder comp_builder(*bench_corpus.tree, comp_options);
  xtopk::JDeweyIndex comp = comp_builder.BuildJDeweyIndex();
  uint64_t v3 = EmitSerializedBreakdown(corpus, "v3", comp, report);

  std::printf("  on-disk join-based + manifest: v2 %s, v3 (dict+DAG) %s"
              " (%.1f%% smaller)\n\n",
              xtopk::HumanBytes(v2).c_str(), xtopk::HumanBytes(v3).c_str(),
              v2 == 0 ? 0.0 : (1.0 - double(v3) / v2) * 100.0);
}

}  // namespace

int main() {
  std::printf("=== Table I: index sizes ===\n\n");
  RunCorpus("dblp", xtopk::bench::BuildDblpBenchCorpus);
  RunCorpus("xmark", xtopk::bench::BuildXmarkBenchCorpus);
  return 0;
}
