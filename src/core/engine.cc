#include "core/engine.h"

#include <cstdio>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/windowed.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "xml/tokenizer.h"

namespace xtopk {

namespace {

const char* PlannerModeName(bool planned, bool cache_hit) {
  if (!planned) return "heuristic";
  return cache_hit ? "planned_cached" : "planned";
}

/// Builds and records a slow-log capture. Called only after the cheap
/// ShouldCapture check passed.
void CaptureSlowQuery(const BatchQuery& query,
                      const std::vector<std::string>& normalized,
                      const BatchQueryResult& result,
                      const obs::QueryTrace* trace) {
  obs::SlowQueryCapture capture;
  capture.ts_us = obs::MonotonicNowUs();
  capture.keywords = normalized;
  capture.k = query.k;
  capture.semantics = query.semantics == Semantics::kElca ? "elca" : "slca";
  capture.wall_us = result.accounting.wall_us;
  capture.hits = result.hits.size();
  capture.result_fingerprint = ResultFingerprint(result.hits);
  capture.accounting = result.accounting;
  if (trace != nullptr) capture.trace_json = trace->ToJson();
  obs::SlowQueryLog::Global().Record(capture);
}

}  // namespace

std::string ResultFingerprint(const std::vector<QueryHit>& hits) {
  std::string blob;
  blob.reserve(hits.size() * 32);
  char buf[64];
  for (const QueryHit& hit : hits) {
    // %.9g makes the digest robust to sub-ulp score differences between
    // builds (FMA contraction and the like) while still distinguishing any
    // real scoring change.
    std::snprintf(buf, sizeof(buf), "%u:%u:%.9g;", hit.node, hit.level,
                  hit.score);
    blob += buf;
  }
  return obs::FingerprintHex(blob);
}

Engine::Engine(const XmlTree& tree, EngineOptions options)
    : tree_(tree), options_(options) {
  options_.index.scoring = options_.scoring;
  builder_ = std::make_unique<IndexBuilder>(tree_, options_.index);
  jdewey_index_ = builder_->BuildJDeweyIndex();
  topk_index_ = builder_->BuildTopKIndex(jdewey_index_);
}

std::vector<QueryHit> Engine::Materialize(
    const std::vector<SearchResult>& results) const {
  std::vector<QueryHit> hits;
  hits.reserve(results.size());
  for (const SearchResult& r : results) {
    QueryHit hit;
    hit.node = r.node;
    hit.level = r.level;
    hit.score = r.score;
    hit.tag = tree_.TagName(r.node);
    hit.snippet = tree_.text(r.node);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::string> Engine::Normalize(
    const std::vector<std::string>& keywords) const {
  // Same analyzer as indexing; multi-token inputs expand, duplicates drop.
  Tokenizer tokenizer(options_.index.tokenizer);
  std::vector<std::string> normalized;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      if (seen.insert(token).second) normalized.push_back(token);
    }
  }
  return normalized;
}

BatchQueryResult Engine::RunQuery(const BatchQuery& query,
                                  obs::QueryTrace* trace) const {
  Timer timer;
  const double cpu_start = obs::ThreadCpuMicros();
  BatchQueryResult out;
  // Every storage/index/core hook below this point bills this query.
  obs::ScopedAccounting accounting_scope(&out.accounting);
  obs::ScopedSpan root(trace, "query");
  if (root.enabled()) {
    root.Label("semantics",
               query.semantics == Semantics::kElca ? "elca" : "slca");
    root.Label("mode", query.k == 0 ? "complete" : "topk");
    root.Stat("k", static_cast<double>(query.k));
  }

  std::vector<std::string> normalized;
  {
    obs::ScopedSpan span(trace, "tokenize");
    normalized = Normalize(query.keywords);
    span.Stat("keywords_in", static_cast<double>(query.keywords.size()));
    span.Stat("keywords_out", static_cast<double>(normalized.size()));
  }
  if (trace != nullptr) {
    // Directory-only probe: the searches resolve the lists themselves; this
    // span only surfaces the per-term frequencies in the EXPLAIN output.
    obs::ScopedSpan span(trace, "term_lookup");
    for (const std::string& term : normalized) {
      uint32_t freq = jdewey_index_.Frequency(term);
      span.Stat("terms", 1.0);
      span.Label(term, std::to_string(freq));
    }
  }

  if (query.k == 0) {
    JoinSearchOptions join_options;
    join_options.semantics = query.semantics;
    join_options.compute_scores = true;
    join_options.scoring = options_.scoring;
    join_options.plan_cache = &plan_cache_;
    join_options.deadline = query.deadline;
    join_options.trace = trace;
    JoinSearch search(jdewey_index_, join_options);
    std::vector<SearchResult> found = search.Search(normalized);
    obs::ScopedSpan span(trace, "materialize");
    SortByScoreDesc(&found);
    out.hits = Materialize(found);
    out.status = search.status();
    span.Stat("hits", static_cast<double>(out.hits.size()));
    out.join_stats = search.stats();
    out.accounting.planner_mode = PlannerModeName(
        search.stats().planned, search.stats().plan_cache_hit);
  } else {
    TopKSearchOptions topk_options;
    topk_options.semantics = query.semantics;
    topk_options.k = query.k;
    topk_options.scoring = options_.scoring;
    topk_options.plan_cache = &plan_cache_;
    topk_options.deadline = query.deadline;
    topk_options.trace = trace;
    TopKSearch search(topk_index_, topk_options);
    std::vector<SearchResult> found = search.Search(normalized);
    obs::ScopedSpan span(trace, "materialize");
    out.hits = Materialize(found);
    out.status = search.status();
    span.Stat("hits", static_cast<double>(out.hits.size()));
    out.accounting.planner_mode = PlannerModeName(
        search.stats().planned, search.stats().plan_cache_hit);
  }
  root.Stat("hits", static_cast<double>(out.hits.size()));
  // Only run-invariant resource stats may go on the span: batch traces are
  // compared span-for-span against Explain traces, so anything cache- or
  // timing-dependent (hit counts, planner_mode, wall time) stays off the
  // tree and rides in `accounting` instead.
  root.Stat("pages_read", static_cast<double>(out.accounting.pages_read));
  root.Stat("bytes_decoded",
            static_cast<double>(out.accounting.bytes_decoded));
  root.Stat("rows_joined", static_cast<double>(out.accounting.rows_joined));
  root.Close();

  const double wall_us = timer.ElapsedMicros();
  out.accounting.wall_us = wall_us;
  out.accounting.cpu_us = obs::ThreadCpuMicros() - cpu_start;

  XTOPK_COUNTER("engine.queries").Add(1);
  if (out.status.code() == StatusCode::kDeadlineExceeded) {
    XTOPK_COUNTER("engine.deadline_expirations").Add(1);
  }
  XTOPK_HISTOGRAM("engine.query_us")
      .Record(static_cast<uint64_t>(wall_us));
  XTOPK_WINDOWED_COUNTER("engine.queries").Add(1);
  XTOPK_WINDOWED_HISTOGRAM("engine.query_us")
      .Record(static_cast<uint64_t>(wall_us));

  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  if (slow_log.ShouldCapture(wall_us, out.accounting.pages_read)) {
    CaptureSlowQuery(query, normalized, out, trace);
  }
  return out;
}

std::vector<QueryHit> Engine::Search(const std::vector<std::string>& keywords,
                                     Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = 0;
  query.semantics = semantics;
  return RunQuery(query, nullptr).hits;
}

std::string HighlightKeywords(const std::string& text,
                              const std::vector<std::string>& keywords,
                              const std::string& open,
                              const std::string& close) {
  std::unordered_set<std::string> wanted;
  Tokenizer tokenizer;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      wanted.insert(token);
    }
  }
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9');
    if (!alnum) {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t start = i;
    std::string token;
    while (i < text.size()) {
      char t = text[i];
      bool a = (t >= 'a' && t <= 'z') || (t >= 'A' && t <= 'Z') ||
               (t >= '0' && t <= '9');
      if (!a) break;
      token.push_back(t >= 'A' && t <= 'Z' ? static_cast<char>(t - 'A' + 'a')
                                           : t);
      ++i;
    }
    if (wanted.count(token) > 0) {
      out += open;
      out.append(text, start, i - start);
      out += close;
    } else {
      out.append(text, start, i - start);
    }
  }
  return out;
}

std::vector<QueryHit> Engine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = k;
  query.semantics = semantics;
  return RunQuery(query, nullptr).hits;
}

std::vector<QueryHit> Engine::SearchHybrid(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  HybridOptions hybrid_options;
  hybrid_options.semantics = semantics;
  hybrid_options.k = k;
  hybrid_options.scoring = options_.scoring;
  HybridSearch search(topk_index_, hybrid_options);
  return Materialize(search.Search(Normalize(keywords)));
}

std::vector<BatchQueryResult> Engine::RunBatch(
    const std::vector<BatchQuery>& queries, size_t threads,
    bool collect_traces) const {
  std::vector<BatchQueryResult> results(queries.size());
  // Workers write to pre-sized, index-disjoint slots; the shared indexes
  // are read-only, so no synchronization beyond the join is needed.
  ParallelFor(queries.size(), threads, [&](size_t i) {
    std::unique_ptr<obs::QueryTrace> trace;
    if (collect_traces) trace = std::make_unique<obs::QueryTrace>();
    results[i] = RunQuery(queries[i], trace.get());
    results[i].trace = std::move(trace);
  });
  return results;
}

ExplainResult Engine::Explain(const BatchQuery& query) const {
  ExplainResult explained;
  BatchQueryResult result = RunQuery(query, &explained.trace);
  explained.hits = std::move(result.hits);
  explained.join_stats = result.join_stats;
  explained.accounting = std::move(result.accounting);
  return explained;
}

ExplainResult Engine::Explain(const std::vector<std::string>& keywords,
                              size_t k, Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = k;
  query.semantics = semantics;
  return Explain(query);
}

uint32_t Engine::Frequency(const std::string& keyword) const {
  return jdewey_index_.Frequency(keyword);
}

}  // namespace xtopk
