// Table I reproduction: serialized index sizes of every index family on
// the DBLP-like and XMark-like corpora.
//
// Paper (Table I, 496 MB DBLP / 113 MB XMark):
//              DBLP                      XMark
//   Join-based   IL 327MB  sparse 14MB    IL 302MB  sparse 4MB
//   stack-based  IL 392MB                 IL 267MB
//   index-based  B-tree 2.1GB             B-tree 1.3GB
//   Top-K Join   IL 394MB  sparse 14MB    IL 351MB  sparse 4MB
//   RDIL         IL 392MB  B+-tree 446MB  IL 267MB  B+-tree 252MB
//
// The reproduction target is the shape: join-based IL in the same ballpark
// as the stack-based Dewey lists; the (keyword, Dewey) B-tree an order of
// magnitude larger; Top-K Join IL = join-based + scores + segment orders;
// RDIL paying an extra per-keyword B+-tree comparable to its lists.

#include <cstdio>

#include "bench_util.h"
#include "index/index_stats.h"
#include "util/string_util.h"

int main() {
  std::printf("=== Table I: index sizes ===\n\n");
  {
    xtopk::bench::BenchCorpus dblp = xtopk::bench::BuildDblpBenchCorpus();
    xtopk::IndexSizeReport report =
        xtopk::MeasureIndexSizes(*dblp.builder, "DBLP-like (scaled)");
    std::printf("%s\n", report.ToTable().c_str());
    std::printf("  ratios: index-based/join-IL = %.1fx, rdil-btree/rdil-IL"
                " = %.2fx, topk-IL/join-IL = %.2fx\n\n",
                double(report.index_based_btree) / report.join_based_il,
                double(report.rdil_btree) / report.rdil_il,
                double(report.topk_join_il) / report.join_based_il);
  }
  {
    xtopk::bench::BenchCorpus xmark = xtopk::bench::BuildXmarkBenchCorpus();
    xtopk::IndexSizeReport report =
        xtopk::MeasureIndexSizes(*xmark.builder, "XMark-like (scaled)");
    std::printf("%s\n", report.ToTable().c_str());
    std::printf("  ratios: index-based/join-IL = %.1fx, rdil-btree/rdil-IL"
                " = %.2fx, topk-IL/join-IL = %.2fx\n",
                double(report.index_based_btree) / report.join_based_il,
                double(report.rdil_btree) / report.rdil_il,
                double(report.topk_join_il) / report.join_based_il);
  }
  return 0;
}
