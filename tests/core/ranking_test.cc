// Ranking-semantics tests (paper §II-B): damping, compactness preference,
// max-per-keyword aggregation, and monotonicity — checked through the full
// pipeline, not just the scoring helpers.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/join_search.h"
#include "index/index_builder.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

TEST(RankingTest, CompactSubtreesOutscoreSpreadOnes) {
  // Two result subtrees with identical term statistics; in one the
  // keywords sit right at the result node, in the other a level deeper.
  // d(·) must rank the compact one higher (§II-B: "compact subtrees are
  // more important").
  XmlTree tree = ParseXmlStringOrDie(
      "<db>"
      "<r><x>apple banana</x></r>"
      "<r><x><y>apple</y><z>banana</z></x></r>"
      "</db>");
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  auto results = search.Search({"apple", "banana"});
  ASSERT_EQ(results.size(), 2u);
  SortByScoreDesc(&results);
  // The compact hit is the <x> whose text carries both terms (level 3);
  // the spread hit is the second <x> (keywords one level below).
  EXPECT_EQ(tree.level(results[0].node), 3u);
  EXPECT_GT(results[0].score, results[1].score);
  // With sum aggregation and one damping step, the ratio is exactly the
  // damping base.
  EXPECT_NEAR(results[1].score / results[0].score, 0.9, 1e-9);
}

TEST(RankingTest, SteeperDampingWidensTheGap) {
  XmlTree tree = ParseXmlStringOrDie(
      "<db>"
      "<r><x>apple banana</x></r>"
      "<r><x><y>apple</y><z>banana</z></x></r>"
      "</db>");
  IndexBuildOptions options;
  options.index_tag_names = false;

  auto gap = [&](double base) {
    options.scoring.damping_base = base;
    IndexBuilder builder(tree, options);
    JDeweyIndex index = builder.BuildJDeweyIndex();
    JoinSearchOptions search_options;
    search_options.scoring.damping_base = base;
    JoinSearch search(index, search_options);
    auto results = search.Search({"apple", "banana"});
    SortByScoreDesc(&results);
    return results[0].score - results[1].score;
  };
  EXPECT_GT(gap(0.5), gap(0.9));
}

TEST(RankingTest, MaxPerKeywordNotSum) {
  // One result subtree holds three occurrences of "apple"; §II-B: "F only
  // takes the maximum score of the occurrences as the input", so a second
  // and third occurrence at the same depth must not raise the score above
  // a single-occurrence sibling with equal statistics.
  XmlTree tree = ParseXmlStringOrDie(
      "<db>"
      "<r><p>apple</p><p>apple</p><p>apple</p><q>pear</q></r>"
      "<r><p>apple</p><q>pear</q></r>"
      "</db>");
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  auto results = search.Search({"apple", "pear"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].score, results[1].score, 1e-9);
}

TEST(RankingTest, TfRaisesLocalScore) {
  // Same shape, but one occurrence node repeats the keyword: tf-weighting
  // must rank it higher.
  XmlTree tree = ParseXmlStringOrDie(
      "<db>"
      "<r><p>apple apple apple</p><q>pear</q></r>"
      "<r><p>apple</p><q>pear</q></r>"
      "</db>");
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  auto results = search.Search({"apple", "pear"});
  ASSERT_EQ(results.size(), 2u);
  SortByScoreDesc(&results);
  EXPECT_GT(results[0].score, results[1].score);
  // The winner is the first <r> (its <p> has tf=3).
  EXPECT_LT(results[0].node, results[1].node);
}

TEST(RankingTest, RareTermsScoreHigherThanCommonOnes) {
  // idf: with equal tf, a term occurring once outscores one occurring in
  // many nodes.
  std::string xml = "<db><r><p>rareword</p><q>anchor</q></r>";
  for (int i = 0; i < 20; ++i) xml += "<f>commonword</f>";
  xml += "<r><p>commonword</p><q>anchor</q></r></db>";
  XmlTree tree = ParseXmlStringOrDie(xml);
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  auto rare = search.Search({"rareword", "anchor"});
  auto common = search.Search({"commonword", "anchor"});
  ASSERT_FALSE(rare.empty());
  ASSERT_FALSE(common.empty());
  SortByScoreDesc(&rare);
  SortByScoreDesc(&common);
  EXPECT_GT(rare[0].score, common[0].score);
}

}  // namespace
}  // namespace xtopk
