#ifndef XTOPK_BENCH_BENCH_UTIL_H_
#define XTOPK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "obs/metrics.h"
#include "util/timer.h"
#include "workload/dblp_gen.h"
#include "workload/xmark_gen.h"

namespace xtopk {
namespace bench {

/// The scaled-down stand-ins for the paper's corpora (DESIGN.md §4). The
/// paper fixes the high keyword frequency at 100k over a 496 MB DBLP; we
/// fix it at kHighFreq over a ~250k-node corpus, keeping the low/high
/// ratios of the Fig. 9/10 sweeps (1e-4 … 1e-1).
/// Multiplies the bench corpus (papers per year, items per region) —
/// export XTOPK_BENCH_SCALE=4 for a run closer to the paper's data sizes.
inline uint32_t BenchScale() {
  const char* env = std::getenv("XTOPK_BENCH_SCALE");
  if (env == nullptr) return 1;
  int v = std::atoi(env);
  return v < 1 ? 1 : static_cast<uint32_t>(v);
}

inline constexpr uint32_t kHighFreq = 20000;
inline constexpr uint32_t kLowFreqs[] = {10, 100, 1000, 10000};
inline constexpr size_t kQueriesPerPoint = 10;
inline constexpr size_t kMaxK = 5;

/// Everything the benches need, heap-held so it can be returned by value.
struct BenchCorpus {
  std::unique_ptr<XmlTree> tree;
  std::unique_ptr<IndexBuilder> builder;
};

/// DBLP-like corpus with the planted keyword pools the figure benches
/// query:
///   hi{0..7}          — frequency kHighFreq
///   lo<f>_{0..9}      — frequency f, for each f in kLowFreqs
///   eq<f>_{0..7}      — frequency f in {1000, 4000} (equal-frequency runs)
///   corr2a/corr2b     — correlated pair   (Fig. 10(b) style)
///   corr3a/b/c        — correlated triple (Fig. 10(c) style)
inline BenchCorpus BuildDblpBenchCorpus() {
  DblpGenOptions gen;
  gen.num_conferences = 50;
  gen.years_per_conference = 10;
  gen.papers_per_year = 100 * BenchScale();  // 50k papers, ~255k nodes at 1x
  gen.seed = 2026;
  for (uint32_t i = 0; i < 8; ++i) {
    gen.planted.push_back(
        {"hi" + std::to_string(i), kHighFreq, "", 0.0});
  }
  for (uint32_t f : kLowFreqs) {
    for (uint32_t i = 0; i < kQueriesPerPoint; ++i) {
      gen.planted.push_back(
          {"lo" + std::to_string(f) + "q" + std::to_string(i), f, "", 0.0});
    }
  }
  for (uint32_t f : {1000u, 4000u}) {
    for (uint32_t i = 0; i < 8; ++i) {
      gen.planted.push_back(
          {"eq" + std::to_string(f) + "q" + std::to_string(i), f, "", 0.0});
    }
  }
  gen.planted.push_back({"corr2a", 2000, "", 0.0});
  gen.planted.push_back({"corr2b", 5000, "corr2a", 0.6});
  gen.planted.push_back({"corr3a", 3000, "", 0.0});
  gen.planted.push_back({"corr3b", 2000, "corr3a", 0.6});
  gen.planted.push_back({"corr3c", 1000, "corr3b", 0.6});

  BenchCorpus corpus;
  Timer timer;
  DblpCorpus dblp = GenerateDblp(gen);
  corpus.tree = std::make_unique<XmlTree>(std::move(dblp.tree));
  std::fprintf(stderr, "[bench] DBLP-like corpus: %zu nodes (%.1fs)\n",
               corpus.tree->node_count(), timer.ElapsedSeconds());
  timer.Reset();
  IndexBuildOptions build_options;
  build_options.build_threads = 8;
  corpus.builder = std::make_unique<IndexBuilder>(*corpus.tree, build_options);
  std::fprintf(stderr, "[bench] index pipeline: %.1fs\n",
               timer.ElapsedSeconds());
  return corpus;
}

/// Smaller XMark-like corpus (Table I's second column).
inline BenchCorpus BuildXmarkBenchCorpus() {
  XmarkGenOptions gen;
  gen.items_per_region = 2000 * BenchScale();  // ~100k nodes at 1x
  gen.num_people = 8000 * BenchScale();
  gen.num_open_auctions = 4000 * BenchScale();
  gen.seed = 2027;
  BenchCorpus corpus;
  XmarkCorpus xmark = GenerateXmark(gen);
  corpus.tree = std::make_unique<XmlTree>(std::move(xmark.tree));
  std::fprintf(stderr, "[bench] XMark-like corpus: %zu nodes\n",
               corpus.tree->node_count());
  IndexBuildOptions build_options;
  build_options.build_threads = 8;
  corpus.builder = std::make_unique<IndexBuilder>(*corpus.tree, build_options);
  return corpus;
}

/// The Fig. 9 mixed-frequency query for point (k, low-frequency f, i):
/// one low keyword + (k-1) distinct high keywords.
inline std::vector<std::string> MixedQuery(uint32_t f, size_t k, size_t i) {
  std::vector<std::string> query = {"lo" + std::to_string(f) + "q" +
                                    std::to_string(i)};
  for (size_t j = 0; j + 1 < k; ++j) {
    query.push_back("hi" + std::to_string((i + j) % 8));
  }
  return query;
}

/// The Fig. 9(e)/(f) equal-frequency query.
inline std::vector<std::string> EqualQuery(uint32_t f, size_t k, size_t i) {
  std::vector<std::string> query;
  for (size_t j = 0; j < k; ++j) {
    query.push_back("eq" + std::to_string(f) + "q" +
                    std::to_string((i + j) % 8));
  }
  return query;
}

/// Times `fn` once after a warm-up call (the paper reports hot-cache
/// numbers), returning milliseconds.
template <typename Fn>
double TimeOnceMs(Fn&& fn) {
  fn();  // warm-up: touches the lists
  Timer timer;
  fn();
  return timer.ElapsedMillis();
}

/// One machine-readable result line of a bench: `BENCH {json}` on stdout,
/// so the driver can grep the trajectory out of the human-readable report.
/// Field order follows insertion order. The schema carries the throughput
/// dimensions (threads, qps, cache hit rates) alongside the free-form
/// per-bench fields:
///
///   BENCH {"bench":"throughput","mode":"disk","threads":4,
///          "queries":512,"qps":1234.5,"pool_hit_rate":0.998,
///          "decoded_hit_rate":0.93,"metrics":{...}}
///
/// Every line additionally carries a compact cumulative snapshot of the
/// process-wide metrics registry (zero values dropped, histograms as
/// _count/_p50/_p95/_p99), so the driver sees cache/IO/join counters
/// without per-bench plumbing. Benches that want per-section metrics call
/// MetricsRegistry::Global().ResetAll() at section start.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench) { Field("bench", bench); }

  BenchJson& Field(const std::string& key, const std::string& value) {
    Key(key);
    line_ += '"';
    line_ += value;  // bench names/modes only — no escaping needed
    line_ += '"';
    return *this;
  }
  BenchJson& Field(const std::string& key, double value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    line_ += buf;
    return *this;
  }
  BenchJson& Field(const std::string& key, uint64_t value) {
    Key(key);
    line_ += std::to_string(value);
    return *this;
  }
  BenchJson& Field(const std::string& key, int value) {
    Key(key);
    line_ += std::to_string(value);
    return *this;
  }

  /// Prints `BENCH {...}` with the registry snapshot appended.
  void Emit() {
    std::string metrics;
    obs::MetricsRegistry::Global().Snapshot().AppendCompactJson(&metrics);
    std::printf("BENCH {%s,\"metrics\":%s}\n", line_.c_str(), metrics.c_str());
    std::fflush(stdout);
  }

 private:
  void Key(const std::string& key) {
    if (!line_.empty()) line_ += ',';
    line_ += '"';
    line_ += key;
    line_ += "\":";
  }
  std::string line_;
};

/// Hit rate helper: hits / (hits + misses), 0 when idle.
inline double HitRate(uint64_t hits, uint64_t misses) {
  uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

}  // namespace bench
}  // namespace xtopk

#endif  // XTOPK_BENCH_BENCH_UTIL_H_
