#include "core/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xtopk {
namespace {

TEST(ScoringTest, RawLocalScoreMonotoneInTf) {
  EXPECT_LT(RawLocalScore(1, 10, 1000), RawLocalScore(2, 10, 1000));
  EXPECT_LT(RawLocalScore(2, 10, 1000), RawLocalScore(8, 10, 1000));
}

TEST(ScoringTest, RawLocalScoreDecreasesWithDf) {
  EXPECT_GT(RawLocalScore(1, 5, 1000), RawLocalScore(1, 500, 1000));
}

TEST(ScoringTest, DampExponential) {
  ScoringParams params;
  params.damping_base = 0.9;
  EXPECT_DOUBLE_EQ(Damp(params, 0), 1.0);
  EXPECT_DOUBLE_EQ(Damp(params, 1), 0.9);
  EXPECT_NEAR(Damp(params, 3), 0.729, 1e-12);
}

TEST(ScoringTest, DampedScoreUsesLevelDistance) {
  ScoringParams params;
  params.damping_base = 0.5;
  EXPECT_DOUBLE_EQ(DampedScore(params, 1.0, 5, 5), 1.0);
  EXPECT_DOUBLE_EQ(DampedScore(params, 1.0, 5, 3), 0.25);
  EXPECT_DOUBLE_EQ(DampedScore(params, 0.8, 4, 1), 0.1);
}

TEST(ScoringTest, SumAggregationIsMonotone) {
  // Monotonicity (paper §II-B): raising any component raises the sum.
  double base = DampedScore({}, 0.5, 4, 2) + DampedScore({}, 0.4, 3, 2);
  double raised = DampedScore({}, 0.6, 4, 2) + DampedScore({}, 0.4, 3, 2);
  EXPECT_GT(raised, base);
}

}  // namespace
}  // namespace xtopk
