#ifndef XTOPK_INDEX_INDEX_VALIDATE_H_
#define XTOPK_INDEX_INDEX_VALIDATE_H_

#include "index/jdewey_index.h"
#include "util/status.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Structural integrity check of a JDeweyIndex — the fsck run after
/// loading an index from disk or before trusting a foreign file:
///
///  * per list: lengths/scores/columns sized consistently; every row
///    appears in exactly the columns 1..length; runs sorted by value and
///    row with no overlaps; scores in (0, 1].
///  * the (level, value) -> node mapping is sorted, duplicate-free, and
///    every column value resolves through it.
///  * row sequences reconstructed from the columns are valid root paths:
///    consecutive levels' values map to child/parent node pairs when a
///    `tree` is supplied.
///
/// O(total rows × depth). Returns the first violation found.
Status ValidateIndex(const JDeweyIndex& index, const XmlTree* tree = nullptr);

}  // namespace xtopk

#endif  // XTOPK_INDEX_INDEX_VALIDATE_H_
