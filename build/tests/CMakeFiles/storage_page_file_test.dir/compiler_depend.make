# Empty compiler generated dependencies file for storage_page_file_test.
# This may be replaced when dependencies are built.
