#ifndef XTOPK_STORAGE_BUFFER_POOL_H_
#define XTOPK_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/page_file.h"
#include "util/status.h"

namespace xtopk {

/// LRU page cache over a PageFile — the hot-cache layer the paper's
/// experiments assume ("all the experiments are on hot cache"; the
/// stack-based and join-based systems "use the cache provided by the file
/// system", which this models deterministically).
///
/// Pages are returned as shared_ptr so entries may be evicted while a
/// caller still decodes a previous page. Single-threaded.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 1. The pool borrows `file`.
  BufferPool(PageFile* file, size_t capacity_pages);

  /// The page contents (kPageSize bytes), from cache or disk.
  StatusOr<std::shared_ptr<const std::string>> GetPage(PageId id);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t cached_pages() const { return map_.size(); }
  void ResetStats() { hits_ = misses_ = 0; }
  void Clear();

 private:
  struct Entry {
    PageId id;
    std::shared_ptr<const std::string> data;
  };

  PageFile* file_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_BUFFER_POOL_H_
