#include "storage/segment_manifest.h"

#include <cstdio>

#include "util/crc32c.h"
#include "util/varint.h"

namespace xtopk {

namespace {
constexpr char kMagic[] = "XTKSMAN1";
constexpr size_t kMagicLen = 8;

void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}
}  // namespace

Status SegmentManifest::Save(const std::string& path) const {
  std::string buf(kMagic, kMagicLen);
  varint::PutU64(&buf, covered_nodes);
  varint::PutU64(&buf, terms.size());
  for (const SegmentTermStats& t : terms) {
    varint::PutU64(&buf, t.term.size());
    buf.append(t.term);
    varint::PutU32(&buf, t.rows);
    varint::PutU32(&buf, t.max_tf);
  }
  PutFixed32(&buf, crc32c::Compute(buf));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create manifest: " + path);
  }
  size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  int closed = std::fclose(f);
  if (written != buf.size() || closed != 0) {
    return Status::IoError("short manifest write: " + path);
  }
  return Status::Ok();
}

StatusOr<SegmentManifest> SegmentManifest::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open manifest: " + path);
  }
  std::string buf;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  std::fclose(f);

  if (buf.size() < kMagicLen + 4 || buf.compare(0, kMagicLen, kMagic) != 0) {
    return Status::Corruption("bad manifest magic: " + path);
  }
  std::string body = buf.substr(0, buf.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<unsigned char>(buf[buf.size() - 4 + i]))
              << (8 * i);
  }
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  SegmentManifest manifest;
  size_t pos = kMagicLen;
  uint64_t term_count = 0;
  Status s = varint::GetU64(body, &pos, &manifest.covered_nodes);
  if (s.ok()) s = varint::GetU64(body, &pos, &term_count);
  if (!s.ok()) return s;
  manifest.terms.reserve(term_count);
  for (uint64_t i = 0; i < term_count; ++i) {
    SegmentTermStats t;
    uint64_t len = 0;
    s = varint::GetU64(body, &pos, &len);
    if (!s.ok()) return s;
    if (pos + len > body.size()) {
      return Status::Corruption("manifest term overruns buffer: " + path);
    }
    t.term.assign(body, pos, len);
    pos += len;
    s = varint::GetU32(body, &pos, &t.rows);
    if (s.ok()) s = varint::GetU32(body, &pos, &t.max_tf);
    if (!s.ok()) return s;
    manifest.terms.push_back(std::move(t));
  }
  return manifest;
}

}  // namespace xtopk
