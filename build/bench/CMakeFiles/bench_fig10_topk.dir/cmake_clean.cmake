file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_topk.dir/bench_fig10_topk.cc.o"
  "CMakeFiles/bench_fig10_topk.dir/bench_fig10_topk.cc.o.d"
  "bench_fig10_topk"
  "bench_fig10_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
