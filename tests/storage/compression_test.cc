#include "storage/compression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xtopk {
namespace {

std::vector<uint32_t> PresentRows(const Column& col) {
  std::vector<uint32_t> rows;
  for (const Run& run : col.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) rows.push_back(run.first_row + i);
  }
  return rows;
}

Column RandomColumn(uint64_t seed, uint32_t rows, double dup_prob) {
  Rng rng(seed);
  Column col;
  uint32_t row = 0, value = 1;
  for (uint32_t i = 0; i < rows; ++i) {
    col.Append(row, value);
    ++row;
    if (!rng.NextBernoulli(dup_prob)) {
      value += 1 + static_cast<uint32_t>(rng.NextBounded(50));
      // Row gaps (sequences too short for this level) only appear between
      // different values: equal values occupy consecutive rows.
      if (rng.NextBernoulli(0.1)) row += 1 + rng.NextBounded(3);
    }
  }
  return col;
}

void ExpectColumnsEqual(const Column& a, const Column& b) {
  ASSERT_EQ(a.run_count(), b.run_count());
  for (size_t i = 0; i < a.run_count(); ++i) {
    EXPECT_EQ(a.runs()[i], b.runs()[i]) << "run " << i;
  }
}

TEST(CompressionTest, RunLengthRoundTrip) {
  Column col = RandomColumn(1, 500, /*dup_prob=*/0.8);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kRunLength, &buf);
  Column out;
  size_t pos = 0;
  // Run-length columns are self-contained: no present-row list needed.
  ASSERT_TRUE(DecodeColumn(buf, &pos, nullptr, &out).ok());
  EXPECT_EQ(pos, buf.size());
  ExpectColumnsEqual(col, out);
}

TEST(CompressionTest, DeltaRoundTrip) {
  Column col = RandomColumn(2, 5000, /*dup_prob=*/0.05);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kDelta, &buf);
  std::vector<uint32_t> rows = PresentRows(col);
  Column out;
  size_t pos = 0;
  ASSERT_TRUE(DecodeColumn(buf, &pos, &rows, &out).ok());
  ExpectColumnsEqual(col, out);
}

TEST(CompressionTest, AutoPicksRunLengthForDuplicateHeavy) {
  Column col = RandomColumn(3, 1000, /*dup_prob=*/0.95);
  EXPECT_EQ(ChooseCodec(col), ColumnCodec::kRunLength);
}

TEST(CompressionTest, AutoPicksGroupVarintForDistinctHeavy) {
  Column col = RandomColumn(4, 1000, /*dup_prob=*/0.0);
  EXPECT_EQ(ChooseCodec(col), ColumnCodec::kGroupVarint);
}

TEST(CompressionTest, RunLengthBeatsDeltaOnDuplicates) {
  Column col = RandomColumn(5, 5000, /*dup_prob=*/0.95);
  EXPECT_LT(EncodedColumnSize(col, ColumnCodec::kRunLength),
            EncodedColumnSize(col, ColumnCodec::kDelta));
}

TEST(CompressionTest, DeltaBeatsRunLengthOnDistinct) {
  Column col = RandomColumn(6, 5000, /*dup_prob=*/0.0);
  EXPECT_LT(EncodedColumnSize(col, ColumnCodec::kDelta),
            EncodedColumnSize(col, ColumnCodec::kRunLength));
}

TEST(CompressionTest, AutoRoundTripsRandomized) {
  for (uint64_t seed = 10; seed < 40; ++seed) {
    Column col = RandomColumn(seed, 200 + seed * 37 % 800,
                              static_cast<double>(seed % 10) / 10.0);
    std::string buf;
    EncodeColumn(col, ColumnCodec::kAuto, &buf);
    std::vector<uint32_t> rows = PresentRows(col);
    Column out;
    size_t pos = 0;
    ASSERT_TRUE(DecodeColumn(buf, &pos, &rows, &out).ok()) << seed;
    ExpectColumnsEqual(col, out);
  }
}

TEST(CompressionTest, EmptyColumnRoundTrips) {
  Column col;
  std::string buf;
  EncodeColumn(col, ColumnCodec::kAuto, &buf);
  Column out;
  size_t pos = 0;
  std::vector<uint32_t> no_rows;
  ASSERT_TRUE(DecodeColumn(buf, &pos, &no_rows, &out).ok());
  EXPECT_EQ(out.run_count(), 0u);
}

TEST(CompressionTest, TruncatedBufferIsCorruption) {
  Column col = RandomColumn(7, 100, 0.5);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kAuto, &buf);
  buf.resize(buf.size() / 2);
  std::vector<uint32_t> rows = PresentRows(col);
  Column out;
  size_t pos = 0;
  EXPECT_FALSE(DecodeColumn(buf, &pos, &rows, &out).ok());
}

TEST(CompressionTest, UnknownCodecRejected) {
  std::string buf = "\x07\x01\x01";
  Column out;
  size_t pos = 0;
  EXPECT_EQ(DecodeColumn(buf, &pos, nullptr, &out).code(),
            StatusCode::kCorruption);
}

TEST(CompressionTest, DeltaWithoutRowsIsInvalidArgument) {
  Column col = RandomColumn(8, 100, 0.0);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kDelta, &buf);
  Column out;
  size_t pos = 0;
  EXPECT_EQ(DecodeColumn(buf, &pos, nullptr, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressionTest, DeltaRowCountMismatchIsCorruption) {
  Column col = RandomColumn(9, 100, 0.0);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kDelta, &buf);
  std::vector<uint32_t> rows = PresentRows(col);
  rows.pop_back();
  Column out;
  size_t pos = 0;
  EXPECT_EQ(DecodeColumn(buf, &pos, &rows, &out).code(),
            StatusCode::kCorruption);
}

TEST(CompressionTest, DictColumnRoundTrip) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Column col = RandomColumn(seed, 800, /*dup_prob=*/0.7);
    std::string buf;
    EncodeColumn(col, ColumnCodec::kDict, &buf);
    Column out;
    size_t pos = 0;
    // kDict is self-contained (explicit row ids), like run-length.
    ASSERT_TRUE(DecodeColumn(buf, &pos, nullptr, &out).ok()) << seed;
    EXPECT_EQ(pos, buf.size());
    ExpectColumnsEqual(col, out);
  }
}

TEST(CompressionTest, DictColumnEmptyAndTruncated) {
  Column empty;
  std::string buf;
  EncodeColumn(empty, ColumnCodec::kDict, &buf);
  Column out;
  size_t pos = 0;
  ASSERT_TRUE(DecodeColumn(buf, &pos, nullptr, &out).ok());
  EXPECT_EQ(out.run_count(), 0u);

  Column col = RandomColumn(14, 300, 0.6);
  buf.clear();
  EncodeColumn(col, ColumnCodec::kDict, &buf);
  for (size_t cut = 1; cut < buf.size(); cut += 3) {
    std::string damaged = buf.substr(0, cut);
    Column dead;
    pos = 0;
    EXPECT_FALSE(DecodeColumn(damaged, &pos, nullptr, &dead).ok())
        << "cut=" << cut;
  }
}

TEST(CompressionTest, DictRowsRoundTripsRepetitiveStreams) {
  // Low-cardinality per-row streams: lots of rows, few distinct values —
  // the shape EncodeDictRows exists for.
  Rng rng(77);
  std::vector<uint32_t> distinct = {3, 9, 14, 1u << 20, 0x7F800000u};
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < 5000; ++i) {
    rows.push_back(distinct[rng.NextBounded(distinct.size())]);
  }
  std::string buf;
  EncodeDictRows(rows, &buf);
  // ceil(log2 5) = 3 bits/row + small dictionary: far below 4 bytes/row.
  EXPECT_LT(buf.size(), rows.size());
  std::vector<uint32_t> out;
  size_t pos = 0;
  ASSERT_TRUE(DecodeDictRows(buf, &pos, rows.size(), &out).ok());
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out, rows);

  // Empty stream round-trips too.
  std::string empty_buf;
  EncodeDictRows({}, &empty_buf);
  std::vector<uint32_t> empty_out;
  pos = 0;
  ASSERT_TRUE(DecodeDictRows(empty_buf, &pos, 0, &empty_out).ok());
  EXPECT_TRUE(empty_out.empty());
}

TEST(CompressionTest, DictRowsRejectsDamage) {
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < 300; ++i) rows.push_back(i % 7);
  std::string buf;
  EncodeDictRows(rows, &buf);

  // Row-count mismatch against the caller's expectation.
  std::vector<uint32_t> out;
  size_t pos = 0;
  EXPECT_EQ(DecodeDictRows(buf, &pos, rows.size() + 1, &out).code(),
            StatusCode::kCorruption);

  // Every truncation point must be rejected, never crash or hang.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string damaged = buf.substr(0, cut);
    pos = 0;
    EXPECT_FALSE(DecodeDictRows(damaged, &pos, rows.size(), &out).ok())
        << "cut=" << cut;
  }

  // Byte flips either fail typed or decode to SOME value stream — the
  // stream is not self-checksummed (the disk format's page CRCs are), so
  // the invariant here is only "no crash, codes stay in range".
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string damaged = buf;
    damaged[rng.NextBounded(damaged.size())] ^= 0x40;
    pos = 0;
    std::vector<uint32_t> maybe;
    DecodeDictRows(damaged, &pos, rows.size(), &maybe).ok();
  }
}

}  // namespace
}  // namespace xtopk
