#ifndef XTOPK_STORAGE_DICTIONARY_H_
#define XTOPK_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xtopk {

/// A sorted, front-coded string dictionary with binary-searchable restart
/// points (the dictionary-column idea applied to our term and tag spaces).
///
/// Strings are stored in sorted order; every kRestartInterval-th string is
/// a restart written in full, and the strings in between store only
/// (shared-prefix length, suffix). Lookup binary-searches the restart
/// array, then scans at most kRestartInterval - 1 entries. Codes are the
/// sorted positions, so `code` doubles as the term id wherever the caller
/// keeps per-term arrays sorted by term.
///
/// The serialized form is self-contained and position-independent:
///
///   [count:varint] [restart_interval:varint]
///   [num_restarts:varint] [restart byte offsets:varint deltas]
///   [entries: per string (prefix_len:varint, suffix_len:varint, suffix)]
///
/// so it can be embedded as an optional section of the disk-index and
/// segment-manifest formats and checksummed by their existing envelopes.
class FrontCodedDict {
 public:
  static constexpr uint32_t kRestartInterval = 16;

  FrontCodedDict() = default;

  /// Builds from `strings`, which MUST be sorted ascending and unique
  /// (Status::InvalidArgument otherwise).
  static StatusOr<FrontCodedDict> Build(const std::vector<std::string>& strings);

  /// Code of `s`, or kNotFound when absent.
  static constexpr uint32_t kNotFound = UINT32_MAX;
  uint32_t Lookup(std::string_view s) const;

  /// String of `code`. Requires code < size().
  std::string Decode(uint32_t code) const;

  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Resident footprint of the compressed form (bytes_ + restart array).
  uint64_t ResidentBytes() const {
    return bytes_.size() + restarts_.size() * sizeof(uint32_t);
  }

  /// Appends the serialized dictionary to `out`.
  void Serialize(std::string* out) const;

  /// Parses a dictionary starting at data[*pos]; advances *pos past it.
  static StatusOr<FrontCodedDict> Deserialize(const std::string& data,
                                              size_t* pos);

  /// All strings in code order (tests / reconstruction).
  std::vector<std::string> DecodeAll() const;

 private:
  /// Decodes entries starting at restart block `r` until `fn` returns
  /// false or the block ends. fn(code, string_view-of-built-string).
  template <typename Fn>
  void ScanBlock(uint32_t r, Fn&& fn) const;

  uint32_t count_ = 0;
  std::vector<uint32_t> restarts_;  ///< byte offset of each restart entry
  std::string bytes_;               ///< front-coded entry stream
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_DICTIONARY_H_
