// End-to-end integration over the synthetic corpora (the same generators
// the benches use): every algorithm cross-checked on realistic shapes, the
// engine driven through the public facade, and persistence in the loop.

#include <gtest/gtest.h>

#include <set>

#include "baseline/indexed_lookup.h"
#include "baseline/naive.h"
#include "baseline/rdil.h"
#include "baseline/stack_search.h"
#include "core/engine.h"
#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "workload/dblp_gen.h"
#include "workload/xmark_gen.h"

namespace xtopk {
namespace {

std::set<NodeId> Nodes(const std::vector<SearchResult>& results) {
  std::set<NodeId> out;
  for (const auto& r : results) out.insert(r.node);
  return out;
}

class DblpIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpGenOptions gen;
    gen.num_conferences = 10;
    gen.years_per_conference = 5;
    gen.papers_per_year = 20;  // 1000 papers
    gen.planted = {
        {"needle", 40, "", 0.0},
        {"haystack", 400, "needle", 0.5},
        {"rare", 5, "", 0.0},
    };
    corpus_ = new DblpCorpus(GenerateDblp(gen));
    builder_ = new IndexBuilder(corpus_->tree);
  }
  static void TearDownTestSuite() {
    delete builder_;
    delete corpus_;
    builder_ = nullptr;
    corpus_ = nullptr;
  }

  static DblpCorpus* corpus_;
  static IndexBuilder* builder_;
};

DblpCorpus* DblpIntegrationTest::corpus_ = nullptr;
IndexBuilder* DblpIntegrationTest::builder_ = nullptr;

TEST_F(DblpIntegrationTest, AllAlgorithmsAgreeOnCompleteSets) {
  JDeweyIndex jindex = builder_->BuildJDeweyIndex();
  DeweyIndex dindex = builder_->BuildDeweyIndex();
  NaiveOracle oracle(corpus_->tree, dindex);
  const std::vector<std::vector<std::string>> queries = {
      {"needle", "haystack"},
      {"rare", "haystack"},
      {"needle", "haystack", "rare"},
      {"paper", "needle"},  // tag token + planted term
  };
  for (const auto& query : queries) {
    for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
      auto want = Nodes(oracle.Search(query, semantics));
      JoinSearchOptions join_options;
      join_options.semantics = semantics;
      JoinSearch join(jindex, join_options);
      EXPECT_EQ(Nodes(join.Search(query)), want);
      StackSearchOptions stack_options;
      stack_options.semantics = semantics;
      StackSearch stack(corpus_->tree, dindex, stack_options);
      EXPECT_EQ(Nodes(stack.Search(query)), want);
      IndexedLookupOptions lookup_options;
      lookup_options.semantics = semantics;
      IndexedLookupSearch lookup(corpus_->tree, dindex, lookup_options);
      EXPECT_EQ(Nodes(lookup.Search(query)), want);
    }
  }
}

TEST_F(DblpIntegrationTest, TopKAndRdilAgreeWithOracleOrder) {
  JDeweyIndex jindex = builder_->BuildJDeweyIndex();
  TopKIndex topk_index = builder_->BuildTopKIndex(jindex);
  DeweyIndex dindex = builder_->BuildDeweyIndex();
  RdilIndex rdil_index = builder_->BuildRdilIndex(dindex);
  NaiveOracle oracle(corpus_->tree, dindex);

  auto want = oracle.Search({"needle", "haystack"}, Semantics::kElca);
  SortByScoreDesc(&want);
  if (want.size() > 10) want.resize(10);

  TopKSearchOptions topk_options;
  topk_options.k = 10;
  TopKSearch topk(topk_index, topk_options);
  auto got_topk = topk.Search({"needle", "haystack"});

  RdilOptions rdil_options;
  rdil_options.k = 10;
  RdilSearch rdil(corpus_->tree, rdil_index, rdil_options);
  auto got_rdil = rdil.Search({"needle", "haystack"});

  ASSERT_EQ(got_topk.size(), want.size());
  ASSERT_EQ(got_rdil.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got_topk[i].score, want[i].score, 1e-6) << i;
    EXPECT_NEAR(got_rdil[i].score, want[i].score, 1e-6) << i;
  }
}

TEST_F(DblpIntegrationTest, PersistedIndexAnswersIdentically) {
  JDeweyIndex jindex = builder_->BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(jindex, true, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());
  JoinSearch a(jindex), b(loaded);
  auto ra = a.Search({"needle", "haystack"});
  auto rb = b.Search({"needle", "haystack"});
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].node, rb[i].node);
    EXPECT_EQ(ra[i].score, rb[i].score);
  }
}

TEST_F(DblpIntegrationTest, EngineFacadeMatchesDirectUse) {
  Engine engine(corpus_->tree);
  auto hits = engine.SearchTopK({"needle", "haystack"}, 5);
  auto all = engine.Search({"needle", "haystack"});
  ASSERT_LE(hits.size(), 5u);
  ASSERT_GE(all.size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].node, all[i].node);
    EXPECT_NEAR(hits[i].score, all[i].score, 1e-9);
  }
}

TEST(XmarkIntegrationTest, DeepCorpusCrossCheck) {
  XmarkGenOptions gen;
  gen.items_per_region = 60;
  gen.num_people = 150;
  gen.num_open_auctions = 80;
  gen.planted = {
      {"vintage", 60, "", 0.0},
      {"clock", 150, "vintage", 0.4},
  };
  XmarkCorpus corpus = GenerateXmark(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  DeweyIndex dindex = builder.BuildDeweyIndex();
  NaiveOracle oracle(corpus.tree, dindex);
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    auto want = oracle.Search({"vintage", "clock"}, semantics);
    JoinSearchOptions join_options;
    join_options.semantics = semantics;
    JoinSearch join(jindex, join_options);
    auto got = join.Search({"vintage", "clock"});
    EXPECT_EQ(Nodes(got), Nodes(want));

    // Occurrences span several levels in XMark (length-grouped segments
    // genuinely exercised).
    TopKSearchOptions topk_options;
    topk_options.semantics = semantics;
    topk_options.k = 7;
    TopKSearch topk(topk_index, topk_options);
    auto got_topk = topk.Search({"vintage", "clock"});
    SortByScoreDesc(&want);
    size_t expect = std::min<size_t>(7, want.size());
    ASSERT_EQ(got_topk.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_NEAR(got_topk[i].score, want[i].score, 1e-6) << i;
    }
  }
}

}  // namespace
}  // namespace xtopk
