// Faithful reconstruction of the paper's Figure 5 / §IV-B worked example.
//
// The paper's snapshot: three ranked relations, three tuples seen from
// each, results (2, 2.5) and (1, 2.2) already joined; the next unread
// scores are s^1 = 0.5, s^2 = 0.4, s^3 = 0.4 and every relation's maximum
// is 1.0. The bucket holds tuple 3 seen in R1 and R3 (partial sum 1.6) and
// tuple 4 seen in R2 (partial sum 0.8).
//
//   classic bound:  max{s^1+s_m^2+s_m^3, s_m^1+s^2+s_m^3, s_m^1+s_m^2+s^3}
//                 = max{2.5, 2.4, 2.4} = 2.5
//     -> (2, 2.5) can be emitted, (1, 2.2) is blocked.
//   grouped bound:  max{ms(G_{1,3})+s^2, ms(G_{2})+s^1+s^3}
//                 = max{1.6+0.4, 0.8+0.5+0.4} = max{2.0, 1.7} = 2.0
//     -> (1, 2.2) can be emitted as well, "without blocking".
//
// One concrete instantiation of the relations consistent with every number
// in the figure (verified against the text step by step):
//   R1: (3,1.0) (2,0.5) (1,0.5) (4,0.5) ...   -- "tuple (4, 0.5) from R1"
//   R2: (2,1.0) (4,0.8) (1,0.8) (.,0.4) ...
//   R3: (2,1.0) (1,0.9) (3,0.6) (.,0.4) ...
// giving score(2) = 0.5+1.0+1.0 = 2.5 and score(1) = 0.5+0.8+0.9 = 2.2.

#include <gtest/gtest.h>

#include "core/topk_star_join.h"

namespace xtopk {
namespace {

TEST(PaperFig5Test, ThresholdsMatchTheWorkedExample) {
  for (bool grouped : {true, false}) {
    StarThreshold threshold(3, grouped);
    // Relation maxima (s_m^i = 1.0) are latched from the first head score.
    for (size_t i = 0; i < 3; ++i) threshold.SetHeadScore(i, 1.0);
    // Advance to the snapshot: next unread scores 0.5 / 0.4 / 0.4.
    threshold.SetHeadScore(0, 0.5);
    threshold.SetHeadScore(1, 0.4);
    threshold.SetHeadScore(2, 0.4);
    // Bucket state: tuple 3 in G_{R1,R3} with 1.0+0.6, tuple 4 in G_{R2}.
    threshold.AddPartial(0b101, 1.6);
    threshold.AddPartial(0b010, 0.8);

    if (grouped) {
      EXPECT_NEAR(threshold.Bound(), 2.0, 1e-12);  // paper: max{2.0, 1.7}
    } else {
      EXPECT_NEAR(threshold.Bound(), 2.5, 1e-12);  // paper: max{2.5,2.4,2.4}
    }
  }
}

TEST(PaperFig5Test, EndToEndEmissionOrder) {
  auto make_sources = [] {
    std::vector<std::vector<RankedTuple>> rels = {
        {{3, 1.0}, {2, 0.5}, {1, 0.5}, {4, 0.5}, {9, 0.1}},
        {{2, 1.0}, {4, 0.8}, {1, 0.8}, {8, 0.4}, {9, 0.1}},
        {{2, 1.0}, {1, 0.9}, {3, 0.6}, {7, 0.4}, {9, 0.1}},
    };
    return rels;
  };

  // Under the grouped bound, both figure results emit before the inputs
  // are drained; the classic bound blocks (1, 2.2) longer.
  uint64_t reads_grouped = 0, reads_classic = 0;
  for (bool grouped : {true, false}) {
    auto rels = make_sources();
    std::vector<VectorRankedSource> sources;
    sources.reserve(3);
    std::vector<RankedSource*> ptrs;
    for (auto& rel : rels) sources.emplace_back(std::move(rel));
    for (auto& s : sources) ptrs.push_back(&s);
    TopKStarJoin join(ptrs, StarJoinOptions{2, grouped});
    auto results = join.Run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].id, 2u);
    EXPECT_NEAR(results[0].score, 2.5, 1e-12);
    EXPECT_EQ(results[1].id, 1u);
    EXPECT_NEAR(results[1].score, 2.2, 1e-12);
    (grouped ? reads_grouped : reads_classic) = join.stats().tuples_read;
  }
  // The tighter bound terminates with no more reads than the classic one.
  EXPECT_LE(reads_grouped, reads_classic);
}

}  // namespace
}  // namespace xtopk
