# Empty compiler generated dependencies file for core_semantics_property_test.
# This may be replaced when dependencies are built.
