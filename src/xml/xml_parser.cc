#include "xml/xml_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xtopk {
namespace {

/// Cursor over the input with line tracking for error messages.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool StartsWith(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  /// Advances past `token` if present; returns whether it matched.
  bool Consume(std::string_view token) {
    if (!StartsWith(token)) return false;
    AdvanceBy(token.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Advances until `terminator` is consumed. Returns false at EOF.
  bool SkipUntil(std::string_view terminator) {
    while (!AtEnd()) {
      if (Consume(terminator)) return true;
      Advance();
    }
    return false;
  }

  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

  Status Error(const std::string& what) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " (line %d)", line_);
    return Status::InvalidArgument("xml: " + what + buf);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

/// Decodes &amp; &lt; &gt; &apos; &quot; &#NN; &#xHH; appending to `out`.
Status AppendWithEntities(Scanner* s, std::string_view raw, std::string* out) {
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return s->Error("unterminated entity reference");
    }
    std::string_view name = raw.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out->push_back('&');
    } else if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string digits(name.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.erase(0, 1);
      }
      if (digits.empty()) return s->Error("empty character reference");
      char* end = nullptr;
      long code = std::strtol(digits.c_str(), &end, base);
      if (end == nullptr || *end != '\0' || code <= 0 || code > 0x10FFFF) {
        return s->Error("bad character reference &" + std::string(name) + ";");
      }
      // UTF-8 encode.
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return s->Error("unknown entity &" + std::string(name) + ";");
    }
    i = semi;
  }
  return Status::Ok();
}

/// Trims leading/trailing XML whitespace from character data.
std::string_view TrimWs(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view input) : scan_(input) {}

  StatusOr<XmlTree> Run() {
    Status s = SkipProlog();
    if (!s.ok()) return s;
    scan_.SkipWhitespace();
    if (scan_.AtEnd() || scan_.Peek() != '<') {
      return scan_.Error("expected root element");
    }
    s = ParseElement(kInvalidNode);
    if (!s.ok()) return s;
    // Trailing misc: comments / PIs / whitespace only.
    while (true) {
      scan_.SkipWhitespace();
      if (scan_.AtEnd()) break;
      if (scan_.Consume("<!--")) {
        if (!scan_.SkipUntil("-->")) return scan_.Error("unterminated comment");
      } else if (scan_.Consume("<?")) {
        if (!scan_.SkipUntil("?>")) return scan_.Error("unterminated PI");
      } else {
        return scan_.Error("content after root element");
      }
    }
    if (tree_.empty()) return scan_.Error("no root element");
    return std::move(tree_);
  }

 private:
  Status SkipProlog() {
    while (true) {
      scan_.SkipWhitespace();
      if (scan_.Consume("<?")) {
        if (!scan_.SkipUntil("?>")) return scan_.Error("unterminated PI");
      } else if (scan_.Consume("<!--")) {
        if (!scan_.SkipUntil("-->")) return scan_.Error("unterminated comment");
      } else if (scan_.StartsWith("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets nest '<' '>').
        int depth = 0;
        while (!scan_.AtEnd()) {
          char c = scan_.Advance();
          if (c == '<') ++depth;
          if (c == '>') {
            if (--depth == 0) break;
          }
        }
        if (scan_.AtEnd()) return scan_.Error("unterminated DOCTYPE");
      } else {
        return Status::Ok();
      }
    }
  }

  Status ParseName(std::string* name) {
    if (scan_.AtEnd() || !IsNameStart(scan_.Peek())) {
      return scan_.Error("expected name");
    }
    size_t start = scan_.pos();
    while (!scan_.AtEnd() && IsNameChar(scan_.Peek())) scan_.Advance();
    *name = std::string(scan_.Slice(start, scan_.pos()));
    return Status::Ok();
  }

  Status ParseAttributes(NodeId node) {
    while (true) {
      scan_.SkipWhitespace();
      if (scan_.AtEnd()) return scan_.Error("unterminated start tag");
      char c = scan_.Peek();
      if (c == '>' || c == '/' || c == '?') return Status::Ok();
      std::string name;
      Status s = ParseName(&name);
      if (!s.ok()) return s;
      scan_.SkipWhitespace();
      if (!scan_.Consume("=")) return scan_.Error("expected '=' after attribute");
      scan_.SkipWhitespace();
      if (scan_.AtEnd()) return scan_.Error("unterminated attribute");
      char quote = scan_.Peek();
      if (quote != '"' && quote != '\'') {
        return scan_.Error("attribute value must be quoted");
      }
      scan_.Advance();
      size_t start = scan_.pos();
      while (!scan_.AtEnd() && scan_.Peek() != quote) scan_.Advance();
      if (scan_.AtEnd()) return scan_.Error("unterminated attribute value");
      std::string value;
      s = AppendWithEntities(&scan_, scan_.Slice(start, scan_.pos()), &value);
      if (!s.ok()) return s;
      scan_.Advance();  // closing quote
      tree_.AddAttribute(node, name, value);
      // Attribute values participate in keyword containment like direct text.
      tree_.AppendText(node, value);
    }
  }

  /// Parses one element including its subtree. The scanner sits on '<'.
  Status ParseElement(NodeId parent) {
    if (!scan_.Consume("<")) return scan_.Error("expected '<'");
    std::string tag;
    Status s = ParseName(&tag);
    if (!s.ok()) return s;

    NodeId node = parent == kInvalidNode ? tree_.CreateRoot(tag)
                                         : tree_.AddChild(parent, tag);
    s = ParseAttributes(node);
    if (!s.ok()) return s;

    if (scan_.Consume("/>")) return Status::Ok();
    if (!scan_.Consume(">")) return scan_.Error("expected '>' in start tag");

    // Content loop.
    while (true) {
      if (scan_.AtEnd()) return scan_.Error("unterminated element <" + tag + ">");
      if (scan_.Consume("</")) {
        std::string end_tag;
        s = ParseName(&end_tag);
        if (!s.ok()) return s;
        scan_.SkipWhitespace();
        if (!scan_.Consume(">")) return scan_.Error("expected '>' in end tag");
        if (end_tag != tag) {
          return scan_.Error("mismatched end tag </" + end_tag +
                             ">, expected </" + tag + ">");
        }
        return Status::Ok();
      }
      if (scan_.Consume("<!--")) {
        if (!scan_.SkipUntil("-->")) return scan_.Error("unterminated comment");
        continue;
      }
      if (scan_.Consume("<![CDATA[")) {
        size_t start = scan_.pos();
        if (!scan_.SkipUntil("]]>")) return scan_.Error("unterminated CDATA");
        std::string_view raw = scan_.Slice(start, scan_.pos() - 3);
        if (!raw.empty()) tree_.AppendText(node, raw);
        continue;
      }
      if (scan_.Consume("<?")) {
        if (!scan_.SkipUntil("?>")) return scan_.Error("unterminated PI");
        continue;
      }
      if (scan_.Peek() == '<') {
        s = ParseElement(node);
        if (!s.ok()) return s;
        continue;
      }
      // Character data up to the next '<'.
      size_t start = scan_.pos();
      while (!scan_.AtEnd() && scan_.Peek() != '<') scan_.Advance();
      std::string_view raw = TrimWs(scan_.Slice(start, scan_.pos()));
      if (!raw.empty()) {
        std::string decoded;
        s = AppendWithEntities(&scan_, raw, &decoded);
        if (!s.ok()) return s;
        tree_.AppendText(node, decoded);
      }
    }
  }

  Scanner scan_;
  XmlTree tree_;
};

}  // namespace

StatusOr<XmlTree> XmlParser::Parse(std::string_view input) {
  ParserImpl impl(input);
  return impl.Run();
}

XmlTree ParseXmlStringOrDie(std::string_view input) {
  StatusOr<XmlTree> result = XmlParser::Parse(input);
  if (!result.ok()) {
    std::fprintf(stderr, "ParseXmlStringOrDie: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

StatusOr<XmlTree> ParseXmlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  return XmlParser::Parse(content);
}

}  // namespace xtopk
