#include "index/topk_index.h"

#include <algorithm>

#include "util/varint.h"

namespace xtopk {

const ScoreSegment* TopKList::FindSegment(uint16_t length) const {
  auto it = std::lower_bound(
      segments.begin(), segments.end(), length,
      [](const ScoreSegment& s, uint16_t len) { return s.length < len; });
  if (it != segments.end() && it->length == length) return &*it;
  return nullptr;
}

double TopKList::MaxDampedScoreAt(uint32_t level,
                                  const ScoringParams& params) const {
  double best = 0.0;
  for (const ScoreSegment& seg : segments) {
    if (seg.length < level) continue;
    double damped = static_cast<double>(seg.max_score) *
                    Damp(params, seg.length - level);
    best = std::max(best, damped);
  }
  return best;
}

bool TopKList::HasLength(uint32_t level) const {
  return FindSegment(static_cast<uint16_t>(level)) != nullptr;
}

TopKList BuildTopKListFor(const JDeweyList& jlist) {
  TopKList list;
  list.base = &jlist;
  // Group rows by sequence length, then order each group by score
  // descending (row-ascending tie-break for determinism).
  std::unordered_map<uint16_t, std::vector<uint32_t>> groups;
  for (uint32_t row = 0; row < jlist.num_rows(); ++row) {
    groups[jlist.lengths[row]].push_back(row);
  }
  for (auto& [length, rows] : groups) {
    std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
      if (jlist.scores[a] != jlist.scores[b]) {
        return jlist.scores[a] > jlist.scores[b];
      }
      return a < b;
    });
    ScoreSegment seg;
    seg.length = length;
    seg.max_score = jlist.scores[rows.front()];
    seg.rows = std::move(rows);
    list.segments.push_back(std::move(seg));
  }
  std::sort(list.segments.begin(), list.segments.end(),
            [](const ScoreSegment& a, const ScoreSegment& b) {
              return a.length < b.length;
            });
  return list;
}

TopKIndex BuildTopKIndexFrom(const JDeweyIndex& base) {
  TopKIndex index;
  index.base_ = &base;
  index.lists_.resize(base.terms().size());
  for (uint32_t t = 0; t < base.terms().size(); ++t) {
    index.term_ids_.emplace(base.terms()[t], t);
    index.lists_[t] = BuildTopKListFor(base.lists()[t]);
  }
  return index;
}

const TopKList* TopKIndex::GetList(const std::string& term) const {
  auto it = term_ids_.find(term);
  if (it == term_ids_.end()) return nullptr;
  return &lists_[it->second];
}

uint64_t TopKIndex::EncodedListBytes() const {
  // Column data + scores, as measured by the base index...
  uint64_t total = base_->EncodedListBytes(/*include_scores=*/true);
  // ...plus the per-segment score-order permutations.
  for (const TopKList& list : lists_) {
    for (const ScoreSegment& seg : list.segments) {
      total += 4;  // segment header: length + row count
      for (uint32_t row : seg.rows) total += varint::LengthU64(row);
    }
  }
  return total;
}

}  // namespace xtopk
