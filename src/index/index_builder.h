#ifndef XTOPK_INDEX_INDEX_BUILDER_H_
#define XTOPK_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "core/scoring.h"
#include "index/dewey_index.h"
#include "index/jdewey_index.h"
#include "index/rdil_index.h"
#include "index/topk_index.h"
#include "xml/dewey.h"
#include "xml/jdewey.h"
#include "xml/subtree_dag.h"
#include "xml/tokenizer.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Knobs of the indexing pipeline.
struct IndexBuildOptions {
  /// Reserved child slots per parent in the JDewey encoding (§III-A).
  uint32_t jdewey_gap = 2;
  /// Index element tag names as keywords in addition to text tokens.
  bool index_tag_names = true;
  /// Tokenizer configuration (Lucene stand-in).
  Tokenizer::Options tokenizer;
  /// Ranking parameters used when computing local scores.
  ScoringParams scoring;
  /// Fanout of baseline B+-trees.
  size_t btree_fanout = 128;
  /// Worker threads for the per-term list materialization (1 = serial).
  /// Results are bit-identical across thread counts: every term writes to
  /// its own pre-sized slot.
  size_t build_threads = 1;
  /// Equal-height histogram buckets per (term, level) in the planner
  /// statistics computed at build time. 0 disables statistics.
  size_t stats_buckets = kDefaultStatsBuckets;
  /// Structure-aware compression (DESIGN.md §15): detect identical
  /// same-level subtrees, verify the JDewey translation against the
  /// materialized columns, and attach dedup columns + expansion metadata
  /// so the join layer processes each shared subtree once. Off by default
  /// (it perturbs join-step counters on repetitive corpora); the
  /// XTOPK_DISABLE_DAG environment variable force-disables it even when
  /// set here.
  bool enable_dag = false;
  SubtreeDagOptions dag;
  /// Compact the term dictionary of the built index into the front-coded
  /// form (storage/dictionary.h). XTOPK_DISABLE_DICT force-disables.
  bool enable_dict = false;
};

/// A term and its document frequency (inverted-list length); the query
/// generator selects keywords by frequency band from this table.
struct TermInfo {
  std::string term;
  uint32_t frequency = 0;
};

/// Runs the shared indexing pipeline over one tree — tokenization, Dewey
/// and JDewey assignment, tf·idf local scores — then materializes any of
/// the four index families the paper evaluates. The tree must outlive the
/// builder; the builder must outlive nothing (built indexes are
/// self-contained except where documented).
class IndexBuilder {
 public:
  explicit IndexBuilder(const XmlTree& tree, IndexBuildOptions options = {});

  /// Column-oriented JDewey index (the join-based algorithms' input).
  JDeweyIndex BuildJDeweyIndex() const;

  /// Document-order Dewey index (stack-based & index-based baselines).
  DeweyIndex BuildDeweyIndex() const;

  /// Score-ordered segment index for the join-based top-K algorithm.
  /// `base` must outlive the result.
  TopKIndex BuildTopKIndex(const JDeweyIndex& base) const;

  /// RDIL: score-ordered lists + per-keyword Dewey B+-trees. `base` must
  /// outlive the result.
  RdilIndex BuildRdilIndex(const DeweyIndex& base) const;

  /// The index-based baseline's storage model: one B+-tree holding every
  /// (keyword, Dewey id) pair as a key (paper §V-A explains why this is
  /// large). Used for Table I size accounting.
  BTree BuildCombinedBTree(const DeweyIndex& base) const;

  /// All terms with their frequencies, unordered.
  const std::vector<TermInfo>& terms() const { return term_infos_; }

  const JDeweyEncoding& jdewey_encoding() const { return jdewey_; }
  const std::vector<DeweyId>& dewey_ids() const { return deweys_; }
  const XmlTree& tree() const { return tree_; }

 private:
  struct Occurrence {
    NodeId node = kInvalidNode;
    float score = 0.0f;
  };

  const XmlTree& tree_;
  IndexBuildOptions options_;
  JDeweyEncoding jdewey_;
  std::vector<DeweyId> deweys_;
  /// Preorder (document-order) rank per node. Creation order need not be
  /// document order (nodes can be appended under any parent), but document
  /// order, Dewey order, and fresh-JDewey-sequence order all coincide, so
  /// one rank sorts every index's rows.
  std::vector<uint32_t> doc_rank_;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<std::vector<Occurrence>> occurrences_;  // per term, doc order
  std::vector<TermInfo> term_infos_;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_INDEX_BUILDER_H_
