#include "xml/subtree_dag.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace xtopk {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashBytes(uint64_t h, std::string_view s) {
  for (char c : s) h = Mix(h, static_cast<unsigned char>(c));
  return Mix(h, s.size());
}

/// Per-node structural fingerprint inputs, computed in one post-order pass.
struct NodeInfo {
  uint64_t hash = 0;
  uint32_t count = 1;  ///< subtree node count
  uint32_t depth = 1;  ///< subtree level span
};

/// Exact structural equality of two subtrees (paired document-order walk).
/// Guards against hash collisions; groups are small so this is cheap.
bool SubtreesEqual(const XmlTree& tree, NodeId a, NodeId b,
                   const std::vector<std::string>* attr_text) {
  std::vector<std::pair<NodeId, NodeId>> stack{{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    const XmlNode& nx = tree.node(x);
    const XmlNode& ny = tree.node(y);
    if (nx.tag_id != ny.tag_id || nx.text != ny.text) return false;
    if (attr_text != nullptr && (*attr_text)[x] != (*attr_text)[y]) {
      return false;
    }
    NodeId cx = nx.first_child, cy = ny.first_child;
    while (cx != kInvalidNode && cy != kInvalidNode) {
      stack.emplace_back(cx, cy);
      cx = tree.node(cx).next_sibling;
      cy = tree.node(cy).next_sibling;
    }
    if (cx != cy) return false;  // differing child counts
  }
  return true;
}

}  // namespace

std::vector<NodeId> SubtreeNodes(const XmlTree& tree, NodeId root) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // Push children reversed so the walk pops them in document order.
    std::vector<NodeId> kids;
    for (NodeId c = tree.node(id).first_child; c != kInvalidNode;
         c = tree.node(c).next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SubtreeDagResult DetectSharedSubtrees(const XmlTree& tree,
                                      const SubtreeDagOptions& options) {
  SubtreeDagResult result;
  if (tree.empty()) return result;
  const size_t n = tree.node_count();

  // Attribute fingerprints, only when the document carries any.
  std::vector<std::string> attr_text;
  const std::vector<std::string>* attr_ptr = nullptr;
  if (!tree.attributes().empty()) {
    attr_text.assign(n, std::string());
    for (const XmlAttr& attr : tree.attributes()) {
      attr_text[attr.node] += attr.name;
      attr_text[attr.node] += '=';
      attr_text[attr.node] += attr.value;
      attr_text[attr.node] += '\x1f';
    }
    attr_ptr = &attr_text;
  }

  // Bottom-up fingerprints. NodeIds are assigned in document (pre-)order,
  // so a reverse id sweep visits every child before its parent.
  std::vector<NodeInfo> info(n);
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    const XmlNode& node = tree.node(id);
    uint64_t h = Mix(0x243f6a8885a308d3ULL, node.tag_id);
    h = HashBytes(h, node.text);
    if (attr_ptr != nullptr) h = HashBytes(h, attr_text[id]);
    uint32_t count = 1, depth = 1;
    for (NodeId c = node.first_child; c != kInvalidNode;
         c = tree.node(c).next_sibling) {
      h = Mix(h, info[c].hash);
      count += info[c].count;
      depth = std::max(depth, info[c].depth + 1);
    }
    info[id] = NodeInfo{h, count, depth};
  }

  // Group candidate roots by (fingerprint, level). Only subtrees big
  // enough to matter enter the table.
  std::unordered_map<uint64_t, std::vector<NodeId>> groups;
  for (NodeId id = 0; id < n; ++id) {
    if (info[id].count < options.min_subtree_nodes) continue;
    uint64_t key = Mix(info[id].hash, tree.level(id));
    groups[key].push_back(id);  // document order: ids ascend
  }

  // Exact-verify each group (collision safety) and split it into true
  // equivalence classes.
  std::vector<SubtreeClass> candidates;
  for (auto& [key, roots] : groups) {
    (void)key;
    if (roots.size() < options.min_instances) continue;
    std::vector<char> used(roots.size(), 0);
    for (size_t i = 0; i < roots.size(); ++i) {
      if (used[i]) continue;
      SubtreeClass cls;
      cls.level = tree.level(roots[i]);
      cls.node_count = info[roots[i]].count;
      cls.depth = info[roots[i]].depth;
      cls.roots.push_back(roots[i]);
      for (size_t j = i + 1; j < roots.size(); ++j) {
        if (used[j]) continue;
        if (SubtreesEqual(tree, roots[i], roots[j], attr_ptr)) {
          used[j] = 1;
          cls.roots.push_back(roots[j]);
        }
      }
      used[i] = 1;
      if (cls.roots.size() >= options.min_instances) {
        candidates.push_back(std::move(cls));
      }
    }
  }

  // Greedy disjoint selection, largest structural savings first. The
  // ordering (and the tie-break on the representative's id) makes the
  // result deterministic across runs and platforms.
  std::sort(candidates.begin(), candidates.end(),
            [](const SubtreeClass& a, const SubtreeClass& b) {
              uint64_t sa = uint64_t(a.node_count) * (a.roots.size() - 1);
              uint64_t sb = uint64_t(b.node_count) * (b.roots.size() - 1);
              if (sa != sb) return sa > sb;
              return a.roots[0] < b.roots[0];
            });
  std::vector<char> covered(n, 0);
  for (SubtreeClass& cls : candidates) {
    // Keep only instances disjoint from everything already selected; the
    // class survives if at least min_instances of them remain.
    std::vector<NodeId> keep_roots, nodes;
    for (NodeId root : cls.roots) {
      std::vector<NodeId> sub = SubtreeNodes(tree, root);
      bool free = true;
      for (NodeId id : sub) {
        if (covered[id]) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      keep_roots.push_back(root);
      nodes.insert(nodes.end(), sub.begin(), sub.end());
    }
    if (keep_roots.size() < options.min_instances) continue;
    for (NodeId id : nodes) covered[id] = 1;
    cls.roots = std::move(keep_roots);
    result.shared_nodes +=
        uint64_t(cls.node_count) * (cls.roots.size() - 1);
    result.classes.push_back(std::move(cls));
  }
  // Deterministic, document-ordered output (selection order is by size).
  std::sort(result.classes.begin(), result.classes.end(),
            [](const SubtreeClass& a, const SubtreeClass& b) {
              return a.roots[0] < b.roots[0];
            });
  return result;
}

}  // namespace xtopk
