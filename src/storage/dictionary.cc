#include "storage/dictionary.h"

#include <algorithm>

#include "util/varint.h"

namespace xtopk {

namespace {

size_t SharedPrefix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

StatusOr<FrontCodedDict> FrontCodedDict::Build(
    const std::vector<std::string>& strings) {
  FrontCodedDict dict;
  dict.count_ = static_cast<uint32_t>(strings.size());
  std::string prev;
  for (uint32_t i = 0; i < strings.size(); ++i) {
    const std::string& s = strings[i];
    if (i > 0 && !(prev < s)) {
      return Status::InvalidArgument(
          "FrontCodedDict input not sorted/unique at \"" + s + "\"");
    }
    size_t prefix = 0;
    if (i % kRestartInterval == 0) {
      dict.restarts_.push_back(static_cast<uint32_t>(dict.bytes_.size()));
    } else {
      prefix = SharedPrefix(prev, s);
    }
    varint::PutU32(&dict.bytes_, static_cast<uint32_t>(prefix));
    varint::PutU32(&dict.bytes_, static_cast<uint32_t>(s.size() - prefix));
    dict.bytes_.append(s, prefix, s.size() - prefix);
    prev = s;
  }
  return dict;
}

template <typename Fn>
void FrontCodedDict::ScanBlock(uint32_t r, Fn&& fn) const {
  size_t pos = restarts_[r];
  uint32_t code = r * kRestartInterval;
  uint32_t last = std::min(count_, (r + 1) * kRestartInterval);
  std::string current;
  for (; code < last; ++code) {
    uint32_t prefix = 0, suffix = 0;
    // bytes_ was produced by Build/Deserialize (validated), so these reads
    // cannot fail; ignore status in this internal scan.
    (void)varint::GetU32(bytes_, &pos, &prefix);
    (void)varint::GetU32(bytes_, &pos, &suffix);
    current.resize(prefix);
    current.append(bytes_, pos, suffix);
    pos += suffix;
    if (!fn(code, std::string_view(current))) return;
  }
}

uint32_t FrontCodedDict::Lookup(std::string_view s) const {
  if (count_ == 0) return kNotFound;
  // Binary search over restart entries (each is stored in full).
  uint32_t lo = 0, hi = static_cast<uint32_t>(restarts_.size());
  // Invariant: restart[lo - 1] <= s (or lo == 0); restart[hi] > s (or end).
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    size_t pos = restarts_[mid];
    uint32_t prefix = 0, suffix = 0;
    (void)varint::GetU32(bytes_, &pos, &prefix);
    (void)varint::GetU32(bytes_, &pos, &suffix);
    std::string_view head(bytes_.data() + pos, suffix);
    if (head <= s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return kNotFound;  // s sorts before the first entry
  uint32_t found = kNotFound;
  ScanBlock(lo - 1, [&](uint32_t code, std::string_view entry) {
    if (entry == s) {
      found = code;
      return false;
    }
    return entry < s;  // stop early once past s
  });
  return found;
}

std::string FrontCodedDict::Decode(uint32_t code) const {
  std::string out;
  ScanBlock(code / kRestartInterval, [&](uint32_t c, std::string_view entry) {
    if (c == code) {
      out.assign(entry);
      return false;
    }
    return true;
  });
  return out;
}

std::vector<std::string> FrontCodedDict::DecodeAll() const {
  std::vector<std::string> out;
  out.reserve(count_);
  for (uint32_t r = 0; r < restarts_.size(); ++r) {
    ScanBlock(r, [&](uint32_t, std::string_view entry) {
      out.emplace_back(entry);
      return true;
    });
  }
  return out;
}

void FrontCodedDict::Serialize(std::string* out) const {
  varint::PutU32(out, count_);
  varint::PutU32(out, kRestartInterval);
  varint::PutU32(out, static_cast<uint32_t>(restarts_.size()));
  uint32_t prev = 0;
  for (uint32_t off : restarts_) {
    varint::PutU32(out, off - prev);
    prev = off;
  }
  varint::PutU64(out, bytes_.size());
  out->append(bytes_);
}

StatusOr<FrontCodedDict> FrontCodedDict::Deserialize(const std::string& data,
                                                     size_t* pos) {
  FrontCodedDict dict;
  uint32_t interval = 0, num_restarts = 0;
  Status s = varint::GetU32(data, pos, &dict.count_);
  if (s.ok()) s = varint::GetU32(data, pos, &interval);
  if (s.ok()) s = varint::GetU32(data, pos, &num_restarts);
  if (!s.ok()) return s;
  if (interval != kRestartInterval) {
    return Status::Corruption("dictionary restart interval mismatch");
  }
  uint32_t expect_restarts =
      dict.count_ == 0 ? 0 : (dict.count_ + kRestartInterval - 1) / kRestartInterval;
  if (num_restarts != expect_restarts) {
    return Status::Corruption("dictionary restart count mismatch");
  }
  dict.restarts_.reserve(num_restarts);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < num_restarts; ++i) {
    uint32_t delta = 0;
    s = varint::GetU32(data, pos, &delta);
    if (!s.ok()) return s;
    uint32_t off = (i == 0) ? delta : prev + delta;
    if (i == 0 && delta != 0) {
      return Status::Corruption("dictionary first restart not at 0");
    }
    dict.restarts_.push_back(off);
    prev = off;
  }
  uint64_t nbytes = 0;
  s = varint::GetU64(data, pos, &nbytes);
  if (!s.ok()) return s;
  if (*pos + nbytes > data.size()) {
    return Status::Corruption("dictionary body truncated");
  }
  dict.bytes_.assign(data, *pos, nbytes);
  *pos += nbytes;
  // Validate the entry stream: every restart offset must land on an entry
  // boundary and the stream must decode exactly count_ strings in order.
  size_t p = 0;
  std::string prev_str;
  for (uint32_t code = 0; code < dict.count_; ++code) {
    if (code % kRestartInterval == 0) {
      if (code / kRestartInterval >= dict.restarts_.size() ||
          dict.restarts_[code / kRestartInterval] != p) {
        return Status::Corruption("dictionary restart offset mismatch");
      }
    }
    uint32_t prefix = 0, suffix = 0;
    s = varint::GetU32(dict.bytes_, &p, &prefix);
    if (s.ok()) s = varint::GetU32(dict.bytes_, &p, &suffix);
    if (!s.ok()) return Status::Corruption("dictionary entry truncated");
    if (p + suffix > dict.bytes_.size()) {
      return Status::Corruption("dictionary entry truncated");
    }
    if (code % kRestartInterval == 0 && prefix != 0) {
      return Status::Corruption("dictionary restart entry carries a prefix");
    }
    if (prefix > prev_str.size()) {
      return Status::Corruption("dictionary prefix exceeds previous entry");
    }
    std::string cur = prev_str.substr(0, prefix);
    cur.append(dict.bytes_, p, suffix);
    p += suffix;
    if (code > 0 && !(prev_str < cur)) {
      return Status::Corruption("dictionary entries out of order");
    }
    prev_str = std::move(cur);
  }
  if (p != dict.bytes_.size()) {
    return Status::Corruption("dictionary trailing bytes");
  }
  return dict;
}

}  // namespace xtopk
