#ifndef XTOPK_WORKLOAD_DBLP_GEN_H_
#define XTOPK_WORKLOAD_DBLP_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/vocab.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Synthetic DBLP-like corpus (the paper's primary data set, regrouped the
/// way §V describes: papers firstly by conference/journal, then by year):
///
///   dblp → conference → year → paper → {title, authors → author}
///
/// Title/author text draws Zipf-distributed vocabulary; planted terms give
/// the benchmark queries exact frequencies and correlations. Defaults yield
/// ~20k papers (~150k nodes) — the scaled-down stand-in for the 496 MB
/// original (DESIGN.md §4).
struct DblpGenOptions {
  uint32_t num_conferences = 50;
  uint32_t years_per_conference = 10;
  uint32_t papers_per_year = 40;
  uint32_t title_words = 8;
  uint32_t authors_per_paper = 2;
  /// Optional <abstract> element per paper (0 = none).
  uint32_t abstract_words = 0;
  /// Distinct author names; papers draw Zipf-skewed from this pool, so
  /// author-name keyword frequencies follow a realistic distribution.
  uint32_t author_pool = 500;
  uint32_t vocab_size = 20000;
  double zipf_theta = 1.1;
  uint64_t seed = 42;
  std::vector<PlantedTerm> planted;
};

struct DblpCorpus {
  XmlTree tree;
  /// Title elements — the planted-term targets and the typical occurrence
  /// nodes of query keywords.
  std::vector<NodeId> titles;
};

DblpCorpus GenerateDblp(const DblpGenOptions& options);

}  // namespace xtopk

#endif  // XTOPK_WORKLOAD_DBLP_GEN_H_
