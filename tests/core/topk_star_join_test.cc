#include "core/topk_star_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "util/rng.h"

namespace xtopk {
namespace {

std::vector<RankedTuple> Sorted(std::vector<RankedTuple> tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const RankedTuple& a, const RankedTuple& b) {
              return a.score > b.score;
            });
  return tuples;
}

/// Reference: full join + sort, top k.
std::vector<StarJoinResultRow> FullJoin(
    const std::vector<std::vector<RankedTuple>>& relations, size_t k) {
  std::map<uint64_t, std::pair<size_t, double>> acc;  // id -> (count, sum)
  for (const auto& rel : relations) {
    for (const RankedTuple& t : rel) {
      auto& [count, sum] = acc[t.id];
      ++count;
      sum += t.score;
    }
  }
  std::vector<StarJoinResultRow> out;
  for (const auto& [id, cs] : acc) {
    if (cs.first == relations.size()) {
      out.push_back(StarJoinResultRow{id, cs.second, false});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StarJoinResultRow& a, const StarJoinResultRow& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::vector<RankedTuple>> RandomRelations(uint64_t seed, size_t k,
                                                      size_t ids,
                                                      double keep_prob) {
  Rng rng(seed);
  std::vector<std::vector<RankedTuple>> rels(k);
  for (size_t r = 0; r < k; ++r) {
    for (uint64_t id = 0; id < ids; ++id) {
      if (rng.NextBernoulli(keep_prob)) {
        rels[r].push_back(RankedTuple{id, rng.NextDouble()});
      }
    }
    rels[r] = Sorted(rels[r]);
  }
  return rels;
}

TEST(TopKStarJoinTest, TwoWayBasic) {
  VectorRankedSource r1(Sorted({{1, 1.0}, {2, 0.9}, {3, 0.2}}));
  VectorRankedSource r2(Sorted({{2, 0.8}, {3, 0.7}, {4, 0.6}}));
  TopKStarJoin join({&r1, &r2}, StarJoinOptions{2, true});
  auto results = join.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_NEAR(results[0].score, 1.7, 1e-12);
  EXPECT_EQ(results[1].id, 3u);
  EXPECT_NEAR(results[1].score, 0.9, 1e-12);
}

TEST(TopKStarJoinTest, RunMirrorsStatsIntoRegistry) {
  auto& registry = obs::MetricsRegistry::Global();
  uint64_t runs_before = registry.GetCounter("core.topk.star.runs").value();
  uint64_t read_before =
      registry.GetCounter("core.topk.star.tuples_read").value();

  VectorRankedSource r1(Sorted({{1, 1.0}, {2, 0.9}, {3, 0.2}}));
  VectorRankedSource r2(Sorted({{2, 0.8}, {3, 0.7}, {4, 0.6}}));
  TopKStarJoin join({&r1, &r2}, StarJoinOptions{2, true});
  auto results = join.Run();
  ASSERT_EQ(results.size(), 2u);

  EXPECT_EQ(registry.GetCounter("core.topk.star.runs").value(),
            runs_before + 1);
  EXPECT_EQ(registry.GetCounter("core.topk.star.tuples_read").value(),
            read_before + join.stats().tuples_read);
  EXPECT_GT(join.stats().tuples_read, 0u);
}

TEST(TopKStarJoinTest, EmissionOrderIsScoreDescending) {
  auto rels = RandomRelations(5, 3, 50, 0.7);
  std::vector<VectorRankedSource> sources;
  sources.reserve(3);
  std::vector<RankedSource*> ptrs;
  for (auto& rel : rels) sources.emplace_back(rel);
  for (auto& s : sources) ptrs.push_back(&s);
  TopKStarJoin join(ptrs, StarJoinOptions{10, true});
  auto results = join.Run();
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score - 1e-12);
  }
}

TEST(TopKStarJoinTest, MatchesFullJoinRandomized) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    size_t k = 2 + seed % 4;  // 2..5 inputs
    auto rels = RandomRelations(seed * 31, k, 40 + seed % 60, 0.5);
    for (bool grouped : {true, false}) {
      std::vector<VectorRankedSource> sources;
      sources.reserve(k);
      std::vector<RankedSource*> ptrs;
      for (auto& rel : rels) sources.emplace_back(rel);
      for (auto& s : sources) ptrs.push_back(&s);
      TopKStarJoin join(ptrs, StarJoinOptions{7, grouped});
      auto got = join.Run();
      auto want = FullJoin(rels, 7);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        // Ties may reorder ids; scores must match positionally.
        ASSERT_NEAR(got[i].score, want[i].score, 1e-9)
            << "seed " << seed << " pos " << i;
      }
    }
  }
}

TEST(TopKStarJoinTest, GroupedBoundNeverLooser) {
  // Drive two trackers through identical event streams; the paper's
  // grouped bound must always be <= the classic bound (§IV-B theorem).
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    size_t k = 2 + rng.NextBounded(3);
    StarThreshold grouped(k, true), classic(k, false);
    std::vector<double> heads(k);
    for (size_t i = 0; i < k; ++i) {
      heads[i] = 1.0;
      grouped.SetHeadScore(i, 1.0);
      classic.SetHeadScore(i, 1.0);
    }
    std::vector<std::pair<uint32_t, double>> partials;
    for (int step = 0; step < 30; ++step) {
      if (rng.NextBernoulli(0.5)) {
        size_t i = rng.NextBounded(k);
        heads[i] = std::max(0.0, heads[i] - rng.NextDouble() * 0.2);
        grouped.SetHeadScore(i, heads[i]);
        classic.SetHeadScore(i, heads[i]);
      } else {
        uint32_t mask = 1u + static_cast<uint32_t>(
                                 rng.NextBounded((1u << k) - 2));
        double sum = 0;
        for (size_t i = 0; i < k; ++i) {
          if (mask & (1u << i)) sum += rng.NextDouble();
        }
        grouped.AddPartial(mask, sum);
        partials.emplace_back(mask, sum);
      }
      EXPECT_LE(grouped.Bound(), classic.Bound() + 1e-12) << trial;
    }
  }
}

TEST(TopKStarJoinTest, GroupedThresholdUnblocksEarlier) {
  // Construct a stream where a completed result is provably safe under the
  // grouped bound but not under the classic one: the bucket holds only
  // low partial sums while some input still has a high max.
  std::vector<RankedTuple> r1 = Sorted({{1, 1.0}, {2, 0.5}, {3, 0.1}});
  std::vector<RankedTuple> r2 = Sorted({{1, 1.0}, {4, 0.5}, {5, 0.1}});
  for (bool grouped : {true, false}) {
    VectorRankedSource s1(r1), s2(r2);
    TopKStarJoin join({&s1, &s2}, StarJoinOptions{1, grouped});
    auto results = join.Run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, 1u);
    EXPECT_NEAR(results[0].score, 2.0, 1e-12);
  }
  // Both find it; the statistic difference is in early emission counts,
  // covered by the randomized comparison below.
}

TEST(TopKStarJoinTest, GroupedEmitsAtLeastAsEarlyRandomized) {
  uint64_t grouped_wins = 0;
  for (uint64_t seed = 100; seed < 140; ++seed) {
    auto rels = RandomRelations(seed, 3, 60, 0.6);
    uint64_t reads[2];
    int idx = 0;
    for (bool grouped : {true, false}) {
      std::vector<VectorRankedSource> sources;
      sources.reserve(3);
      std::vector<RankedSource*> ptrs;
      for (auto& rel : rels) sources.emplace_back(rel);
      for (auto& s : sources) ptrs.push_back(&s);
      TopKStarJoin join(ptrs, StarJoinOptions{5, grouped});
      join.Run();
      reads[idx] = join.stats().tuples_read;
      ++idx;
    }
    // The tighter bound can never read more tuples to emit the same k.
    EXPECT_LE(reads[0], reads[1]) << "seed " << seed;
    if (reads[0] < reads[1]) ++grouped_wins;
  }
  // And it should actually help on a nontrivial fraction of inputs.
  EXPECT_GT(grouped_wins, 0u);
}

TEST(TopKStarJoinTest, ExhaustionFlushesEverything) {
  VectorRankedSource r1(Sorted({{1, 0.9}, {2, 0.1}}));
  VectorRankedSource r2(Sorted({{3, 0.8}, {2, 0.2}}));
  TopKStarJoin join({&r1, &r2}, StarJoinOptions{10, true});
  auto results = join.Run();
  ASSERT_EQ(results.size(), 1u);  // only id 2 joins
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_FALSE(results[0].emitted_early);
}

TEST(TopKStarJoinTest, SingleSourceDegeneratesToTopK) {
  VectorRankedSource r1(Sorted({{1, 0.9}, {2, 0.7}, {3, 0.5}, {4, 0.1}}));
  TopKStarJoin join({&r1}, StarJoinOptions{2, true});
  auto results = join.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_EQ(results[1].id, 2u);
}

TEST(TopKStarJoinTest, DuplicateIdWithinInputKeepsFirst) {
  // Set semantics: the second (lower-scored) occurrence of id 1 in r1 is
  // ignored, matching §III-B.
  std::vector<RankedTuple> r1 = {{1, 0.9}, {1, 0.3}};
  VectorRankedSource s1(r1);
  VectorRankedSource s2(Sorted({{1, 0.5}}));
  TopKStarJoin join({&s1, &s2}, StarJoinOptions{5, true});
  auto results = join.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].score, 1.4, 1e-12);
}

}  // namespace
}  // namespace xtopk
