// Durable segment lifecycle of UpdatableEngine (core/updatable_engine.h):
// reopen cycles resume the sealed set and the maintained encoding,
// compaction (foreground and background) never moves a result bit, and a
// FaultPlan sweep over every manifest-log append proves that a crash at
// ANY maintenance transition reopens to a consistent, orphan-free
// directory whose answers are bit-identical to an in-memory reference.

#include "core/updatable_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "storage/manifest_log.h"
#include "util/fault_env.h"
#include "xml/xml_tree.h"

namespace xtopk {
namespace {

std::string TestDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/durable_engine_" + tag + "." +
                    std::to_string(static_cast<long>(::getpid()));
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

constexpr const char* kWords[] = {"xml",   "keyword", "search", "rank",
                                  "index", "query",   "dewey",  "join",
                                  "top",   "segment", "merge",  "log"};

std::string TextFor(size_t i) {
  return std::string(kWords[i % 12]) + " " + kWords[(i * 5 + 3) % 12];
}

/// The document after `adds` flat inserts (node i+1 is insert i). The
/// engine's AddElement is AddChild + AppendText, so building the same ops
/// directly on an XmlTree reproduces the engine's tree bit for bit —
/// which is exactly what a reopen does: the caller re-supplies the
/// document, the data directory supplies the index.
XmlTree TreeAfter(size_t adds, bool stale_append = false) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  for (size_t i = 0; i < adds; ++i) {
    NodeId node = tree.AddChild(root, "p");
    tree.AppendText(node, TextFor(i));
  }
  if (stale_append && adds > 0) tree.AppendText(1, "stalemark");
  return tree;
}

void AddRange(UpdatableEngine* engine, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    engine->AddElement(engine->tree().root(), "p", TextFor(i));
  }
}

const std::vector<std::vector<std::string>> kQueries = {
    {"xml", "keyword"}, {"rank", "join"},  {"segment", "merge"},
    {"dewey", "index"}, {"top", "query"},  {"search", "log"}};

std::vector<std::vector<QueryHit>> RunAllQueries(UpdatableEngine* engine) {
  std::vector<std::vector<QueryHit>> out;
  for (const auto& q : kQueries) out.push_back(engine->SearchTopK(q, 10));
  return out;
}

void ExpectSameHits(const std::vector<std::vector<QueryHit>>& got,
                    const std::vector<std::vector<QueryHit>>& want,
                    const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << ctx << " query " << q;
    for (size_t i = 0; i < want[q].size(); ++i) {
      EXPECT_EQ(got[q][i].node, want[q][i].node)
          << ctx << " query " << q << " i=" << i;
      EXPECT_EQ(got[q][i].level, want[q][i].level)
          << ctx << " query " << q << " i=" << i;
      // Bit identity: segmentation, compaction, and reopen must not move
      // a single mantissa bit of any score.
      EXPECT_EQ(got[q][i].score, want[q][i].score)
          << ctx << " query " << q << " i=" << i;
    }
  }
}

std::unique_ptr<UpdatableEngine> OpenOrDie(const std::string& dir,
                                           XmlTree tree,
                                           bool auto_compact = false) {
  DurableOptions durable;
  durable.data_dir = dir;
  durable.auto_compact = auto_compact;
  durable.compaction.max_segments = 2;
  auto opened = UpdatableEngine::OpenDurable(std::move(tree), {}, durable);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

TEST(DurableEngineTest, ReopenResumesSealedSetAndEncoding) {
  const std::string dir = TestDir("reopen");

  std::vector<std::vector<QueryHit>> before;
  size_t segments_before = 0;
  {
    auto engine = OpenOrDie(dir, TreeAfter(0));
    AddRange(engine.get(), 0, 12);
    ASSERT_TRUE(engine->SealMemtable().ok());
    AddRange(engine.get(), 12, 24);
    ASSERT_TRUE(engine->SealMemtable().ok());
    AddRange(engine.get(), 24, 30);  // unsealed memtable tail
    before = RunAllQueries(engine.get());
    segments_before = engine->segment_count();
    EXPECT_EQ(segments_before, 2u);
    EXPECT_EQ(engine->rebuilds(), 0u);
  }

  // Reopen: the caller re-supplies the document, the directory supplies
  // the sealed set. The unsealed tail (nodes past the recovered
  // watermark) becomes the memtable again — nothing is rebuilt.
  auto engine = OpenOrDie(dir, TreeAfter(30));
  EXPECT_EQ(engine->segment_count(), segments_before);
  EXPECT_EQ(engine->rebuilds(), 0u);
  ASSERT_TRUE(engine->ValidateEncoding().ok());
  ExpectSameHits(RunAllQueries(engine.get()), before, "after reopen");

  // The resumed engine keeps working: more appends, another seal, another
  // reopen.
  AddRange(engine.get(), 30, 36);
  ASSERT_TRUE(engine->SealMemtable().ok());
  auto after_growth = RunAllQueries(engine.get());
  engine.reset();
  auto engine2 = OpenOrDie(dir, TreeAfter(36));
  EXPECT_EQ(engine2->rebuilds(), 0u);
  ExpectSameHits(RunAllQueries(engine2.get()), after_growth,
                 "after second reopen");
  engine2.reset();
  std::system(("rm -rf " + dir).c_str());
}

TEST(DurableEngineTest, CompactIsBitIdenticalAndCounted) {
  const std::string dir = TestDir("compact");
  auto engine = OpenOrDie(dir, TreeAfter(0));
  for (size_t batch = 0; batch < 3; ++batch) {
    AddRange(engine.get(), batch * 10, batch * 10 + 10);
    ASSERT_TRUE(engine->SealMemtable().ok());
  }
  EXPECT_EQ(engine->segment_count(), 3u);
  auto before = RunAllQueries(engine.get());

  auto& runs = obs::MetricsRegistry::Global().GetCounter(
      "index.compaction.runs");
  auto& bytes_in = obs::MetricsRegistry::Global().GetCounter(
      "index.compaction.bytes_in");
  const int64_t runs_before = runs.value();
  const int64_t bytes_in_before = bytes_in.value();

  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(engine->segment_count(), 1u);
  ExpectSameHits(RunAllQueries(engine.get()), before, "after compact");
  EXPECT_EQ(runs.value(), runs_before + 1);
  EXPECT_GT(bytes_in.value(), bytes_in_before);

  // The compacted set survives a reopen too.
  engine.reset();
  engine = OpenOrDie(dir, TreeAfter(30));
  EXPECT_EQ(engine->segment_count(), 1u);
  ExpectSameHits(RunAllQueries(engine.get()), before, "reopen of compacted");
  engine.reset();
  std::system(("rm -rf " + dir).c_str());
}

TEST(DurableEngineTest, BackgroundCompactionConvergesUnderQueries) {
  const std::string dir = TestDir("bg");
  auto engine = OpenOrDie(dir, TreeAfter(0), /*auto_compact=*/true);
  ASSERT_NE(engine->scheduler(), nullptr);

  std::vector<std::vector<QueryHit>> expected;
  for (size_t batch = 0; batch < 6; ++batch) {
    AddRange(engine.get(), batch * 8, batch * 8 + 8);
    ASSERT_TRUE(engine->SealMemtable().ok());
    if (batch == 5) expected = RunAllQueries(engine.get());
  }
  // The scheduler was notified on every seal; with max_segments = 2 it
  // must merge the pile down. Poll — the thread is deliberately nice(19).
  // Poll rounds() too: it is bumped after a round's publish, so a
  // converged count can be observed before the counter moves.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((engine->segment_count() > 2 || engine->scheduler()->rounds() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(engine->segment_count(), 2u);
  EXPECT_GE(engine->scheduler()->rounds(), 1u);
  ExpectSameHits(RunAllQueries(engine.get()), expected,
                 "after background compaction");
  engine.reset();
  std::system(("rm -rf " + dir).c_str());
}

TEST(DurableEngineTest, DisableEnvKeepsBackgroundThreadOff) {
  ::setenv("XTOPK_DISABLE_BG_COMPACT", "1", 1);
  const std::string dir = TestDir("disable");
  auto engine = OpenOrDie(dir, TreeAfter(0), /*auto_compact=*/true);
  ASSERT_NE(engine->scheduler(), nullptr);
  EXPECT_FALSE(engine->scheduler()->running());
  engine->scheduler()->Start();  // still a no-op under the kill switch
  EXPECT_FALSE(engine->scheduler()->running());
  ::unsetenv("XTOPK_DISABLE_BG_COMPACT");
  engine.reset();
  std::system(("rm -rf " + dir).c_str());
}

/// One scripted durable run: two seals, a full compaction, then a
/// below-watermark text append + query (the durable FULL REBUILD path —
/// its commit record carries a watermark). Every Status is deliberately
/// ignored: with a fault armed this models the process continuing after
/// an I/O error, and an OpenDurable failure models a crash during
/// recovery itself.
void RunScript(const std::string& dir) {
  DurableOptions durable;
  durable.data_dir = dir;
  durable.auto_compact = false;
  auto opened = UpdatableEngine::OpenDurable(TreeAfter(0), {}, durable);
  if (!opened.ok()) return;
  auto engine = std::move(opened).value();
  AddRange(engine.get(), 0, 8);
  (void)engine->SealMemtable();
  AddRange(engine.get(), 8, 16);
  (void)engine->SealMemtable();
  (void)engine->Compact();
  engine->AppendText(1, "stalemark");  // sealed node: forces durable rebuild
  engine->SearchTopK(kQueries[0], 10);
}

TEST(DurableEngineTest, ManifestAppendFaultSweepReopensConsistent) {
  // The reference: the same final document served by a plain in-memory
  // engine. Scoring is segmentation-invariant by design, so EVERY
  // recovered state — whatever prefix of the maintenance history survived
  // the injected crash — must answer bit-identically to this.
  UpdatableEngine reference(TreeAfter(16, /*stale_append=*/true));
  const auto expected = RunAllQueries(&reference);

  // Measure the sweep range: how many log appends the clean script makes.
  auto& injector = FaultInjector::Global();
  {
    FaultPlan observe;
    observe.kind = FaultKind::kNone;
    observe.site = "manifestlog.append";
    injector.SetPlan(observe);
    const std::string dir = TestDir("sweep_observe");
    RunScript(dir);
    std::system(("rm -rf " + dir).c_str());
  }
  const uint64_t appends = injector.CallCount("manifestlog.append");
  injector.Clear();
  ASSERT_GE(appends, 8u) << "script no longer exercises the log";

  const FaultKind kinds[] = {FaultKind::kTruncate, FaultKind::kBitFlip,
                             FaultKind::kTransientIoError};
  for (FaultKind kind : kinds) {
    for (uint64_t trigger = 0; trigger < appends; ++trigger) {
      SCOPED_TRACE(std::string(FaultKindName(kind)) + " trigger=" +
                   std::to_string(trigger));
      const std::string dir = TestDir("sweep");
      FaultPlan plan;
      plan.kind = kind;
      plan.site = "manifestlog.append";
      plan.trigger = trigger;
      plan.seed = trigger + 1;
      injector.SetPlan(plan);
      RunScript(dir);
      injector.Clear();

      // Reopen the crashed directory with the surviving document.
      // Whatever maintenance prefix the log kept, recovery must yield a
      // consistent set and the answers must not change.
      auto reopened = OpenOrDie(dir, TreeAfter(16, /*stale_append=*/true));
      ASSERT_NE(reopened, nullptr);
      ExpectSameHits(RunAllQueries(reopened.get()), expected, "reopened");
      reopened.reset();

      // Zero-orphan proof: recovery already deleted everything the log
      // does not vouch for, so a second recovery finds nothing to remove.
      auto again = RecoverSegmentSet(dir);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_TRUE(again->removed_files.empty())
          << "orphan left behind: " << again->removed_files[0];
      std::system(("rm -rf " + dir).c_str());
    }
  }
}

}  // namespace
}  // namespace xtopk
