#ifndef XTOPK_SERVE_RESULT_CACHE_H_
#define XTOPK_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace xtopk {
namespace serve {

/// Bounded cache of complete query answers, keyed by the normalized query
/// and the index's plan watermark — the same watermark discipline
/// PlanCache uses. A hit requires the cached entry's watermark to equal
/// the caller's current watermark; a seal, compact, or ingest bumps the
/// index version, so every stale entry silently turns into a miss and no
/// mutation path ever reaches into the cache.
///
/// Only full answers are cached: a partial (deadline-expired) result is a
/// prefix whose length depends on the expired budget, so caching it would
/// poison later queries with larger budgets. Callers enforce this by only
/// calling Insert for ResponseStatus::kOk responses.
///
/// Thread-safe; values are immutable and handed out as shared_ptr so a
/// replaced entry stays valid for responses still being serialized.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 1024) : capacity_(capacity) {}

  /// Canonical cache key: normalized keywords (the caller normalizes with
  /// the engine's own tokenizer) + semantics + k. Keyword order matters —
  /// normalization already fixed it to first-occurrence order, which the
  /// engines preserve, so equal queries produce equal keys.
  static std::string Key(const std::vector<std::string>& normalized_keywords,
                         Semantics semantics, uint32_t k);

  /// The cached hits if present AND cached at `watermark`; nullptr
  /// otherwise (counted as a miss either way).
  std::shared_ptr<const std::vector<ResponseHit>> Lookup(
      const std::string& key, uint64_t watermark);

  /// Caches `hits` under (key, watermark), replacing any prior entry.
  /// Evicts in insertion order when over capacity.
  void Insert(const std::string& key, uint64_t watermark,
              std::shared_ptr<const std::vector<ResponseHit>> hits);

  void Clear();
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    uint64_t watermark = 0;
    std::shared_ptr<const std::vector<ResponseHit>> hits;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace serve
}  // namespace xtopk

#endif  // XTOPK_SERVE_RESULT_CACHE_H_
