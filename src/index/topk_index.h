#ifndef XTOPK_INDEX_TOPK_INDEX_H_
#define XTOPK_INDEX_TOPK_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scoring.h"
#include "index/jdewey_index.h"

namespace xtopk {

/// One length group of a score-ordered inverted list (paper §IV-C, Fig. 7):
/// all rows whose JDewey sequences have the same length, ordered by their
/// local score g descending. Within one group the damping factor at any
/// column is a constant, so the g-order equals the damped-score order at
/// every level — the property the top-K algorithm's per-column cursors rely
/// on.
struct ScoreSegment {
  uint16_t length = 0;           ///< Sequence length shared by the group.
  std::vector<uint32_t> rows;    ///< JDeweyList rows, by score descending.
  float max_score = 0.0f;        ///< g of rows.front().
};

/// Score-ordered companion of one keyword's JDeweyList.
struct TopKList {
  const JDeweyList* base = nullptr;     ///< Column data + scores live here.
  std::vector<ScoreSegment> segments;   ///< Ascending by length.

  /// Segment with exactly `length`, or nullptr.
  const ScoreSegment* FindSegment(uint16_t length) const;

  /// Upper bound of any damped score at `level`:
  /// max over segments with length >= level of max_score * d(length-level).
  double MaxDampedScoreAt(uint32_t level, const ScoringParams& params) const;

  /// True iff some sequence in the list ends exactly at `level` (the
  /// paper's column-skip test).
  bool HasLength(uint32_t level) const;
};

/// Keyword -> score-ordered segments. Borrows the JDeweyIndex it was built
/// from (must outlive this index).
class TopKIndex {
 public:
  TopKIndex() = default;
  TopKIndex(TopKIndex&&) = default;
  TopKIndex& operator=(TopKIndex&&) = default;
  TopKIndex(const TopKIndex&) = delete;
  TopKIndex& operator=(const TopKIndex&) = delete;

  const TopKList* GetList(const std::string& term) const;

  const JDeweyIndex* base() const { return base_; }

  /// Serialized size in bytes: the column data plus per-row scores plus the
  /// per-segment row permutations (Table I "Top-K Join IL").
  uint64_t EncodedListBytes() const;

 private:
  friend class IndexBuilder;
  friend TopKIndex BuildTopKIndexFrom(const JDeweyIndex& base);

  const JDeweyIndex* base_ = nullptr;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<TopKList> lists_;
};

/// Derives the score-ordered top-K index from a JDeweyIndex alone — the
/// segments are a permutation of the base rows, so no tree or builder
/// state is needed. This is how a persisted index (index_io / disk_index,
/// stored with scores) becomes top-K queryable after loading. `base` must
/// outlive the result.
TopKIndex BuildTopKIndexFrom(const JDeweyIndex& base);

/// Derives one list's score-ordered segments (the per-term unit of
/// BuildTopKIndexFrom). Lets a posting source build top-K companions for
/// just the queried terms. `list` must outlive the result.
TopKList BuildTopKListFor(const JDeweyList& list);

}  // namespace xtopk

#endif  // XTOPK_INDEX_TOPK_INDEX_H_
