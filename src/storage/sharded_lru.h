#ifndef XTOPK_STORAGE_SHARDED_LRU_H_
#define XTOPK_STORAGE_SHARDED_LRU_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/accounting.h"
#include "obs/metrics.h"

namespace xtopk {

/// A thread-safe LRU cache split into independent shards so concurrent
/// readers do not serialize on a single lock. Each shard owns its own
/// mutex, recency list and map; a key's shard is fixed by its hash, so
/// per-key operations are linearizable while cross-key operations only
/// contend when keys collide on a shard.
///
/// Capacity is expressed in abstract cost units (pages, bytes, ...) and is
/// divided evenly across shards; an entry whose cost exceeds its shard's
/// budget is simply not cached. A capacity of zero disables caching: Put is
/// a no-op and Get always misses, which callers use as the "cache off"
/// ablation mode.
///
/// Values are returned by copy, so V should be cheap to copy — in this
/// library both users store shared_ptr payloads.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `metric_prefix` wires the cache's hit/miss/eviction counts into the
  /// process-wide MetricsRegistry as `<prefix>.hits` / `.misses` /
  /// `.evictions` (aggregated across instances sharing a prefix). Null
  /// keeps the container registry-free (generic/test uses). The
  /// per-instance hits()/misses()/evictions() accessors read instance-local
  /// shims either way.
  ShardedLruCache(size_t capacity, size_t shards,
                  const char* metric_prefix = nullptr) {
    size_t count = shards == 0 ? 1 : shards;
    // Never hand a shard a zero budget while the cache as a whole has one.
    if (capacity > 0 && count > capacity) count = capacity;
    shard_capacity_ = capacity == 0 ? 0 : capacity / count;
    shards_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    if (metric_prefix != nullptr) {
      std::string prefix(metric_prefix);
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      hits_metric_ = &registry.GetCounter(prefix + ".hits");
      misses_metric_ = &registry.GetCounter(prefix + ".misses");
      evictions_metric_ = &registry.GetCounter(prefix + ".evictions");
    }
  }

  /// Looks up `key`, refreshing its recency. Counts a hit or a miss.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (misses_metric_ != nullptr) {
        misses_metric_->Add(1);
        // Only named caches (buffer pool, decoded cache) attribute to the
        // in-flight query; anonymous helper caches stay out of the bill.
        obs::AccountCacheMiss(1);
      }
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_metric_ != nullptr) {
      hits_metric_->Add(1);
      obs::AccountCacheHit(1);
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts or refreshes `key`, then evicts LRU entries until the shard is
  /// within budget. Concurrent Put calls for the same key are benign: the
  /// later one simply replaces the value.
  void Put(const Key& key, Value value, size_t cost = 1) {
    if (cost > shard_capacity_) return;  // also covers the disabled cache
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.cost_used -= it->second->cost;
      it->second->value = std::move(value);
      it->second->cost = cost;
      shard.cost_used += cost;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), cost});
      shard.map[key] = shard.lru.begin();
      shard.cost_used += cost;
    }
    uint64_t evicted = 0;
    while (shard.cost_used > shard_capacity_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.cost_used -= victim.cost;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      if (evictions_metric_ != nullptr) evictions_metric_->Add(evicted);
    }
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  size_t entry_count() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  size_t cost_used() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->cost_used;
    }
    return total;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t shard_capacity() const { return shard_capacity_; }

  /// Zeroes the per-instance shims. The registry counters are cumulative
  /// process-wide aggregates and are reset only via
  /// MetricsRegistry::ResetAll.
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->map.clear();
      shard->cost_used = 0;
    }
  }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t cost;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    size_t cost_used = 0;
  };

  Shard& ShardFor(const Key& key) {
    // Fibonacci mixing spreads consecutive keys (page ids, levels) across
    // shards even when Hash is the identity.
    uint64_t h = static_cast<uint64_t>(hasher_(key)) * 0x9e3779b97f4a7c15ull;
    return *shards_[(h >> 32) % shards_.size()];
  }

  Hash hasher_;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_SHARDED_LRU_H_
