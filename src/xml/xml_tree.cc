#include "xml/xml_tree.h"

#include <algorithm>
#include <cassert>

namespace xtopk {

uint32_t XmlTree::InternTag(std::string_view tag) {
  auto it = tag_ids_.find(std::string(tag));
  if (it != tag_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(tag_names_.size());
  tag_names_.emplace_back(tag);
  tag_ids_.emplace(std::string(tag), id);
  return id;
}

NodeId XmlTree::CreateRoot(std::string_view tag) {
  assert(nodes_.empty() && "root must be created first and only once");
  XmlNode root;
  root.tag_id = InternTag(tag);
  root.level = 1;
  nodes_.push_back(std::move(root));
  last_child_.push_back(kInvalidNode);
  max_level_ = 1;
  return 0;
}

NodeId XmlTree::AddChild(NodeId parent, std::string_view tag) {
  assert(parent < nodes_.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  XmlNode child;
  child.parent = parent;
  child.tag_id = InternTag(tag);
  child.level = nodes_[parent].level + 1;
  if (child.level > max_level_) max_level_ = child.level;
  nodes_.push_back(std::move(child));
  last_child_.push_back(kInvalidNode);

  if (nodes_[parent].first_child == kInvalidNode) {
    nodes_[parent].first_child = id;
  } else {
    nodes_[last_child_[parent]].next_sibling = id;
  }
  last_child_[parent] = id;
  return id;
}

void XmlTree::AppendText(NodeId node, std::string_view text) {
  assert(node < nodes_.size());
  std::string& dst = nodes_[node].text;
  if (!dst.empty() && !text.empty()) dst.push_back(' ');
  dst.append(text);
}

void XmlTree::AddAttribute(NodeId node, std::string_view name,
                           std::string_view value) {
  assert(node < nodes_.size());
  attrs_.push_back(XmlAttr{node, std::string(name), std::string(value)});
}

std::vector<const XmlAttr*> XmlTree::AttributesOf(NodeId id) const {
  std::vector<const XmlAttr*> out;
  for (const XmlAttr& a : attrs_) {
    if (a.node == id) out.push_back(&a);
  }
  return out;
}

std::vector<NodeId> XmlTree::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = nodes_[id].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

bool XmlTree::IsAncestor(NodeId anc, NodeId node, bool or_self) const {
  if (anc == node) return or_self;
  NodeId cur = nodes_[node].parent;
  while (cur != kInvalidNode) {
    if (cur == anc) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

std::vector<NodeId> XmlTree::PathTo(NodeId id) const {
  std::vector<NodeId> path;
  for (NodeId cur = id; cur != kInvalidNode; cur = nodes_[cur].parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string XmlTree::ToXmlString(NodeId id, int indent) const {
  std::string out(indent, ' ');
  out += '<';
  out += TagName(id);
  for (const XmlAttr* a : AttributesOf(id)) {
    out += ' ';
    out += a->name;
    out += "=\"";
    out += a->value;
    out += '"';
  }
  std::vector<NodeId> kids = Children(id);
  const std::string& body = text(id);
  if (kids.empty() && body.empty()) {
    out += "/>\n";
    return out;
  }
  out += '>';
  if (!body.empty()) out += body;
  if (!kids.empty()) {
    out += '\n';
    for (NodeId c : kids) out += ToXmlString(c, indent + 2);
    out.append(indent, ' ');
  }
  out += "</";
  out += TagName(id);
  out += ">\n";
  return out;
}

}  // namespace xtopk
