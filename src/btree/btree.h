#ifndef XTOPK_BTREE_BTREE_H_
#define XTOPK_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xtopk {

/// An in-memory B+-tree over byte-string keys with uint64 payloads.
///
/// This is the BerkeleyDB stand-in for the two baselines that depend on
/// keyed Dewey-id access (paper §II-C, §V-A):
///  * the index-based algorithm stores every (keyword, Dewey id) pair as a
///    key — the reason its Table I footprint is an order of magnitude above
///    the column-oriented lists;
///  * RDIL builds a B-tree per keyword over Dewey ids to probe the entry
///    with the longest common prefix of a candidate node.
///
/// Keys must be inserted unique; duplicates overwrite. Leaves are doubly
/// linked so probes can inspect both the successor and the predecessor of a
/// lookup key (longest-common-prefix probes need both neighbours).
class BTree {
 public:
  explicit BTree(size_t fanout = 128);
  ~BTree();

  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites `key`.
  void Insert(std::string_view key, uint64_t value);

  /// Value for `key`, or nullptr if absent. The pointer is invalidated by
  /// the next Insert.
  const uint64_t* Find(std::string_view key) const;

  /// Position in the leaf chain. Valid() is false past either end.
  class Iterator {
   public:
    Iterator() = default;
    bool Valid() const;
    std::string_view key() const;
    uint64_t value() const;
    void Next();
    void Prev();

   private:
    friend class BTree;
    const void* node_ = nullptr;  // leaf node
    size_t index_ = 0;
  };

  /// First entry with key >= `key` (invalid iterator if none).
  Iterator LowerBound(std::string_view key) const;
  /// First entry.
  Iterator Begin() const;
  /// Last entry (invalid iterator when empty).
  Iterator Last() const;

  size_t size() const { return size_; }
  size_t height() const { return height_; }

  /// Modeled on-disk footprint: per-node page header plus per-entry key
  /// bytes and fixed slot overheads. Used by the Table I bench; the model
  /// constants are documented in btree.cc.
  size_t EncodedSizeBytes() const;

  /// Checks structural invariants (sorted keys, uniform leaf depth, fanout
  /// bounds, separator consistency, leaf-chain order). Test support.
  Status Validate() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertInto(Node* node, std::string_view key, uint64_t value);

  std::unique_ptr<Node> root_;
  size_t fanout_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace xtopk

#endif  // XTOPK_BTREE_BTREE_H_
