#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "obs/metrics.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameResults(const std::vector<SearchResult>& a,
                       const std::vector<SearchResult>& b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << what << " result " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " result " << i;  // bit-equal
  }
}

/// Runs the same query sequence against a skip-enabled and a skip-disabled
/// environment and demands bit-identical results, including session reuse
/// (the second query widens partial columns the first one loaded).
void CheckSkipTransparent(const std::string& path,
                          const std::vector<std::vector<std::string>>& queries) {
  DiskIndexOptions skip_on;
  skip_on.enable_skip = true;
  DiskIndexOptions skip_off;
  skip_off.enable_skip = false;
  auto env_on = DiskIndexEnv::Open(path, skip_on);
  auto env_off = DiskIndexEnv::Open(path, skip_off);
  ASSERT_TRUE(env_on.ok());
  ASSERT_TRUE(env_off.ok());
  EXPECT_TRUE((*env_on)->skip_enabled());
  EXPECT_FALSE((*env_off)->skip_enabled());

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    auto session_on = (*env_on)->NewSession();
    auto session_off = (*env_off)->NewSession();
    JoinSearchOptions options;
    options.semantics = semantics;
    for (const auto& query : queries) {
      auto got_on = session_on->SearchComplete(query, options);
      auto got_off = session_off->SearchComplete(query, options);
      ASSERT_TRUE(got_on.ok()) << got_on.status().ToString();
      ASSERT_TRUE(got_off.ok()) << got_off.status().ToString();
      ExpectSameResults(*got_on, *got_off,
                        "semantics=" + std::to_string(static_cast<int>(
                            semantics)) + " q0=" + query[0]);
    }
  }
}

TEST(SkipCorrectnessTest, SkipOnOffBitIdenticalOnRandomCorpora) {
  for (uint64_t seed : {301u, 302u, 303u}) {
    XmlTree tree = MakeRandomTree(seed, 900, 4, 9,
                                  {"alpha", "beta", "gamma"}, 0.12);
    IndexBuildOptions build;
    build.index_tag_names = false;
    IndexBuilder builder(tree, build);
    JDeweyIndex jindex = builder.BuildJDeweyIndex();
    std::string path = TempPath("skip_random");
    ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());
    CheckSkipTransparent(path, {{"alpha", "beta"},
                                {"beta", "gamma"},
                                {"alpha", "beta", "gamma"},
                                {"alpha", "beta"}});
    std::remove(path.c_str());
  }
}

TEST(SkipCorrectnessTest, PartialLoadsHappenAndStayCorrect) {
  // "rare" lives in a narrow band of an otherwise wide tree, so the seed
  // list's value range prunes most blocks of "common"'s deep columns.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  for (int branch = 0; branch < 1200; ++branch) {
    NodeId mid = tree.AddChild(root, "m");
    NodeId leaf = tree.AddChild(mid, "l");
    tree.AppendText(leaf, "common");
    if (branch >= 600 && branch < 608) tree.AppendText(leaf, "rare");
  }
  IndexBuildOptions build;
  build.index_tag_names = false;
  IndexBuilder builder(tree, build);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("skip_partial");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  auto& registry = obs::MetricsRegistry::Global();
  uint64_t partial_before =
      registry.GetCounter("storage.skip.partial_loads").value();
  uint64_t skipped_before =
      registry.GetCounter("storage.skip.blocks_skipped").value();

  CheckSkipTransparent(path, {{"rare", "common"}});

  EXPECT_GT(registry.GetCounter("storage.skip.partial_loads").value(),
            partial_before);
  EXPECT_GT(registry.GetCounter("storage.skip.blocks_skipped").value(),
            skipped_before);
  std::remove(path.c_str());
}

TEST(SkipCorrectnessTest, LegacyDeltaSegmentsStillReadable) {
  // Segments written before the group-varint codec (all columns kDelta)
  // must decode unchanged — the codec byte is self-describing, and the
  // skip path falls back to full decodes for non-GVB columns.
  XmlTree tree = MakeRandomTree(304, 700, 4, 8, {"alpha", "beta"}, 0.15);
  IndexBuildOptions build;
  build.index_tag_names = false;
  IndexBuilder builder(tree, build);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("skip_legacy");
  ASSERT_TRUE(
      DiskIndexWriter::Write(jindex, true, path, ColumnCodec::kDelta).ok());

  JoinSearch memory_search(jindex, {});
  auto want = memory_search.Search({"alpha", "beta"});
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  auto got = (*disk)->SearchComplete({"alpha", "beta"});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i].node, want[i].node);
    EXPECT_EQ((*got)[i].score, want[i].score);
  }
  CheckSkipTransparent(path, {{"alpha", "beta"}});
  std::remove(path.c_str());
}

TEST(SkipCorrectnessTest, DisableSkipEnvOverridesOptions) {
  XmlTree tree = MakeRandomTree(305, 200, 4, 6, {"alpha"}, 0.2);
  IndexBuildOptions build;
  build.index_tag_names = false;
  IndexBuilder builder(tree, build);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("skip_env");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  ASSERT_EQ(setenv("XTOPK_DISABLE_SKIP", "1", 1), 0);
  auto disabled = DiskIndexEnv::Open(path, {});
  ASSERT_EQ(setenv("XTOPK_DISABLE_SKIP", "0", 1), 0);
  auto zero_means_on = DiskIndexEnv::Open(path, {});
  ASSERT_EQ(unsetenv("XTOPK_DISABLE_SKIP"), 0);
  auto unset = DiskIndexEnv::Open(path, {});

  ASSERT_TRUE(disabled.ok());
  ASSERT_TRUE(zero_means_on.ok());
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE((*disabled)->skip_enabled());
  EXPECT_TRUE((*zero_means_on)->skip_enabled());
  EXPECT_TRUE((*unset)->skip_enabled());
  std::remove(path.c_str());
}

TEST(SkipCorrectnessTest, TopKAfterPartialLoadUpgradesToFull) {
  // SearchComplete partially loads columns; SearchTopK on the same session
  // needs them whole. The coverage state must upgrade, not reuse partials.
  XmlTree tree = MakeRandomTree(306, 800, 4, 8, {"alpha", "beta"}, 0.15);
  IndexBuildOptions build;
  build.index_tag_names = false;
  IndexBuilder builder(tree, build);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex memory_topk = builder.BuildTopKIndex(jindex);
  std::string path = TempPath("skip_then_topk");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  DiskIndexOptions skip_on;
  skip_on.enable_skip = true;
  auto env = DiskIndexEnv::Open(path, skip_on);
  ASSERT_TRUE(env.ok());
  auto session = (*env)->NewSession();
  ASSERT_TRUE(session->SearchComplete({"alpha", "beta"}).ok());

  TopKSearchOptions topk_options;
  topk_options.k = 5;
  TopKSearch memory_search(memory_topk, topk_options);
  auto want = memory_search.Search({"alpha", "beta"});
  auto got = session->SearchTopK({"alpha", "beta"}, topk_options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i].node, want[i].node);
    EXPECT_NEAR((*got)[i].score, want[i].score, 1e-12);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtopk
