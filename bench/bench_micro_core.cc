// Micro-benchmarks of the substrate operations every query touches: the
// two join operators, JDewey LCA, B+-tree probes, interval-set pruning,
// and the score-segment heap. Not a paper figure — regression guardrails
// for the operators the figure benches are built from.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "btree/btree.h"
#include "core/engine.h"
#include "core/join_ops.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "obs/slow_log.h"
#include "util/interval_set.h"
#include "util/rng.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace {

xtopk::Column MakeColumn(uint64_t seed, uint32_t values, double keep) {
  xtopk::Rng rng(seed);
  xtopk::Column col;
  uint32_t row = 0;
  for (uint32_t v = 1; v <= values; ++v) {
    if (rng.NextBernoulli(keep)) col.Append(row++, v);
  }
  return col;
}

void BM_MergeJoin(benchmark::State& state) {
  xtopk::Column a = MakeColumn(1, 100000, 0.5);
  xtopk::Column b = MakeColumn(2, 100000, 0.5);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::MergeIntersect(xtopk::SeedMatches(a), b, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.run_count() + b.run_count()));
}
BENCHMARK(BM_MergeJoin);

void BM_MergeJoinSkewed(benchmark::State& state) {
  // 1:50 size skew — the regime the planner hands to galloping.
  xtopk::Column small = MakeColumn(8, 100000, 0.02);  // ~2k runs
  xtopk::Column big = MakeColumn(9, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::MergeIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (small.run_count() + big.run_count()));
}
BENCHMARK(BM_MergeJoinSkewed);

void BM_GallopJoinSkewed(benchmark::State& state) {
  xtopk::Column small = MakeColumn(8, 100000, 0.02);
  xtopk::Column big = MakeColumn(9, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::GallopIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (small.run_count() + big.run_count()));
}
BENCHMARK(BM_GallopJoinSkewed);

void BM_GallopJoinBalanced(benchmark::State& state) {
  // Balanced inputs — the regime where galloping should roughly tie merge,
  // guarding the planner's gallop_ratio cutoff from below.
  xtopk::Column a = MakeColumn(1, 100000, 0.5);
  xtopk::Column b = MakeColumn(2, 100000, 0.5);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::GallopIntersect(xtopk::SeedMatches(a), b, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.run_count() + b.run_count()));
}
BENCHMARK(BM_GallopJoinBalanced);

void BM_IndexJoinSmallProbe(benchmark::State& state) {
  xtopk::Column small = MakeColumn(3, 100000, 0.002);  // ~200 runs
  xtopk::Column big = MakeColumn(4, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::IndexIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * small.run_count());
}
BENCHMARK(BM_IndexJoinSmallProbe);

void BM_JDeweyLca(benchmark::State& state) {
  xtopk::Rng rng(5);
  std::vector<xtopk::JDeweySeq> seqs;
  for (int i = 0; i < 1024; ++i) {
    xtopk::JDeweySeq seq = {1};
    uint32_t len = 2 + static_cast<uint32_t>(rng.NextBounded(10));
    for (uint32_t l = 1; l < len; ++l) {
      seq.push_back(seq.back() * 3 + static_cast<uint32_t>(
                                         rng.NextBounded(3)));
    }
    seqs.push_back(std::move(seq));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto lca = xtopk::JDeweyLca(seqs[i & 1023], seqs[(i * 7 + 3) & 1023]);
    benchmark::DoNotOptimize(lca);
    ++i;
  }
}
BENCHMARK(BM_JDeweyLca);

void BM_BTreeLowerBound(benchmark::State& state) {
  xtopk::BTree tree(128);
  xtopk::Rng rng(6);
  for (int i = 0; i < 100000; ++i) {
    char key[8];
    uint64_t v = rng.NextU64();
    std::memcpy(key, &v, 8);
    tree.Insert(std::string_view(key, 8), i);
  }
  for (auto _ : state) {
    char key[8];
    uint64_t v = rng.NextU64();
    std::memcpy(key, &v, 8);
    auto it = tree.LowerBound(std::string_view(key, 8));
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_BTreeLowerBound);

void BM_IntervalSetPruning(benchmark::State& state) {
  // The range-checking access pattern: nested adds + overlap counts.
  xtopk::Rng rng(7);
  for (auto _ : state) {
    xtopk::IntervalSet set;
    for (int i = 0; i < 1000; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(1u << 20));
      uint32_t b = a + 1 + static_cast<uint32_t>(rng.NextBounded(512));
      if (rng.NextBernoulli(0.5)) {
        set.Add(a, b);
      } else {
        benchmark::DoNotOptimize(set.CountOverlap(a, b));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetPruning);

/// One disk segment per container format, shared by the full-decode pair
/// below. The tree is big enough that the segment spans many pages, so
/// the per-page CRC actually runs (it fires once per physical read).
struct DiskBenchFixture {
  std::vector<std::string> terms = {"alpha", "beta", "gamma", "delta"};
  std::string v2_path;
  std::string v1_path;

  DiskBenchFixture() {
    xtopk::Rng rng(11);
    xtopk::XmlTree tree;
    tree.CreateRoot("r");
    std::vector<xtopk::NodeId> frontier = {tree.root()};
    while (tree.node_count() < 20000 && !frontier.empty()) {
      size_t pick = rng.NextBounded(frontier.size());
      xtopk::NodeId parent = frontier[pick];
      if (tree.level(parent) >= 12) {
        frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
        continue;
      }
      xtopk::NodeId child = tree.AddChild(parent, "n");
      frontier.push_back(child);
      for (const std::string& term : terms) {
        if (rng.NextBernoulli(0.2)) tree.AppendText(child, term);
      }
      if (rng.NextBernoulli(0.2) || tree.Children(parent).size() >= 6) {
        frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
      }
    }
    xtopk::IndexBuildOptions build_options;
    build_options.index_tag_names = false;
    xtopk::IndexBuilder builder(tree, build_options);
    xtopk::JDeweyIndex jindex = builder.BuildJDeweyIndex();
    std::string base =
        "/tmp/bench_micro_core_" + std::to_string(::getpid());
    v2_path = base + "_v2.seg";
    v1_path = base + "_v1.seg";
    xtopk::DiskIndexWriter::Write(jindex, /*include_scores=*/true, v2_path,
                                  xtopk::ColumnCodec::kAuto,
                                  /*write_checksums=*/true);
    xtopk::DiskIndexWriter::Write(jindex, /*include_scores=*/true, v1_path,
                                  xtopk::ColumnCodec::kAuto,
                                  /*write_checksums=*/false);
  }
  ~DiskBenchFixture() {
    std::remove(v2_path.c_str());
    std::remove(v1_path.c_str());
  }
};

const DiskBenchFixture& DiskFixture() {
  static DiskBenchFixture fixture;
  return fixture;
}

/// Full decode of every term's list from a cold environment — the worst
/// case for checksum overhead, since every page read is physical and gets
/// verified. The checksummed/legacy pair pins the acceptance budget:
/// v2 must stay within 3% of v1.
void DiskFullDecode(benchmark::State& state, const std::string& path) {
  const DiskBenchFixture& fixture = DiskFixture();
  uint64_t rows = 0;
  for (auto _ : state) {
    xtopk::DiskIndexOptions options;
    options.decoded_cache_bytes = 0;  // force a real decode every time
    auto env = xtopk::DiskIndexEnv::Open(path, options);
    auto session = (*env)->NewSession();
    for (const std::string& term : fixture.terms) {
      auto list = session->LoadList(term, session->MaxLength(term));
      benchmark::DoNotOptimize(list);
      if (list.ok() && *list != nullptr) rows += (*list)->num_rows();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}

void BM_DiskFullDecodeChecksummed(benchmark::State& state) {
  DiskFullDecode(state, DiskFixture().v2_path);
}
BENCHMARK(BM_DiskFullDecodeChecksummed);

void BM_DiskFullDecodeLegacy(benchmark::State& state) {
  DiskFullDecode(state, DiskFixture().v1_path);
}
BENCHMARK(BM_DiskFullDecodeLegacy);

/// In-memory engine + query batch for the telemetry overhead pair. The
/// queries pair a rare term with common ones: join work stays large (long
/// common lists) while result sets stay small — the realistic slow-query
/// shape, and the regime where capture cost is pure per-query overhead
/// rather than being smuggled into per-hit fingerprinting.
struct TelemetryBenchFixture {
  xtopk::XmlTree tree;
  std::unique_ptr<xtopk::Engine> engine;
  std::vector<xtopk::BatchQuery> batch;

  TelemetryBenchFixture() {
    const std::vector<std::string> common = {"alpha", "beta", "gamma",
                                             "delta"};
    xtopk::Rng rng(13);
    tree.CreateRoot("r");
    std::vector<xtopk::NodeId> frontier = {tree.root()};
    while (tree.node_count() < 20000 && !frontier.empty()) {
      size_t pick = rng.NextBounded(frontier.size());
      xtopk::NodeId parent = frontier[pick];
      if (tree.level(parent) >= 12) {
        frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
        continue;
      }
      xtopk::NodeId child = tree.AddChild(parent, "n");
      frontier.push_back(child);
      for (const std::string& term : common) {
        if (rng.NextBernoulli(0.2)) tree.AppendText(child, term);
      }
      for (int i = 0; i < 4; ++i) {
        if (rng.NextBernoulli(0.002)) {
          tree.AppendText(child, "rare" + std::to_string(i));
        }
      }
      if (rng.NextBernoulli(0.2) || tree.Children(parent).size() >= 6) {
        frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
      }
    }
    engine = std::make_unique<xtopk::Engine>(tree);
    auto add = [this](std::vector<std::string> keywords, size_t k) {
      xtopk::BatchQuery query;
      query.keywords = std::move(keywords);
      query.k = k;
      batch.push_back(std::move(query));
    };
    add({"rare0", "alpha"}, 0);
    add({"rare1", "beta"}, 10);
    add({"rare2", "gamma", "delta"}, 5);
    add({"rare3", "delta"}, 0);
  }
};

const TelemetryBenchFixture& TelemetryFixture() {
  static TelemetryBenchFixture fixture;
  return fixture;
}

/// Telemetry overhead pair. Idle = telemetry compiled in but quiescent
/// (accounting hooks + windowed records run, slow log at its default
/// 100ms threshold never fires). Armed = slow-query capture-all into the
/// in-memory ring, so every query additionally pays fingerprinting, JSON
/// serialization, and the ring push. CI perf-smoke gates armed/idle at
/// the PR 2 noise budget (<= 2%).
void EngineBatchTelemetry(benchmark::State& state, bool armed) {
  const TelemetryBenchFixture& fixture = TelemetryFixture();
  auto& slow_log = xtopk::obs::SlowQueryLog::Global();
  if (armed) {
    xtopk::obs::SlowLogOptions options;  // no path: memory ring only
    options.latency_threshold_us = 0;    // capture every query
    options.memory_entries = 64;
    slow_log.Reconfigure(options);
  }
  uint64_t hits = 0;
  for (auto _ : state) {
    auto results = fixture.engine->RunBatch(fixture.batch, 1);
    for (const auto& result : results) hits += result.hits.size();
  }
  benchmark::DoNotOptimize(hits);
  if (armed) slow_log.Reconfigure(xtopk::obs::SlowLogOptions::FromEnv());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.batch.size()));
}

void BM_EngineBatchTelemetryIdle(benchmark::State& state) {
  EngineBatchTelemetry(state, /*armed=*/false);
}
BENCHMARK(BM_EngineBatchTelemetryIdle);

void BM_EngineBatchTelemetryArmed(benchmark::State& state) {
  EngineBatchTelemetry(state, /*armed=*/true);
}
BENCHMARK(BM_EngineBatchTelemetryArmed);

}  // namespace

BENCHMARK_MAIN();
