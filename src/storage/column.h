#ifndef XTOPK_STORAGE_COLUMN_H_
#define XTOPK_STORAGE_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xtopk {

/// A maximal row range of one column holding a single JDewey number: the
/// paper's second compression scheme stores duplicate numbers as triples
/// (v, r, c) — value, first row, repeat count (§III-D). Because an inverted
/// list sorted by JDewey sequence groups all occurrences under one node into
/// consecutive rows, runs are exact subtree extents, which is what both the
/// join pruning (§III-E) and the set-semantics joins operate on.
struct Run {
  uint32_t value = 0;      ///< JDewey number at this column's level.
  uint32_t first_row = 0;  ///< First row (occurrence index) of the run.
  uint32_t count = 0;      ///< Number of consecutive rows with this value.

  uint32_t end_row() const { return first_row + count; }
  bool operator==(const Run& other) const {
    return value == other.value && first_row == other.first_row &&
           count == other.count;
  }
};

/// One level ("column") of a column-oriented inverted list. Values are
/// non-decreasing in row order (Property 3.1), stored run-length encoded.
/// Rows whose JDewey sequences are shorter than this column's level are
/// simply absent, so consecutive runs may leave row gaps.
class Column {
 public:
  Column() = default;

  /// Appends one (row, value) pair during the build. Rows must arrive in
  /// increasing order and values must be non-decreasing (checked in debug).
  void Append(uint32_t row, uint32_t value);

  /// Appends a whole run of `count` consecutive rows sharing `value`,
  /// merging with the previous run when contiguous. Decoders use this so a
  /// run the encoding already represents as one triple costs O(1), not
  /// O(count) Append calls.
  void AppendRun(uint32_t row, uint32_t value, uint32_t count);

  /// AppendRun for untrusted (decoded-from-disk) data: instead of
  /// asserting the column invariants — rows increasing, values
  /// non-decreasing, equal values contiguous, end row not overflowing —
  /// it returns false when the run would violate them, leaving the
  /// column unchanged. Decoders turn a false return into a typed
  /// Corruption status; the build-side Append/AppendRun keep their
  /// debug asserts and zero release-mode cost.
  bool AppendRunChecked(uint32_t row, uint32_t value, uint32_t count);

  /// Pre-sizes the run vector for `n` more runs. Decoders that know an
  /// upper bound (run count from the header, rows in a block range) call
  /// this once so distinct-heavy columns don't pay repeated regrowth.
  void ReserveRuns(size_t n) { runs_.reserve(runs_.size() + n); }

  const std::vector<Run>& runs() const { return runs_; }
  size_t run_count() const { return runs_.size(); }
  bool empty() const { return runs_.empty(); }

  /// Total rows present in this column (sum of run counts).
  uint32_t row_count() const { return row_count_; }

  /// Number of distinct values (== run count, runs are maximal).
  size_t distinct_values() const { return runs_.size(); }

  /// Binary-searches for the run holding `value`; nullptr if absent.
  /// This is the probe used by the index join (§III-C): columns are sorted,
  /// so "conceptually no additional indices are required".
  const Run* FindValue(uint32_t value) const;

  /// Index of the first run with run.value >= value (run_count() if none).
  size_t LowerBoundValue(uint32_t value) const;

  /// Binary-searches for the run containing `row`; nullptr if the row is
  /// absent from this column (sequence too short).
  const Run* FindRow(uint32_t row) const;

 private:
  std::vector<Run> runs_;
  uint32_t row_count_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_COLUMN_H_
