#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"

namespace xtopk {
namespace obs {
namespace {

std::string MakeResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string ExpositionServer::HandleRequest(std::string_view request_line) {
  // "GET <path> HTTP/1.x" — anything else is a 400.
  if (request_line.substr(0, 4) != "GET ") {
    XTOPK_COUNTER("obs.http.bad_requests").Add(1);
    return MakeResponse("400 Bad Request", "text/plain", "bad request\n");
  }
  XTOPK_COUNTER("obs.http.requests").Add(1);
  std::string_view rest = request_line.substr(4);
  size_t space = rest.find(' ');
  std::string_view path =
      space == std::string_view::npos ? rest : rest.substr(0, space);
  // Ignore any query string: the endpoints take no parameters.
  size_t question = path.find('?');
  if (question != std::string_view::npos) path = path.substr(0, question);

  if (path == "/metrics") {
    return MakeResponse("200 OK", "text/plain; version=0.0.4",
                        MetricsRegistry::Global().Snapshot().ToPrometheusText());
  }
  if (path == "/vars") {
    return MakeResponse("200 OK", "application/json",
                        MetricsRegistry::Global().Snapshot().ToJson());
  }
  if (path == "/slowlog") {
    return MakeResponse("200 OK", "application/json",
                        SlowQueryLog::Global().ToJson());
  }
  if (path == "/events") {
    return MakeResponse("200 OK", "application/json",
                        EventLog::Global().ToJson());
  }
  if (path == "/healthz") {
    return MakeResponse("200 OK", "text/plain", "ok\n");
  }
  return MakeResponse("404 Not Found", "text/plain", "not found\n");
}

bool ExpositionServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) *error = "bad bind address";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = "bind/listen failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  LogEvent("exposition", "listening on port " + std::to_string(port_));
  return true;
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ExpositionServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    // Poll with a timeout so Stop() is noticed promptly even with no
    // traffic.
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    char buffer[1024];
    ssize_t n = ::recv(client, buffer, sizeof(buffer) - 1, 0);
    if (n > 0) {
      buffer[n] = '\0';
      std::string_view request(buffer, static_cast<size_t>(n));
      size_t eol = request.find("\r\n");
      if (eol == std::string_view::npos) eol = request.find('\n');
      std::string response = HandleRequest(
          eol == std::string_view::npos ? request : request.substr(0, eol));
      size_t sent = 0;
      while (sent < response.size()) {
        ssize_t w = ::send(client, response.data() + sent,
                           response.size() - sent, 0);
        if (w <= 0) break;
        sent += static_cast<size_t>(w);
      }
    }
    ::close(client);
  }
}

}  // namespace obs
}  // namespace xtopk
