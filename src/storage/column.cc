#include "storage/column.h"

#include <algorithm>
#include <cassert>

namespace xtopk {

void Column::Append(uint32_t row, uint32_t value) {
  ++row_count_;
  if (!runs_.empty()) {
    Run& last = runs_.back();
    assert(row >= last.end_row() && "rows must arrive in increasing order");
    assert(value >= last.value && "values must be non-decreasing (Prop 3.1)");
    if (last.value == value && row == last.end_row()) {
      ++last.count;
      return;
    }
    // A new run of an existing value after a row gap cannot happen: equal
    // values occupy consecutive rows (same subtree). Guard in debug builds.
    assert(value > last.value && "split run: equal values must be contiguous");
  }
  runs_.push_back(Run{value, row, 1});
}

void Column::AppendRun(uint32_t row, uint32_t value, uint32_t count) {
  if (count == 0) return;
  row_count_ += count;
  if (!runs_.empty()) {
    Run& last = runs_.back();
    assert(row >= last.end_row() && "rows must arrive in increasing order");
    assert(value >= last.value && "values must be non-decreasing (Prop 3.1)");
    if (last.value == value && row == last.end_row()) {
      last.count += count;
      return;
    }
    assert(value > last.value && "split run: equal values must be contiguous");
  }
  runs_.push_back(Run{value, row, count});
}

bool Column::AppendRunChecked(uint32_t row, uint32_t value, uint32_t count) {
  if (count == 0) return false;
  if (row > UINT32_MAX - count) return false;  // end_row would overflow
  if (!runs_.empty()) {
    const Run& last = runs_.back();
    if (row < last.end_row() || value < last.value) return false;
    if (value == last.value && row != last.end_row()) return false;
  }
  AppendRun(row, value, count);
  return true;
}

const Run* Column::FindValue(uint32_t value) const {
  size_t idx = LowerBoundValue(value);
  if (idx < runs_.size() && runs_[idx].value == value) return &runs_[idx];
  return nullptr;
}

size_t Column::LowerBoundValue(uint32_t value) const {
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), value,
      [](const Run& run, uint32_t v) { return run.value < v; });
  return static_cast<size_t>(it - runs_.begin());
}

const Run* Column::FindRow(uint32_t row) const {
  auto it = std::upper_bound(
      runs_.begin(), runs_.end(), row,
      [](uint32_t r, const Run& run) { return r < run.first_row; });
  if (it == runs_.begin()) return nullptr;
  --it;
  if (row >= it->first_row && row < it->end_row()) return &*it;
  return nullptr;
}

}  // namespace xtopk
