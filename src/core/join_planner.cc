#include "core/join_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

namespace xtopk {

bool UseIndexJoin(size_t left_size, size_t right_size,
                  const PlannerOptions& options) {
  switch (options.policy) {
    case JoinPolicy::kForceMerge:
      return false;
    case JoinPolicy::kForceIndex:
      return true;
    case JoinPolicy::kDynamic:
      return static_cast<double>(left_size) * options.index_join_ratio <
             static_cast<double>(right_size);
  }
  return false;
}

JoinAlgo ChooseJoinAlgo(size_t left_size, size_t right_size,
                        const PlannerOptions& options) {
  switch (options.policy) {
    case JoinPolicy::kForceMerge:
      return JoinAlgo::kMerge;
    case JoinPolicy::kForceIndex:
      return JoinAlgo::kIndex;
    case JoinPolicy::kDynamic:
      break;
  }
  if (UseIndexJoin(left_size, right_size, options)) return JoinAlgo::kIndex;
  size_t lo = std::min(left_size, right_size);
  size_t hi = std::max(left_size, right_size);
  if (lo > 0 && static_cast<double>(hi) >=
                    options.gallop_ratio * static_cast<double>(lo)) {
    return JoinAlgo::kGallop;
  }
  return JoinAlgo::kMerge;
}

std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes) {
  std::vector<size_t> order(list_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return list_sizes[a] < list_sizes[b];
  });
  return order;
}

std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes,
                                  const std::vector<std::string>& terms) {
  std::vector<size_t> order(list_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (list_sizes[a] != list_sizes[b]) return list_sizes[a] < list_sizes[b];
    return terms[a] < terms[b];
  });
  return order;
}

uint64_t PlanFingerprint(const std::vector<std::string>& terms) {
  std::vector<std::string> sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  // FNV-1a, with a NUL mixed in after every term so term boundaries hash.
  uint64_t h = 14695981039346656037ull;
  for (const std::string& term : sorted) {
    for (char c : term) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

bool PlannerDisabledByEnv() {
  const char* env = std::getenv("XTOPK_DISABLE_PLANNER");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::vector<size_t> MapPlanOrder(const JoinPlan& plan,
                                 const std::vector<std::string>& keywords,
                                 uint32_t start_level) {
  size_t k = keywords.size();
  if (plan.steps.size() != k || plan.start_level != start_level) return {};
  std::vector<size_t> order;
  order.reserve(k);
  std::vector<char> consumed(k, 0);
  for (const JoinPlanStep& step : plan.steps) {
    size_t pos = k;
    for (size_t i = 0; i < k; ++i) {
      if (!consumed[i] && keywords[i] == step.term) {
        pos = i;
        break;
      }
    }
    if (pos == k) return {};
    consumed[pos] = 1;
    order.push_back(pos);
  }
  return order;
}

namespace {

/// Estimated distinct-value count of one keyword's column at `level`
/// (1-based): histogram total when available, the list length otherwise
/// (a safe upper bound — runs never outnumber rows).
double CountAt(const TermPlanInput& input, uint32_t level) {
  if (input.stats != nullptr && level <= input.stats->levels.size() &&
      !input.stats->levels[level - 1].empty()) {
    return input.stats->levels[level - 1].total();
  }
  return static_cast<double>(input.rows);
}

const LevelHistogram* HistAt(const TermPlanInput& input, uint32_t level) {
  if (input.stats == nullptr || level > input.stats->levels.size()) {
    return nullptr;
  }
  const LevelHistogram& h = input.stats->levels[level - 1];
  return h.empty() ? nullptr : &h;
}

size_t Rounded(double v) {
  if (v <= 0.0) return 0;
  return static_cast<size_t>(std::llround(v));
}

/// Estimated cost of one intersection step with `m` surviving matches on
/// the left and an `r`-run column on the right, under `algo`. The units
/// are cursor steps / probes — the same quantities JoinOpStats counts.
double StepCost(double m, double r, JoinAlgo algo) {
  double lo = std::min(m, r);
  double hi = std::max(m, r);
  switch (algo) {
    case JoinAlgo::kMerge:
      return m + r;
    case JoinAlgo::kGallop:
      return lo * (std::log2(hi / std::max(lo, 1.0) + 2.0) + 1.0) + 1.0;
    case JoinAlgo::kIndex:
      return m * (std::log2(r + 2.0) + 1.0) + 1.0;
  }
  return m + r;
}

struct StepPick {
  JoinAlgo algo = JoinAlgo::kMerge;
  double cost = 0.0;
};

/// Picks the step algorithm from the ESTIMATED sizes with the same
/// thresholds the observed-size heuristic uses, then prices it.
StepPick PickStep(double m, double r, const PlannerOptions& options) {
  StepPick pick;
  pick.algo = ChooseJoinAlgo(Rounded(m), Rounded(r), options);
  pick.cost = StepCost(m, r, pick.algo);
  return pick;
}

/// All O(k^2) pairwise overlap estimates at every level; symmetric.
/// Without histograms on both sides the overlap defaults to min(counts) —
/// selectivity 1, which reproduces the size-ordering heuristic.
struct PairwiseOverlap {
  size_t k = 0;
  uint32_t levels = 0;
  std::vector<double> ov;  // [(a * k + b) * levels + (l - 1)]

  double At(size_t a, size_t b, uint32_t level) const {
    return ov[(a * k + b) * levels + (level - 1)];
  }
};

PairwiseOverlap ComputeOverlaps(const std::vector<TermPlanInput>& inputs,
                                uint32_t start_level) {
  PairwiseOverlap pw;
  pw.k = inputs.size();
  pw.levels = start_level;
  pw.ov.assign(pw.k * pw.k * start_level, 0.0);
  for (size_t a = 0; a < pw.k; ++a) {
    for (size_t b = a + 1; b < pw.k; ++b) {
      for (uint32_t l = 1; l <= start_level; ++l) {
        const LevelHistogram* ha = HistAt(inputs[a], l);
        const LevelHistogram* hb = HistAt(inputs[b], l);
        double estimate;
        if (ha != nullptr && hb != nullptr) {
          estimate = ha->EstimateOverlap(*hb);
        } else {
          estimate = std::min(CountAt(inputs[a], l), CountAt(inputs[b], l));
        }
        size_t idx_ab = (a * pw.k + b) * start_level + (l - 1);
        size_t idx_ba = (b * pw.k + a) * start_level + (l - 1);
        pw.ov[idx_ab] = estimate;
        pw.ov[idx_ba] = estimate;
      }
    }
  }
  return pw;
}

/// Order-independent cardinality estimate of intersecting a keyword set at
/// one level: anchor on the smallest column and attenuate it by each other
/// term's overlap selectivity against the anchor (clamped to [0, 1]).
double SubsetEstimate(const std::vector<TermPlanInput>& inputs,
                      const PairwiseOverlap& pw,
                      const std::vector<size_t>& members, uint32_t level) {
  size_t anchor = members[0];
  double anchor_count = CountAt(inputs[anchor], level);
  for (size_t m : members) {
    double c = CountAt(inputs[m], level);
    if (c < anchor_count) {
      anchor_count = c;
      anchor = m;
    }
  }
  if (anchor_count <= 0.0) return 0.0;
  double estimate = anchor_count;
  for (size_t m : members) {
    if (m == anchor) continue;
    double sel = pw.At(anchor, m, level) / anchor_count;
    estimate *= std::clamp(sel, 0.0, 1.0);
  }
  return estimate;
}

std::vector<size_t> MaskMembers(uint32_t mask) {
  std::vector<size_t> members;
  for (size_t i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1u) members.push_back(i);
  }
  return members;
}

/// Cost of seeding the match list from keyword `i` (SeedMatches copies
/// every run at every level).
double SeedCost(const std::vector<TermPlanInput>& inputs, size_t i,
                uint32_t start_level) {
  double cost = 0.0;
  for (uint32_t l = 1; l <= start_level; ++l) cost += CountAt(inputs[i], l);
  return cost;
}

/// Marginal cost of folding keyword `t` into a prefix whose per-level
/// estimates are `prefix_est`.
double TransitionCost(const std::vector<TermPlanInput>& inputs,
                      const std::vector<double>& prefix_est, size_t t,
                      uint32_t start_level, const PlannerOptions& options) {
  double cost = 0.0;
  for (uint32_t l = 1; l <= start_level; ++l) {
    cost += PickStep(prefix_est[l - 1], CountAt(inputs[t], l), options).cost;
  }
  return cost;
}

/// Exhaustive left-deep search: Selinger-style DP over keyword subsets.
/// best[S] is the cheapest way to have intersected exactly the keywords in
/// S; the per-level estimate of S is order-independent (SubsetEstimate),
/// so the DP is admissible. Deterministic: masks ascend and candidates are
/// tried in canonical (rows, term) order, so ties resolve identically
/// everywhere and degrade to shortest-first when costs are flat.
std::vector<size_t> DpOrder(const std::vector<TermPlanInput>& inputs,
                            const PairwiseOverlap& pw, uint32_t start_level,
                            const PlannerOptions& options, double* cost_out) {
  size_t k = inputs.size();
  uint32_t full = (1u << k) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(full + 1, kInf);
  std::vector<int> last(full + 1, -1);
  std::vector<std::vector<double>> est(full + 1);

  for (size_t i = 0; i < k; ++i) {
    uint32_t mask = 1u << i;
    best[mask] = SeedCost(inputs, i, start_level);
    last[mask] = static_cast<int>(i);
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (best[mask] == kInf) continue;
    if (est[mask].empty()) {
      std::vector<size_t> members = MaskMembers(mask);
      est[mask].resize(start_level);
      for (uint32_t l = 1; l <= start_level; ++l) {
        est[mask][l - 1] = SubsetEstimate(inputs, pw, members, l);
      }
    }
    for (size_t t = 0; t < k; ++t) {
      uint32_t bit = 1u << t;
      if (mask & bit) continue;
      double cost = best[mask] +
                    TransitionCost(inputs, est[mask], t, start_level, options);
      if (cost < best[mask | bit]) {
        best[mask | bit] = cost;
        last[mask | bit] = static_cast<int>(t);
      }
    }
  }

  std::vector<size_t> order;
  order.reserve(k);
  for (uint32_t mask = full; mask != 0;) {
    size_t t = static_cast<size_t>(last[mask]);
    order.push_back(t);
    mask &= ~(1u << t);
  }
  std::reverse(order.begin(), order.end());
  *cost_out = best[full];
  return order;
}

/// Greedy nearest-addition fallback for wide queries: cheapest seed first,
/// then repeatedly the keyword whose fold-in is cheapest against the
/// current prefix estimate.
std::vector<size_t> GreedyOrder(const std::vector<TermPlanInput>& inputs,
                                const PairwiseOverlap& pw,
                                uint32_t start_level,
                                const PlannerOptions& options,
                                double* cost_out) {
  size_t k = inputs.size();
  std::vector<char> used(k, 0);
  std::vector<size_t> order;
  order.reserve(k);

  size_t seed = 0;
  double seed_cost = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < k; ++i) {
    double c = SeedCost(inputs, i, start_level);
    if (c < seed_cost) {
      seed_cost = c;
      seed = i;
    }
  }
  order.push_back(seed);
  used[seed] = 1;
  double total = seed_cost;

  std::vector<double> prefix_est(start_level);
  for (uint32_t l = 1; l <= start_level; ++l) {
    prefix_est[l - 1] = CountAt(inputs[seed], l);
  }
  while (order.size() < k) {
    size_t pick = k;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < k; ++t) {
      if (used[t]) continue;
      double c = TransitionCost(inputs, prefix_est, t, start_level, options);
      if (c < pick_cost) {
        pick_cost = c;
        pick = t;
      }
    }
    order.push_back(pick);
    used[pick] = 1;
    total += pick_cost;
    std::vector<size_t> members;
    for (size_t i = 0; i < k; ++i) {
      if (used[i]) members.push_back(i);
    }
    for (uint32_t l = 1; l <= start_level; ++l) {
      prefix_est[l - 1] = SubsetEstimate(inputs, pw, members, l);
    }
  }
  *cost_out = total;
  return order;
}

}  // namespace

JoinPlan PlanJoin(std::vector<TermPlanInput> inputs, uint32_t start_level,
                  const PlannerOptions& options) {
  JoinPlan plan;
  plan.start_level = start_level;
  if (inputs.empty() || start_level == 0) return plan;

  // Canonical input order: rows ascending, then term. Both search loops
  // keep the first candidate on a cost tie, so ties degrade to the
  // shortest-first heuristic (then term identity), independent of the
  // caller's keyword order.
  std::sort(inputs.begin(), inputs.end(),
            [](const TermPlanInput& a, const TermPlanInput& b) {
              if (a.rows != b.rows) return a.rows < b.rows;
              return a.term < b.term;
            });

  PairwiseOverlap pw = ComputeOverlaps(inputs, start_level);
  size_t k = inputs.size();
  std::vector<size_t> order;
  // The DP's mask arithmetic needs k bits; 31 is the hard ceiling, the
  // option the practical one.
  plan.exact = k <= options.exact_dp_max_terms && k < 31;
  if (plan.exact) {
    order = DpOrder(inputs, pw, start_level, options, &plan.est_cost);
  } else {
    order = GreedyOrder(inputs, pw, start_level, options, &plan.est_cost);
  }

  plan.steps.reserve(k);
  std::vector<size_t> members;
  std::vector<double> prefix_est(start_level);
  for (size_t j = 0; j < order.size(); ++j) {
    const TermPlanInput& input = inputs[order[j]];
    JoinPlanStep step;
    step.term = input.term;
    step.est_out.resize(start_level);
    if (j > 0) step.algos.resize(start_level);
    members.push_back(order[j]);
    for (uint32_t l = 1; l <= start_level; ++l) {
      if (j > 0) {
        step.algos[l - 1] =
            PickStep(prefix_est[l - 1], CountAt(input, l), options).algo;
      }
      double out = j == 0 ? CountAt(input, l)
                          : SubsetEstimate(inputs, pw, members, l);
      step.est_out[l - 1] = out;
    }
    for (uint32_t l = 1; l <= start_level; ++l) {
      prefix_est[l - 1] = step.est_out[l - 1];
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace xtopk
