// Unit tests of the watermark-keyed result cache: key composition,
// stale-watermark misses, FIFO eviction, replacement, and counters.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/result_cache.h"

namespace xtopk {
namespace serve {
namespace {

std::shared_ptr<const std::vector<ResponseHit>> MakeHits(uint32_t node) {
  auto hits = std::make_shared<std::vector<ResponseHit>>();
  ResponseHit hit;
  hit.node = node;
  hit.score = 1.5;
  hits->push_back(hit);
  return hits;
}

TEST(ResultCacheKey, ComposedFromQueryShape) {
  std::string key = ResultCache::Key({"xml", "data"}, Semantics::kElca, 5);
  // Same inputs, same key.
  EXPECT_EQ(key, ResultCache::Key({"xml", "data"}, Semantics::kElca, 5));
  // Every component participates.
  EXPECT_NE(key, ResultCache::Key({"xml", "data"}, Semantics::kSlca, 5));
  EXPECT_NE(key, ResultCache::Key({"xml", "data"}, Semantics::kElca, 6));
  EXPECT_NE(key, ResultCache::Key({"xml"}, Semantics::kElca, 5));
  // Order matters: normalization fixed it upstream, so the cache must
  // not conflate distinct normalized sequences.
  EXPECT_NE(key, ResultCache::Key({"data", "xml"}, Semantics::kElca, 5));
}

TEST(ResultCacheKey, KeywordsCannotForgeSeparators) {
  // A keyword containing the separator must not collide with two
  // keywords. (Real keywords are tokenizer output and can't contain '|',
  // but the cache shouldn't rely on that.)
  EXPECT_NE(ResultCache::Key({"a|b"}, Semantics::kElca, 5),
            ResultCache::Key({"a", "b"}, Semantics::kElca, 5));
}

TEST(ResultCache, LookupHonorsWatermark) {
  ResultCache cache(8);
  const std::string key = ResultCache::Key({"xml"}, Semantics::kElca, 3);
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);  // cold miss

  cache.Insert(key, /*watermark=*/1, MakeHits(42));
  auto hit = cache.Lookup(key, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0].node, 42u);

  // The index moved on (seal/compact/ingest): same key, new watermark —
  // silent miss, and the stale entry never surfaces again.
  EXPECT_EQ(cache.Lookup(key, 2), nullptr);

  // Re-inserting at the new watermark replaces the stale entry.
  cache.Insert(key, 2, MakeHits(77));
  auto fresh = cache.Lookup(key, 2);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ((*fresh)[0].node, 77u);
  EXPECT_EQ(cache.size(), 1u);  // replaced, not duplicated
}

TEST(ResultCache, CountsHitsAndMisses) {
  ResultCache cache(8);
  const std::string key = ResultCache::Key({"xml"}, Semantics::kElca, 3);
  cache.Lookup(key, 1);               // miss: absent
  cache.Insert(key, 1, MakeHits(1));
  cache.Lookup(key, 1);               // hit
  cache.Lookup(key, 9);               // miss: stale watermark
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ResultCache, EvictsInInsertionOrder) {
  ResultCache cache(3);
  for (uint32_t i = 0; i < 3; ++i) {
    cache.Insert("k" + std::to_string(i), 1, MakeHits(i));
  }
  EXPECT_EQ(cache.size(), 3u);

  // A fourth insert evicts the oldest entry ("k0").
  cache.Insert("k3", 1, MakeHits(3));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup("k0", 1), nullptr);
  EXPECT_NE(cache.Lookup("k1", 1), nullptr);
  EXPECT_NE(cache.Lookup("k3", 1), nullptr);
}

TEST(ResultCache, HandedOutValuesSurviveEviction) {
  ResultCache cache(1);
  cache.Insert("a", 1, MakeHits(5));
  auto held = cache.Lookup("a", 1);
  ASSERT_NE(held, nullptr);
  cache.Insert("b", 1, MakeHits(6));  // evicts "a"
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  // The shared_ptr we took earlier is still valid and unchanged.
  EXPECT_EQ((*held)[0].node, 5u);
}

TEST(ResultCache, ClearEmptiesEverything) {
  ResultCache cache(8);
  cache.Insert("a", 1, MakeHits(1));
  cache.Insert("b", 1, MakeHits(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace xtopk
