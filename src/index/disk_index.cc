#include "index/disk_index.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>

#include "index/index_access.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"
#include "storage/compression.h"
#include "storage/fault_pagefile.h"
#include "storage/serializer.h"
#include "util/crc32c.h"
#include "util/varint.h"

namespace xtopk {
namespace {

/// Legacy unchecksummed layout (footer = magic + directory extent).
constexpr char kMagicV1[8] = {'X', 'T', 'K', 'D', 'I', 'S', 'K', '1'};
/// Checksummed layout: per-page CRC32C table + self-checksummed footer.
constexpr char kMagicV2[8] = {'X', 'T', 'K', 'D', 'I', 'S', 'K', '2'};
constexpr uint32_t kFormatVersionV2 = 2;
/// v2 plus the structure-aware compression sidecar (same magic — the
/// version field after it is what distinguishes the two).
constexpr uint32_t kFormatVersionV3 = 3;

/// v3 sidecar flag bits.
constexpr uint8_t kSidecarDictTerms = 1u << 0;
constexpr uint8_t kSidecarDag = 1u << 1;
constexpr uint8_t kSidecarDictRows = 1u << 2;

/// Appends byte streams to a PageFile, handing out extents. Blobs are
/// packed back to back and may span pages. Each flushed page's CRC32C
/// (over the full zero-padded 8 KiB page, exactly the bytes ReadPage
/// returns) is recorded for the segment's checksum table.
class BlobWriter {
 public:
  explicit BlobWriter(PageFile* file) : file_(file) {}

  BlobExtent Append(const std::string& data) {
    BlobExtent extent;
    extent.start_page = next_page_;
    extent.start_offset = static_cast<uint32_t>(buffer_.size());
    extent.length = data.size();
    size_t pos = 0;
    while (pos < data.size()) {
      size_t room = PageFile::kPageSize - buffer_.size();
      size_t take = std::min(room, data.size() - pos);
      buffer_.append(data, pos, take);
      pos += take;
      if (buffer_.size() == PageFile::kPageSize) {
        Status s = FlushPage();
        if (!s.ok()) {
          status_ = s;
          return extent;
        }
      }
    }
    return extent;
  }

  Status Finish() {
    if (!status_.ok()) return status_;
    if (!buffer_.empty()) return FlushPage();
    return Status::Ok();
  }

  const Status& status() const { return status_; }
  /// One CRC per flushed page, in page order. Valid after Finish().
  const std::vector<uint32_t>& page_crcs() const { return page_crcs_; }

 private:
  Status FlushPage() {
    buffer_.resize(PageFile::kPageSize, '\0');  // CRC covers the padding too
    page_crcs_.push_back(crc32c::Compute(buffer_));
    auto page = file_->AppendPage(buffer_);
    if (!page.ok()) return page.status();
    buffer_.clear();
    ++next_page_;
    return Status::Ok();
  }

  PageFile* file_;
  std::string buffer_;
  PageId next_page_ = 0;
  std::vector<uint32_t> page_crcs_;
  Status status_;
};

void PutExtent(std::string* out, const BlobExtent& extent) {
  varint::PutU32(out, extent.start_page);
  varint::PutU32(out, extent.start_offset);
  varint::PutU64(out, extent.length);
}

Status GetExtent(const std::string& data, size_t* pos, BlobExtent* extent) {
  Status s = varint::GetU32(data, pos, &extent->start_page);
  if (s.ok()) s = varint::GetU32(data, pos, &extent->start_offset);
  if (s.ok()) s = varint::GetU64(data, pos, &extent->length);
  return s;
}

/// Parsed segment footer, any format version.
struct FooterInfo {
  uint32_t version = 1;
  BlobExtent dir_extent;
  BlobExtent table_extent;       // v2+
  BlobExtent sidecar_extent;     // v3 only (compression sidecar)
  uint32_t data_page_count = 0;  // v2+
  uint32_t table_crc = 0;        // v2+
};

/// Read failures worth retrying: transient I/O errors, and corruption —
/// damage injected (or occurring) in flight is per-read, so a clean
/// retry can succeed; true on-disk corruption just exhausts the budget.
bool RetryableRead(const Status& s) {
  return s.code() == StatusCode::kIoError ||
         s.code() == StatusCode::kCorruption;
}

void RetryBackoff(uint32_t attempt, uint32_t backoff_us) {
  XTOPK_COUNTER("storage.io.retries").Add(1);
  if (backoff_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<uint64_t>(backoff_us) *
                                  (attempt + 1)));
  }
}

Status ParseFooter(const std::string& footer, FooterInfo* info) {
  if (footer.size() < sizeof(kMagicV1)) {
    return Status::Corruption("disk index: footer too short");
  }
  size_t pos = sizeof(kMagicV1);
  if (std::memcmp(footer.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    info->version = 1;
    return GetExtent(footer, &pos, &info->dir_extent);
  }
  if (std::memcmp(footer.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption("disk index: bad magic");
  }
  uint32_t version = 0;
  Status s = varint::GetU32(footer, &pos, &version);
  if (!s.ok()) return s;
  if (version != kFormatVersionV2 && version != kFormatVersionV3) {
    return Status::Corruption("disk index: unsupported format version");
  }
  info->version = version;
  s = GetExtent(footer, &pos, &info->dir_extent);
  if (s.ok()) s = GetExtent(footer, &pos, &info->table_extent);
  if (s.ok() && version >= kFormatVersionV3) {
    s = GetExtent(footer, &pos, &info->sidecar_extent);
  }
  if (s.ok()) s = varint::GetU32(footer, &pos, &info->data_page_count);
  if (s.ok()) s = ser::GetFixed32(footer, &pos, &info->table_crc);
  if (!s.ok()) return s;
  // The footer checksums itself: the fixed32 after the payload covers
  // every preceding byte, so a damaged footer (including damaged padding)
  // is caught before any extent is trusted.
  size_t payload_end = pos;
  uint32_t stored_crc = 0;
  s = ser::GetFixed32(footer, &pos, &stored_crc);
  if (!s.ok()) return s;
  if (stored_crc != crc32c::Compute(footer.data(), payload_end)) {
    XTOPK_COUNTER("storage.checksum.mismatches").Add(1);
    return Status::Corruption("disk index: footer checksum mismatch");
  }
  return Status::Ok();
}

/// Current registry values of the cache counters DiskIoStats reports
/// (pages_read stays on the PageFile instance).
DiskIoStats RegistryIoCounters() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  DiskIoStats s;
  s.pool_hits = reg.GetCounter("storage.pool.hits").value();
  s.pool_misses = reg.GetCounter("storage.pool.misses").value();
  s.decoded_hits = reg.GetCounter("storage.decoded.hits").value();
  s.decoded_misses = reg.GetCounter("storage.decoded.misses").value();
  return s;
}

/// Serialized-size accounting of one DiskIndexWriter::Write call,
/// published as storage.disk_write.bytes.* gauges so the Table-1 bench
/// can break a segment into components (tree / postings / dictionaries)
/// without re-parsing the file. Gauges, not counters: each Write
/// overwrites the previous call's figures.
struct WriteAccounting {
  uint64_t lengths = 0, scores = 0, columns = 0, tree = 0, directory = 0,
           sidecar = 0;
  void Publish() const {
    XTOPK_GAUGE("storage.disk_write.bytes.postings")
        .Set(static_cast<int64_t>(lengths + scores + columns));
    XTOPK_GAUGE("storage.disk_write.bytes.tree")
        .Set(static_cast<int64_t>(tree));
    XTOPK_GAUGE("storage.disk_write.bytes.directory")
        .Set(static_cast<int64_t>(directory));
    XTOPK_GAUGE("storage.disk_write.bytes.sidecar")
        .Set(static_cast<int64_t>(sidecar));
  }
};

/// Saturating delta: a registry ResetAll between baseline and read would
/// otherwise wrap; report the post-reset absolute value instead.
uint64_t CounterDelta(uint64_t now, uint64_t baseline) {
  return now >= baseline ? now - baseline : now;
}

}  // namespace

Status DiskIndexWriter::Write(const JDeweyIndex& index, bool include_scores,
                              const std::string& path, ColumnCodec codec,
                              bool write_checksums) {
  PageFile file;
  Status s = file.Open(path, /*create=*/true);
  if (!s.ok()) return s;
  BlobWriter writer(&file);

  std::string directory;
  directory.push_back(include_scores ? 1 : 0);
  varint::PutU32(&directory, index.max_level());
  varint::PutU32(&directory, static_cast<uint32_t>(index.terms().size()));

  WriteAccounting acc;
  for (size_t t = 0; t < index.terms().size(); ++t) {
    const JDeweyList& list = index.lists()[t];
    ser::PutLengthPrefixed(&directory, index.terms()[t]);
    varint::PutU32(&directory, list.num_rows());
    varint::PutU32(&directory, list.max_length);

    std::string lengths_blob;
    for (uint16_t len : list.lengths) varint::PutU32(&lengths_blob, len);
    acc.lengths += lengths_blob.size();
    PutExtent(&directory, writer.Append(lengths_blob));

    if (include_scores) {
      std::string scores_blob;
      for (float score : list.scores) ser::PutFloat(&scores_blob, score);
      acc.scores += scores_blob.size();
      PutExtent(&directory, writer.Append(scores_blob));
    } else {
      PutExtent(&directory, BlobExtent{});
    }

    for (const Column& column : list.columns) {
      std::string column_blob;
      EncodeColumn(column, codec, &column_blob);
      acc.columns += column_blob.size();
      PutExtent(&directory, writer.Append(column_blob));
    }
    if (!writer.status().ok()) return writer.status();
  }

  // Node mapping, delta-encoded per level.
  const auto& level_nodes = IndexIoAccess::LevelNodes(index);
  std::string nodes_blob;
  varint::PutU32(&nodes_blob, static_cast<uint32_t>(level_nodes.size()));
  for (const auto& level : level_nodes) {
    varint::PutU32(&nodes_blob, static_cast<uint32_t>(level.size()));
    uint32_t prev_value = 0;
    int64_t prev_node = 0;
    for (const auto& [value, node] : level) {
      varint::PutU32(&nodes_blob, value - prev_value);
      varint::PutS64(&nodes_blob, static_cast<int64_t>(node) - prev_node);
      prev_value = value;
      prev_node = static_cast<int64_t>(node);
    }
  }
  BlobExtent nodes_extent = writer.Append(nodes_blob);
  PutExtent(&directory, nodes_extent);
  acc.tree = nodes_blob.size();
  acc.directory = directory.size();
  acc.Publish();

  BlobExtent dir_extent = writer.Append(directory);
  s = writer.Finish();
  if (!s.ok()) return s;

  std::string footer;
  if (write_checksums) {
    // Checksum table: one fixed32 CRC per data page. Its own pages are
    // appended directly (not through BlobWriter — they must not alter the
    // table they carry) and are covered by table_crc instead.
    const std::vector<uint32_t>& crcs = writer.page_crcs();
    std::string table;
    table.reserve(crcs.size() * 4);
    for (uint32_t crc : crcs) ser::PutFixed32(&table, crc);
    BlobExtent table_extent;
    table_extent.start_page = file.page_count();
    table_extent.start_offset = 0;
    table_extent.length = table.size();
    for (size_t off = 0; off < table.size(); off += PageFile::kPageSize) {
      auto page = file.AppendPage(
          table.substr(off, std::min(PageFile::kPageSize, table.size() - off)));
      if (!page.ok()) return page.status();
    }
    if (table.empty()) {  // degenerate empty index: keep the extent valid
      table_extent.start_page = 0;
    }

    footer.assign(kMagicV2, sizeof(kMagicV2));
    varint::PutU32(&footer, kFormatVersionV2);
    PutExtent(&footer, dir_extent);
    PutExtent(&footer, table_extent);
    varint::PutU32(&footer, static_cast<uint32_t>(crcs.size()));
    ser::PutFixed32(&footer, crc32c::Compute(table));
    ser::PutFixed32(&footer, crc32c::Compute(footer));
  } else {
    // Legacy v1 footer: magic + directory extent, no checksums.
    footer.assign(kMagicV1, sizeof(kMagicV1));
    PutExtent(&footer, dir_extent);
  }
  auto footer_page = file.AppendPage(footer);
  if (!footer_page.ok()) return footer_page.status();
  s = file.Sync();
  if (!s.ok()) return s;
  s = file.Close();
  if (!s.ok()) return s;

  // Planner-statistics sidecar: when the index carries build-time
  // histograms, persist them as `<path>.manifest` so a later Open can
  // plan joins from real statistics. Callers that maintain a full
  // segment manifest (Seal, Compact, the segment tests) overwrite this
  // file right afterwards with covered_nodes filled in; the sidecar is
  // advisory either way, so its write failure does not fail Write.
  if (index.has_stats()) {
    ManifestFromSegment(index).Save(path + ".manifest").ok();
  }
  return Status::Ok();
}

Status DiskIndexWriter::Write(const JDeweyIndex& index, const std::string& path,
                              const Options& options) {
  if (!options.compressed()) {
    // No compression knob set: byte-identical legacy output.
    return Write(index, options.include_scores, path, options.codec,
                 options.write_checksums);
  }

  PageFile file;
  Status s = file.Open(path, /*create=*/true);
  if (!s.ok()) return s;
  BlobWriter writer(&file);

  const size_t term_count = index.terms().size();
  // File term order: sorted by term when the names move into the
  // dictionary (file term id == dictionary code), build order otherwise.
  std::vector<uint32_t> order(term_count);
  for (uint32_t t = 0; t < term_count; ++t) order[t] = t;
  if (options.dict_terms) {
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return index.terms()[a] < index.terms()[b];
    });
  }

  // The catalog is index-wide: every DAG-carrying list shares one.
  std::shared_ptr<const DagCatalog> catalog;
  if (options.dag) {
    for (const JDeweyList& list : index.lists()) {
      if (list.dag != nullptr && list.dag->catalog != nullptr &&
          !list.dag->catalog->empty()) {
        catalog = list.dag->catalog;
        break;
      }
    }
  }
  const bool write_dag = catalog != nullptr;

  std::string directory;
  directory.push_back(options.include_scores ? 1 : 0);
  varint::PutU32(&directory, index.max_level());
  varint::PutU32(&directory, static_cast<uint32_t>(term_count));

  // Per-term DAG metadata collected as the terms stream out, keyed by
  // file term id: (id, has_dedup flags, row deltas).
  std::string dag_terms_blob;
  uint32_t dag_term_count = 0;

  WriteAccounting acc;
  for (uint32_t ft = 0; ft < term_count; ++ft) {
    const uint32_t t = order[ft];
    const JDeweyList& list = index.lists()[t];
    if (!options.dict_terms) {
      ser::PutLengthPrefixed(&directory, index.terms()[t]);
    }
    varint::PutU32(&directory, list.num_rows());
    varint::PutU32(&directory, list.max_length);

    std::string lengths_blob;
    if (options.dict_rows) {
      std::vector<uint32_t> rows(list.lengths.begin(), list.lengths.end());
      EncodeDictRows(rows, &lengths_blob);
    } else {
      for (uint16_t len : list.lengths) varint::PutU32(&lengths_blob, len);
    }
    acc.lengths += lengths_blob.size();
    PutExtent(&directory, writer.Append(lengths_blob));

    if (options.include_scores) {
      std::string scores_blob;
      if (options.dict_rows) {
        // Scores travel as their float bit patterns: bit-exact, and the
        // few distinct tf·idf values repetitive corpora produce pack
        // into a handful of dictionary codes.
        std::vector<uint32_t> bits(list.scores.size());
        for (size_t r = 0; r < list.scores.size(); ++r) {
          std::memcpy(&bits[r], &list.scores[r], sizeof(uint32_t));
        }
        EncodeDictRows(bits, &scores_blob);
      } else {
        for (float score : list.scores) ser::PutFloat(&scores_blob, score);
      }
      acc.scores += scores_blob.size();
      PutExtent(&directory, writer.Append(scores_blob));
    } else {
      PutExtent(&directory, BlobExtent{});
    }

    const DagListData* dag =
        (write_dag && list.dag != nullptr) ? list.dag.get() : nullptr;
    bool any_dedup = false;
    for (uint32_t l = 0; l < list.max_length; ++l) {
      const bool dedup_level =
          dag != nullptr && l < dag->has_dedup.size() && dag->has_dedup[l];
      any_dedup |= dedup_level;
      std::string column_blob;
      // Deduplicated levels must be self-contained on disk (their row ids
      // are not derivable from the lengths stream), hence kDict.
      EncodeColumn(dedup_level ? dag->dedup[l] : list.columns[l],
                   dedup_level ? ColumnCodec::kDict : options.codec,
                   &column_blob);
      acc.columns += column_blob.size();
      PutExtent(&directory, writer.Append(column_blob));
    }
    if (!writer.status().ok()) return writer.status();

    if (dag != nullptr && (any_dedup || !dag->row_deltas.empty())) {
      ++dag_term_count;
      varint::PutU32(&dag_terms_blob, ft);
      varint::PutU32(&dag_terms_blob, list.max_length);
      for (uint32_t l = 0; l < list.max_length; ++l) {
        dag_terms_blob.push_back(
            (l < dag->has_dedup.size() && dag->has_dedup[l]) ? 1 : 0);
      }
      std::vector<uint32_t> classes;
      classes.reserve(dag->row_deltas.size());
      for (const auto& [cls, deltas] : dag->row_deltas) classes.push_back(cls);
      std::sort(classes.begin(), classes.end());  // deterministic bytes
      varint::PutU32(&dag_terms_blob, static_cast<uint32_t>(classes.size()));
      for (uint32_t cls : classes) {
        const std::vector<int64_t>& deltas = dag->row_deltas.at(cls);
        varint::PutU32(&dag_terms_blob, cls);
        varint::PutU32(&dag_terms_blob, static_cast<uint32_t>(deltas.size()));
        // Delta-encoded across instances (like the catalog's value
        // deltas): each copy contributes the same number of rows, so the
        // stride is near-constant and second-order deltas stay tiny.
        int64_t prev = 0;
        for (int64_t d : deltas) {
          varint::PutS64(&dag_terms_blob, d - prev);
          prev = d;
        }
      }
    }
  }

  // Node mapping, delta-encoded per level (same shape as v2).
  const auto& level_nodes = IndexIoAccess::LevelNodes(index);
  std::string nodes_blob;
  varint::PutU32(&nodes_blob, static_cast<uint32_t>(level_nodes.size()));
  for (const auto& level : level_nodes) {
    varint::PutU32(&nodes_blob, static_cast<uint32_t>(level.size()));
    uint32_t prev_value = 0;
    int64_t prev_node = 0;
    for (const auto& [value, node] : level) {
      varint::PutU32(&nodes_blob, value - prev_value);
      varint::PutS64(&nodes_blob, static_cast<int64_t>(node) - prev_node);
      prev_value = value;
      prev_node = static_cast<int64_t>(node);
    }
  }
  BlobExtent nodes_extent = writer.Append(nodes_blob);
  PutExtent(&directory, nodes_extent);

  // Compression sidecar: flags, term dictionary, DAG catalog + per-term
  // expansion metadata. Written through BlobWriter so the per-page CRCs
  // cover it like any data blob.
  std::string sidecar;
  uint8_t flags = 0;
  if (options.dict_terms) flags |= kSidecarDictTerms;
  if (write_dag) flags |= kSidecarDag;
  if (options.dict_rows) flags |= kSidecarDictRows;
  sidecar.push_back(static_cast<char>(flags));
  if (options.dict_terms) {
    std::vector<std::string> sorted_terms;
    sorted_terms.reserve(term_count);
    for (uint32_t t : order) sorted_terms.push_back(index.terms()[t]);
    auto dict = FrontCodedDict::Build(sorted_terms);
    if (!dict.ok()) return dict.status();
    dict->Serialize(&sidecar);
  }
  if (write_dag) {
    catalog->Serialize(&sidecar);
    varint::PutU32(&sidecar, dag_term_count);
    sidecar.append(dag_terms_blob);
  }
  BlobExtent sidecar_extent = writer.Append(sidecar);
  acc.tree = nodes_blob.size();
  acc.directory = directory.size();
  acc.sidecar = sidecar.size();
  acc.Publish();

  BlobExtent dir_extent = writer.Append(directory);
  s = writer.Finish();
  if (!s.ok()) return s;

  // v3 is always checksummed — the sidecar redefines how columns decode,
  // so it never ships without page CRCs.
  const std::vector<uint32_t>& crcs = writer.page_crcs();
  std::string table;
  table.reserve(crcs.size() * 4);
  for (uint32_t crc : crcs) ser::PutFixed32(&table, crc);
  BlobExtent table_extent;
  table_extent.start_page = file.page_count();
  table_extent.start_offset = 0;
  table_extent.length = table.size();
  for (size_t off = 0; off < table.size(); off += PageFile::kPageSize) {
    auto page = file.AppendPage(
        table.substr(off, std::min(PageFile::kPageSize, table.size() - off)));
    if (!page.ok()) return page.status();
  }
  if (table.empty()) table_extent.start_page = 0;

  std::string footer;
  footer.assign(kMagicV2, sizeof(kMagicV2));
  varint::PutU32(&footer, kFormatVersionV3);
  PutExtent(&footer, dir_extent);
  PutExtent(&footer, table_extent);
  PutExtent(&footer, sidecar_extent);
  varint::PutU32(&footer, static_cast<uint32_t>(crcs.size()));
  ser::PutFixed32(&footer, crc32c::Compute(table));
  ser::PutFixed32(&footer, crc32c::Compute(footer));
  auto footer_page = file.AppendPage(footer);
  if (!footer_page.ok()) return footer_page.status();
  s = file.Sync();
  if (!s.ok()) return s;
  s = file.Close();
  if (!s.ok()) return s;

  if (index.has_stats()) {
    // Compressed segments get the dictionary-encoded (v3) manifest; Load
    // reads every version, so mixing manifest versions across a
    // segmented index is fine.
    ManifestFromSegment(index).SaveV3(path + ".manifest").ok();
  }
  return Status::Ok();
}

StatusOr<std::shared_ptr<DiskIndexEnv>> DiskIndexEnv::Open(
    const std::string& path, DiskIndexOptions options) {
  XTOPK_COUNTER("index.envs_opened").Add(1);
  std::shared_ptr<DiskIndexEnv> env(new DiskIndexEnv());
  env->file_ = MakeFaultAwarePageFile();
  Status s = env->file_->Open(path, /*create=*/false);
  if (!s.ok()) return s;
  if (env->file_->page_count() == 0) {
    return Status::Corruption("disk index: empty file");
  }
  env->pool_ = std::make_unique<BufferPool>(env->file_.get(),
                                            options.pool_pages,
                                            options.pool_shards);
  env->decoded_ =
      std::make_unique<DecodedBlockCache>(options.decoded_cache_bytes);
  // Counter baseline before any directory I/O, so io_stats() scopes to
  // this environment's activity from a fresh zero (the pre-registry
  // instance counters started here too).
  env->stats_baseline_ = RegistryIoCounters();
  env->skip_enabled_ = options.enable_skip;
  env->io_retries_ = options.io_retries;
  env->retry_backoff_us_ = options.retry_backoff_us;
  if (const char* skip_env = std::getenv("XTOPK_DISABLE_SKIP");
      skip_env != nullptr && skip_env[0] != '\0' &&
      std::string_view(skip_env) != "0") {
    env->skip_enabled_ = false;
  }

  // Footer: read + parse inside the retry loop, since a v2 footer's CRC
  // mismatch means the *read* was damaged (parse failure alone cannot
  // distinguish damaged-in-flight from damaged-on-disk).
  FooterInfo footer_info;
  for (uint32_t attempt = 0;; ++attempt) {
    std::string footer;
    s = env->file_->ReadPage(env->file_->page_count() - 1, &footer);
    if (s.ok()) s = ParseFooter(footer, &footer_info);
    if (s.ok()) break;
    if (attempt >= options.io_retries || !RetryableRead(s)) return s;
    RetryBackoff(attempt, options.retry_backoff_us);
  }

  if (footer_info.version >= 2) {
    XTOPK_COUNTER("storage.checksum.segments_v2").Add(1);
    if (options.verify_checksums) {
      // Checksum table: read raw (its pages are covered by table_crc,
      // not by the table itself), verify, then arm the pool's verifier
      // so every later physical page read is checked before caching.
      for (uint32_t attempt = 0;; ++attempt) {
        std::string table;
        s = env->ReadBlobUnpooled(footer_info.table_extent, &table);
        if (s.ok() && crc32c::Compute(table) != footer_info.table_crc) {
          XTOPK_COUNTER("storage.checksum.mismatches").Add(1);
          s = Status::Corruption("disk index: checksum table damaged");
        }
        if (s.ok() && table.size() != footer_info.data_page_count * 4ull) {
          s = Status::Corruption("disk index: checksum table size mismatch");
        }
        if (s.ok()) {
          env->page_crcs_.resize(footer_info.data_page_count);
          size_t pos = 0;
          for (uint32_t p = 0; p < footer_info.data_page_count; ++p) {
            s = ser::GetFixed32(table, &pos, &env->page_crcs_[p]);
            if (!s.ok()) break;
          }
        }
        if (s.ok()) break;
        env->page_crcs_.clear();
        if (attempt >= options.io_retries || !RetryableRead(s)) return s;
        RetryBackoff(attempt, options.retry_backoff_us);
      }
      DiskIndexEnv* raw = env.get();  // pool_ is owned by env
      env->pool_->SetVerifier([raw](PageId id, const std::string& page) {
        return raw->VerifyPage(id, page);
      });
    }
  } else {
    // Pre-checksum segment: readable, but nothing to verify against.
    XTOPK_COUNTER("storage.checksum.legacy_segments").Add(1);
  }

  // v3 compression sidecar, part 1: the flags byte and term dictionary
  // must be parsed before the directory (they decide whether directory
  // entries carry inline names); the DAG section needs the directory's
  // max_level and term count, so its parse resumes below.
  std::string sidecar;
  size_t sidecar_pos = 0;
  bool dict_terms = false, has_dag = false;
  if (footer_info.version >= kFormatVersionV3) {
    s = env->ReadBlob(footer_info.sidecar_extent, &sidecar);
    if (!s.ok()) return s;
    if (sidecar.empty()) {
      return Status::Corruption("disk index: empty compression sidecar");
    }
    uint8_t flags = static_cast<uint8_t>(sidecar[sidecar_pos++]);
    if ((flags & ~(kSidecarDictTerms | kSidecarDag | kSidecarDictRows)) != 0) {
      return Status::Corruption("disk index: unknown sidecar flags");
    }
    dict_terms = (flags & kSidecarDictTerms) != 0;
    has_dag = (flags & kSidecarDag) != 0;
    env->dict_rows_ = (flags & kSidecarDictRows) != 0;
    if (dict_terms) {
      auto dict = FrontCodedDict::Deserialize(sidecar, &sidecar_pos);
      if (!dict.ok()) return dict.status();
      env->term_dict_ = std::move(*dict);
    }
  }

  std::string directory;
  s = env->ReadBlob(footer_info.dir_extent, &directory);
  if (!s.ok()) return s;

  size_t pos = 0;
  if (directory.empty()) return Status::Corruption("disk index: empty dir");
  env->has_scores_ = directory[pos++] != 0;
  uint32_t max_level = 0, term_count = 0;
  s = varint::GetU32(directory, &pos, &max_level);
  if (s.ok()) s = varint::GetU32(directory, &pos, &term_count);
  if (!s.ok()) return s;
  *IndexIoAccess::MaxLevel(&env->node_map_) = max_level;
  if (dict_terms && env->term_dict_.size() != term_count) {
    return Status::Corruption("disk index: term dictionary size mismatch");
  }

  for (uint32_t t = 0; t < term_count; ++t) {
    std::string term;
    if (!dict_terms) {
      s = ser::GetLengthPrefixed(directory, &pos, &term);
      if (!s.ok()) return s;
    }
    TermInfo info;
    info.term_id = t;
    s = varint::GetU32(directory, &pos, &info.rows);
    if (s.ok()) s = varint::GetU32(directory, &pos, &info.max_length);
    if (s.ok()) s = GetExtent(directory, &pos, &info.lengths);
    if (s.ok()) s = GetExtent(directory, &pos, &info.scores);
    if (!s.ok()) return s;
    info.columns.resize(info.max_length);
    for (uint32_t l = 0; l < info.max_length; ++l) {
      s = GetExtent(directory, &pos, &info.columns[l]);
      if (!s.ok()) return s;
    }
    if (dict_terms) {
      env->dict_dir_.push_back(std::move(info));  // code == term id == t
    } else {
      env->directory_.emplace(std::move(term), std::move(info));
    }
  }

  // v3 sidecar, part 2: DAG catalog + per-term expansion metadata,
  // validated against the directory before anything trusts it.
  if (has_dag) {
    auto catalog = DagCatalog::Deserialize(sidecar, &sidecar_pos, max_level);
    if (!catalog.ok()) return catalog.status();
    env->dag_catalog_ = std::move(*catalog);
    env->dag_meta_.resize(term_count);
    uint32_t dag_terms = 0;
    s = varint::GetU32(sidecar, &sidecar_pos, &dag_terms);
    if (!s.ok()) return s;
    if (dag_terms > term_count) {
      return Status::Corruption("disk index: sidecar dag term count");
    }
    for (uint32_t i = 0; i < dag_terms; ++i) {
      uint32_t term_id = 0, levels = 0;
      s = varint::GetU32(sidecar, &sidecar_pos, &term_id);
      if (s.ok()) s = varint::GetU32(sidecar, &sidecar_pos, &levels);
      if (!s.ok()) return s;
      if (term_id >= term_count || env->dag_meta_[term_id] != nullptr) {
        return Status::Corruption("disk index: sidecar dag term id");
      }
      uint32_t expected_levels = 0;
      if (dict_terms) {
        expected_levels = env->dict_dir_[term_id].max_length;
      } else {
        // Uncompressed term space: find the entry with this id.
        for (const auto& [name, ti] : env->directory_) {
          if (ti.term_id == term_id) expected_levels = ti.max_length;
        }
      }
      if (levels != expected_levels) {
        return Status::Corruption("disk index: sidecar dag level count");
      }
      auto meta = std::make_unique<DagTermMeta>();
      meta->has_dedup.resize(levels, 0);
      for (uint32_t l = 0; l < levels; ++l) {
        if (sidecar_pos >= sidecar.size()) {
          return Status::Corruption("disk index: sidecar truncated");
        }
        char flag = sidecar[sidecar_pos++];
        if (flag != 0 && flag != 1) {
          return Status::Corruption("disk index: sidecar dedup flag");
        }
        meta->has_dedup[l] = flag;
      }
      uint32_t n_classes = 0;
      s = varint::GetU32(sidecar, &sidecar_pos, &n_classes);
      if (!s.ok()) return s;
      if (n_classes > env->dag_catalog_->classes.size()) {
        return Status::Corruption("disk index: sidecar class count");
      }
      for (uint32_t c = 0; c < n_classes; ++c) {
        uint32_t cls = 0, n_inst = 0;
        s = varint::GetU32(sidecar, &sidecar_pos, &cls);
        if (s.ok()) s = varint::GetU32(sidecar, &sidecar_pos, &n_inst);
        if (!s.ok()) return s;
        if (cls >= env->dag_catalog_->classes.size() ||
            n_inst != env->dag_catalog_->classes[cls].instances.size() ||
            meta->row_deltas.count(cls) != 0) {
          return Status::Corruption("disk index: sidecar row-delta header");
        }
        std::vector<int64_t> deltas(n_inst);
        int64_t prev = 0;
        for (uint32_t d = 0; d < n_inst; ++d) {
          int64_t step = 0;
          s = varint::GetS64(sidecar, &sidecar_pos, &step);
          if (!s.ok()) return s;
          // Untrusted second-order delta: guard the accumulation (signed
          // overflow is UB) and keep row deltas in a plausible range.
          if (__builtin_add_overflow(prev, step, &deltas[d]) ||
              deltas[d] > int64_t(UINT32_MAX) ||
              deltas[d] < -int64_t(UINT32_MAX)) {
            return Status::Corruption("disk index: sidecar row delta range");
          }
          prev = deltas[d];
        }
        meta->row_deltas.emplace(cls, std::move(deltas));
      }
      env->dag_meta_[term_id] = std::move(meta);
    }
  }
  if (footer_info.version >= kFormatVersionV3 &&
      sidecar_pos != sidecar.size()) {
    return Status::Corruption("disk index: sidecar trailing bytes");
  }

  // Node mapping (startup I/O, counted once; shared by all sessions).
  BlobExtent nodes_extent;
  s = GetExtent(directory, &pos, &nodes_extent);
  if (!s.ok()) return s;
  std::string nodes_blob;
  s = env->ReadBlob(nodes_extent, &nodes_blob);
  if (!s.ok()) return s;
  pos = 0;
  uint32_t level_count = 0;
  s = varint::GetU32(nodes_blob, &pos, &level_count);
  if (!s.ok()) return s;
  auto* level_nodes = IndexIoAccess::LevelNodes(&env->node_map_);
  level_nodes->resize(level_count);
  for (uint32_t l = 0; l < level_count; ++l) {
    uint32_t entries = 0;
    s = varint::GetU32(nodes_blob, &pos, &entries);
    if (!s.ok()) return s;
    uint32_t prev_value = 0;
    int64_t prev_node = 0;
    auto& level = (*level_nodes)[l];
    level.reserve(entries);
    for (uint32_t e = 0; e < entries; ++e) {
      uint32_t dv = 0;
      int64_t dn = 0;
      s = varint::GetU32(nodes_blob, &pos, &dv);
      if (s.ok()) s = varint::GetS64(nodes_blob, &pos, &dn);
      if (!s.ok()) return s;
      prev_value += dv;
      prev_node += dn;
      level.emplace_back(prev_value, static_cast<NodeId>(prev_node));
    }
  }

  // Planner-statistics sidecar: lenient on purpose. A missing, damaged,
  // or histogram-less (v1) manifest costs plan quality, never the Open —
  // queries then run on Frequency-based estimates.
  if (StatusOr<SegmentManifest> sidecar =
          SegmentManifest::Load(path + ".manifest");
      sidecar.ok()) {
    for (SegmentTermStats& t : sidecar->terms) {
      if (t.levels.empty()) continue;
      const TermInfo* info = env->FindTerm(t.term);
      if (info == nullptr) continue;
      TermStats stats;
      stats.rows = info->rows;  // directory is authoritative
      stats.levels = std::move(t.levels);
      env->term_stats_.emplace(t.term, std::move(stats));
    }
  }
  return env;
}

const DiskIndexEnv::TermInfo* DiskIndexEnv::FindTerm(
    const std::string& term) const {
  if (!dict_dir_.empty()) {
    uint32_t code = term_dict_.Lookup(term);
    return code == FrontCodedDict::kNotFound ? nullptr : &dict_dir_[code];
  }
  auto it = directory_.find(term);
  return it == directory_.end() ? nullptr : &it->second;
}

std::unique_ptr<DiskJDeweyIndex> DiskIndexEnv::NewSession() {
  XTOPK_COUNTER("index.sessions_opened").Add(1);
  return std::unique_ptr<DiskJDeweyIndex>(
      new DiskJDeweyIndex(shared_from_this()));
}

Status DiskIndexEnv::ReadBlob(const BlobExtent& extent, std::string* out) {
  Status s;
  for (uint32_t attempt = 0;; ++attempt) {
    s = ReadBlobOnce(extent, out);
    if (s.ok()) return s;
    if (attempt >= io_retries_ || !RetryableRead(s)) return s;
    // Failed pages were never admitted to the pool, so the retry reads
    // the disk again rather than replaying the damaged copy.
    RetryBackoff(attempt, retry_backoff_us_);
  }
}

Status DiskIndexEnv::ReadBlobOnce(const BlobExtent& extent, std::string* out) {
  out->clear();
  out->reserve(extent.length);
  PageId page = extent.start_page;
  size_t offset = extent.start_offset;
  uint64_t remaining = extent.length;
  while (remaining > 0) {
    auto data = pool_->GetPage(page);
    if (!data.ok()) return data.status();
    size_t take = std::min<uint64_t>(remaining,
                                     PageFile::kPageSize - offset);
    out->append(**data, offset, take);
    remaining -= take;
    offset = 0;
    ++page;
  }
  return Status::Ok();
}

Status DiskIndexEnv::ReadBlobUnpooled(const BlobExtent& extent,
                                      std::string* out) {
  out->clear();
  out->reserve(extent.length);
  PageId page = extent.start_page;
  size_t offset = extent.start_offset;
  uint64_t remaining = extent.length;
  std::string buf;
  while (remaining > 0) {
    Status s = file_->ReadPage(page, &buf);
    if (!s.ok()) return s;
    size_t take = std::min<uint64_t>(remaining,
                                     PageFile::kPageSize - offset);
    out->append(buf, offset, take);
    remaining -= take;
    offset = 0;
    ++page;
  }
  return Status::Ok();
}

Status DiskIndexEnv::VerifyPage(PageId id, const std::string& page) const {
  // Pages past the data range (checksum table, footer) have no table
  // entry; they never flow through the pool after Open anyway.
  if (id >= page_crcs_.size()) return Status::Ok();
  XTOPK_COUNTER("storage.checksum.page_verifications").Add(1);
  if (crc32c::Compute(page) != page_crcs_[id]) {
    XTOPK_COUNTER("storage.checksum.mismatches").Add(1);
    return Status::Corruption("disk index: page checksum mismatch");
  }
  return Status::Ok();
}

uint32_t DiskIndexEnv::Frequency(const std::string& term) const {
  XTOPK_COUNTER("index.term_lookups").Add(1);
  const TermInfo* info = FindTerm(term);
  if (info == nullptr) {
    XTOPK_COUNTER("index.term_lookup_misses").Add(1);
    return 0;
  }
  return info->rows;
}

uint32_t DiskIndexEnv::MaxLength(const std::string& term) const {
  const TermInfo* info = FindTerm(term);
  return info == nullptr ? 0 : info->max_length;
}

const TermStats* DiskIndexEnv::Stats(const std::string& term) const {
  auto it = term_stats_.find(term);
  return it == term_stats_.end() ? nullptr : &it->second;
}

DiskIoStats DiskIndexEnv::io_stats() const {
  DiskIoStats now = RegistryIoCounters();
  DiskIoStats stats;
  stats.pages_read = file_->pages_read();
  stats.pool_hits = CounterDelta(now.pool_hits, stats_baseline_.pool_hits);
  stats.pool_misses =
      CounterDelta(now.pool_misses, stats_baseline_.pool_misses);
  stats.decoded_hits =
      CounterDelta(now.decoded_hits, stats_baseline_.decoded_hits);
  stats.decoded_misses =
      CounterDelta(now.decoded_misses, stats_baseline_.decoded_misses);
  return stats;
}

void DiskIndexEnv::ResetIoStats() {
  file_->ResetStats();
  stats_baseline_ = RegistryIoCounters();
}

DiskJDeweyIndex::DiskJDeweyIndex(std::shared_ptr<DiskIndexEnv> env)
    : env_(std::move(env)) {
  *IndexIoAccess::MaxLevel(&view_) = env_->node_map_.max_level();
  IndexIoAccess::BorrowLevelNodes(&view_, env_->node_map_);
}

StatusOr<std::unique_ptr<DiskJDeweyIndex>> DiskJDeweyIndex::Open(
    const std::string& path, size_t pool_pages) {
  DiskIndexOptions options;
  options.pool_pages = pool_pages;
  auto env = DiskIndexEnv::Open(path, options);
  if (!env.ok()) return env.status();
  return (*env)->NewSession();
}

uint32_t DiskJDeweyIndex::Frequency(const std::string& term) const {
  return env_->Frequency(term);
}

uint32_t DiskJDeweyIndex::MaxLength(const std::string& term) const {
  return env_->MaxLength(term);
}

Status DiskJDeweyIndex::MaterializeBase(const std::string& term,
                                        const DiskIndexEnv::TermInfo& info,
                                        TermState* state, bool need_scores) {
  auto* lists = IndexIoAccess::Lists(&view_);
  auto* terms = IndexIoAccess::Terms(&view_);
  auto* term_ids = IndexIoAccess::TermIds(&view_);
  state->view_id = static_cast<uint32_t>(lists->size());
  lists->emplace_back();
  terms->push_back(term);
  term_ids->emplace(term, state->view_id);

  JDeweyList& list = lists->back();
  list.max_length = info.max_length;
  list.columns.resize(info.max_length);

  DecodedBlockCache& cache = *env_->decoded_;
  if (auto cached = cache.GetLengths(info.term_id)) {
    list.lengths = *cached;  // memcpy-cheap vs re-decoding the varints
  } else {
    std::string lengths_blob;
    Status s = env_->ReadBlob(info.lengths, &lengths_blob);
    if (!s.ok()) return s;
    size_t pos = 0;
    std::vector<uint16_t> lengths(info.rows);
    if (env_->dict_rows_) {
      std::vector<uint32_t> raw;
      s = DecodeDictRows(lengths_blob, &pos, info.rows, &raw);
      if (!s.ok()) return s;
      for (uint32_t r = 0; r < info.rows; ++r) {
        if (raw[r] == 0 || raw[r] > info.max_length) {
          return Status::Corruption("disk index: bad row length");
        }
        lengths[r] = static_cast<uint16_t>(raw[r]);
      }
    } else {
      for (uint32_t r = 0; r < info.rows; ++r) {
        uint32_t len = 0;
        s = varint::GetU32(lengths_blob, &pos, &len);
        if (!s.ok()) return s;
        if (len == 0 || len > info.max_length) {
          return Status::Corruption("disk index: bad row length");
        }
        lengths[r] = static_cast<uint16_t>(len);
      }
    }
    list.lengths = lengths;
    cache.PutLengths(info.term_id, std::make_shared<const std::vector<uint16_t>>(
                                       std::move(lengths)));
  }

  // v3 DAG term: hang the (session-local) expansion companion off the
  // list now; its dedup columns flip on as MaterializeColumns loads them.
  if (info.term_id < env_->dag_meta_.size() &&
      env_->dag_meta_[info.term_id] != nullptr) {
    const DiskIndexEnv::DagTermMeta& meta = *env_->dag_meta_[info.term_id];
    auto dag = std::make_shared<DagListData>();
    dag->catalog = env_->dag_catalog_;
    dag->row_deltas = meta.row_deltas;
    dag->dedup.resize(info.max_length);
    dag->has_dedup.assign(info.max_length, 0);
    state->dag = dag;
    list.dag = dag;
  }

  list.scores.assign(info.rows, 0.0f);
  if (need_scores) {
    Status s = MaterializeScores(info, state);
    if (!s.ok()) return s;
  }
  // Occurrence nodes are not needed by the join algorithms; leave empty.
  return Status::Ok();
}

Status DiskJDeweyIndex::MaterializeScores(const DiskIndexEnv::TermInfo& info,
                                          TermState* state) {
  if (state->scores_loaded || !env_->has_scores_ || info.scores.length == 0) {
    return Status::Ok();
  }
  JDeweyList& list = (*IndexIoAccess::Lists(&view_))[state->view_id];
  DecodedBlockCache& cache = *env_->decoded_;
  if (auto cached = cache.GetScores(info.term_id)) {
    list.scores = *cached;
    state->scores_loaded = true;
    return Status::Ok();
  }
  std::string scores_blob;
  Status s = env_->ReadBlob(info.scores, &scores_blob);
  if (!s.ok()) return s;
  size_t pos = 0;
  std::vector<float> scores(info.rows);
  if (env_->dict_rows_) {
    std::vector<uint32_t> bits;
    s = DecodeDictRows(scores_blob, &pos, info.rows, &bits);
    if (!s.ok()) return s;
    static_assert(sizeof(float) == sizeof(uint32_t));
    if (info.rows > 0) {
      std::memcpy(scores.data(), bits.data(), info.rows * sizeof(float));
    }
  } else {
    for (uint32_t r = 0; r < info.rows; ++r) {
      s = ser::GetFloat(scores_blob, &pos, &scores[r]);
      if (!s.ok()) return s;
    }
  }
  list.scores = scores;
  cache.PutScores(info.term_id,
                  std::make_shared<const std::vector<float>>(std::move(scores)));
  state->scores_loaded = true;
  return Status::Ok();
}

Status DiskJDeweyIndex::MaterializeColumns(
    const DiskIndexEnv::TermInfo& info, TermState* state, uint32_t up_to_level,
    const std::vector<ValueBounds>* level_bounds) {
  JDeweyList& list = (*IndexIoAccess::Lists(&view_))[state->view_id];
  up_to_level = std::min(up_to_level, info.max_length);
  if (state->coverage.size() < info.max_length) {
    state->coverage.resize(info.max_length);
  }
  if (!env_->skip_enabled_) level_bounds = nullptr;
  // DAG terms always load full columns: a deduplicated level expands to
  // the exact full column (never a partial one), and mixing partial
  // sibling levels with expanded ones would complicate coverage for no
  // gain — shared-subtree lists are the compressed, small ones.
  const DiskIndexEnv::DagTermMeta* dag_meta =
      (info.term_id < env_->dag_meta_.size())
          ? env_->dag_meta_[info.term_id].get()
          : nullptr;
  if (dag_meta != nullptr) level_bounds = nullptr;
  DecodedBlockCache& cache = *env_->decoded_;

  for (uint32_t level = 1; level <= up_to_level; ++level) {
    LevelCoverage& cov = state->coverage[level - 1];
    if (cov.full) continue;
    const ValueBounds* bounds =
        (level_bounds != nullptr && level - 1 < level_bounds->size())
            ? &(*level_bounds)[level - 1]
            : nullptr;
    XTOPK_COUNTER("index.columns_materialized").Add(1);

    // Deduplicated level of a DAG term: the blob holds the dedup column
    // (self-contained kDict codec). The decoded cache stores the dedup
    // form — it is the small one — and every session expands it back to
    // the bit-identical full column through the checked expander, so a
    // damaged sidecar or blob surfaces as Corruption, never as wrong
    // results. The dedup column also lands on the list's DagListData,
    // which is what lets the join layer intersect shared subtrees once.
    if (dag_meta != nullptr && dag_meta->has_dedup[level - 1] != 0) {
      Column dedup;
      if (auto cached = cache.GetColumn(info.term_id, level)) {
        dedup = *cached;
      } else {
        std::string blob;
        Status s = env_->ReadBlob(info.columns[level - 1], &blob);
        if (!s.ok()) return s;
        size_t pos = 0;
        s = DecodeColumn(blob, &pos, nullptr, &dedup);
        if (!s.ok()) return s;
        cache.PutColumn(info.term_id, level,
                        std::make_shared<const Column>(dedup));
      }
      auto expanded = ExpandDedupColumnChecked(
          dedup, *env_->dag_catalog_, state->dag->row_deltas, level);
      if (!expanded.ok()) return expanded.status();
      uint32_t present_rows = 0;
      for (uint16_t len : list.lengths) present_rows += (len >= level);
      if (expanded->row_count() != present_rows) {
        return Status::Corruption("disk index: dag expansion row mismatch");
      }
      XTOPK_COUNTER("index.dag.columns_expanded").Add(1);
      list.columns[level - 1] = std::move(*expanded);
      state->dag->dedup[level - 1] = std::move(dedup);
      state->dag->has_dedup[level - 1] = 1;
      cov = LevelCoverage{};
      cov.full = true;
      continue;
    }

    if (auto cached = cache.GetColumn(info.term_id, level)) {
      list.columns[level - 1] = *cached;  // run-vector copy, no decode
      cov = LevelCoverage{};
      cov.full = true;
      continue;
    }
    std::string blob;
    Status s = env_->ReadBlob(info.columns[level - 1], &blob);
    if (!s.ok()) return s;
    std::vector<uint32_t> present;
    for (uint32_t row = 0; row < list.lengths.size(); ++row) {
      if (list.lengths[row] >= level) present.push_back(row);
    }

    // Skip path: group-varint columns with bounds materialize only the
    // physical blocks whose value range can intersect them, assembled
    // from per-block cache fragments where possible. A block whose skip
    // directory or payload turns out damaged degrades to the full legacy
    // decode below (which re-validates the whole blob) instead of
    // failing the load outright.
    GvbColumnReader reader;
    bool skip_degraded = false;
    if (bounds != nullptr && reader.Open(blob, 0).ok()) {
      BlockSkipIndex::Range range =
          reader.skip().ProbeRange(bounds->lo, bounds->hi);
      if (cov.partial) {
        // Widen to the union so earlier bounds stay covered; the range
        // between the two stays contiguous (a superset is always sound).
        range.lo = std::min(range.lo, static_cast<size_t>(cov.lo_block));
        range.hi = std::max(range.hi, static_cast<size_t>(cov.hi_block));
      }
      Column column;
      for (size_t b = range.lo; b < range.hi && !skip_degraded; ++b) {
        auto fragment =
            cache.GetColumnBlock(info.term_id, level, static_cast<uint32_t>(b));
        if (fragment == nullptr) {
          Column decoded;
          s = reader.DecodeBlock(b, present, &decoded);
          if (!s.ok()) {
            XTOPK_COUNTER("storage.degraded.full_decode_fallbacks").Add(1);
            skip_degraded = true;
            break;
          }
          auto shared = std::make_shared<const Column>(std::move(decoded));
          cache.PutColumnBlock(info.term_id, level, static_cast<uint32_t>(b),
                               shared);
          fragment = std::move(shared);
        }
        // AppendRunChecked re-merges a run split across a block boundary
        // and catches fragments that are individually valid but
        // non-monotonic across the boundary (a damaged skip directory on
        // a legacy segment) — those degrade to the full decode too.
        for (const Run& run : fragment->runs()) {
          if (!column.AppendRunChecked(run.first_row, run.value, run.count)) {
            XTOPK_COUNTER("storage.degraded.full_decode_fallbacks").Add(1);
            skip_degraded = true;
            break;
          }
        }
      }
      if (!skip_degraded) {
        list.columns[level - 1] = std::move(column);
        if (range.lo == 0 && range.hi == reader.block_count()) {
          cov = LevelCoverage{};
          cov.full = true;
          cache.PutColumn(info.term_id, level, std::make_shared<const Column>(
                                                   list.columns[level - 1]));
        } else {
          XTOPK_COUNTER("storage.skip.partial_loads").Add(1);
          XTOPK_COUNTER("storage.skip.blocks_skipped")
              .Add(reader.block_count() - (range.hi - range.lo));
          cov.partial = true;
          cov.lo_block = static_cast<uint32_t>(range.lo);
          cov.hi_block = static_cast<uint32_t>(range.hi);
        }
        continue;
      }
    }

    // Full decode: no bounds, or a non-group-varint (legacy delta / RLE)
    // column. Also the upgrade path from partial to full coverage.
    size_t pos = 0;
    Column column;
    s = DecodeColumn(blob, &pos, &present, &column);
    if (!s.ok()) return s;
    list.columns[level - 1] = column;
    cov = LevelCoverage{};
    cov.full = true;
    cache.PutColumn(info.term_id, level,
                    std::make_shared<const Column>(std::move(column)));
  }
  return Status::Ok();
}

StatusOr<const JDeweyList*> DiskJDeweyIndex::LoadList(const std::string& term,
                                                      uint32_t up_to_level,
                                                      bool need_scores) {
  return LoadList(term, up_to_level, need_scores, nullptr);
}

StatusOr<const JDeweyList*> DiskJDeweyIndex::LoadList(
    const std::string& term, uint32_t up_to_level, bool need_scores,
    const std::vector<ValueBounds>* level_bounds) {
  const DiskIndexEnv::TermInfo* found = env_->FindTerm(term);
  if (found == nullptr) {
    return static_cast<const JDeweyList*>(nullptr);
  }
  const DiskIndexEnv::TermInfo& info = *found;
  TermState& state = state_[info.term_id];
  if (state.view_id == UINT32_MAX) {
    XTOPK_COUNTER("index.lists_loaded").Add(1);
    Status s = MaterializeBase(term, info, &state, need_scores);
    if (!s.ok()) {
      // Roll back the half-built view slot. Without this, view_id stays
      // set over an empty list and a later query on the same session
      // would silently reuse it (empty results) instead of re-reading.
      auto* lists = IndexIoAccess::Lists(&view_);
      if (state.view_id != UINT32_MAX &&
          state.view_id + 1 == lists->size()) {
        lists->pop_back();
        IndexIoAccess::Terms(&view_)->pop_back();
        IndexIoAccess::TermIds(&view_)->erase(term);
      }
      state_.erase(info.term_id);
      XTOPK_COUNTER("storage.degraded.load_rollbacks").Add(1);
      return s;
    }
  } else if (need_scores) {
    Status s = MaterializeScores(info, &state);
    if (!s.ok()) return s;
  }
  Status s = MaterializeColumns(info, &state, up_to_level, level_bounds);
  if (!s.ok()) return s;
  return &(*IndexIoAccess::Lists(&view_))[state.view_id];
}

StatusOr<std::vector<SearchResult>> DiskJDeweyIndex::SearchComplete(
    const std::vector<std::string>& keywords, JoinSearchOptions options) {
  return SearchComplete(keywords, options, nullptr);
}

StatusOr<std::vector<SearchResult>> DiskJDeweyIndex::SearchComplete(
    const std::vector<std::string>& keywords, JoinSearchOptions options,
    JoinSearchStats* stats) {
  // The session is the posting source: the shared resolve pipeline loads
  // the seed list fully and every other list with the seed's per-level
  // value bounds (skip-decodes when the environment allows them).
  JoinSearch search(this, options);
  auto results = search.Search(keywords);
  if (stats != nullptr) *stats = search.stats();
  if (!search.status().ok()) return search.status();
  return results;
}

StatusOr<std::vector<SearchResult>> DiskJDeweyIndex::SearchTopK(
    const std::vector<std::string>& keywords, TopKSearchOptions options) {
  // Posting-source mode: TopKSearch materializes the queried lists fully
  // (semantic pruning probes arbitrary components) and derives their
  // score-ordered segments per query.
  TopKSearch search(this, options);
  auto results = search.Search(keywords);
  if (!search.status().ok()) return search.status();
  return results;
}

}  // namespace xtopk
