#ifndef XTOPK_BASELINE_ELCA_EVAL_H_
#define XTOPK_BASELINE_ELCA_EVAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scoring.h"
#include "index/dewey_index.h"

namespace xtopk {

/// Probe counters shared by the Dewey-side candidate machinery.
struct CandidateEvalStats {
  uint64_t range_probes = 0;    ///< binary searches over Dewey lists
  uint64_t children_checked = 0;
  uint64_t rows_scanned = 0;    ///< rows touched for score computation
};

/// Dewey-side evaluation of one candidate node `u` against the query's
/// inverted lists — the verification step of the index-based baseline and
/// of RDIL. Implements the recursive ELCA semantics (DESIGN.md §5): an
/// ELCA consumes its whole subtree, and u is an ELCA iff every keyword
/// keeps an occurrence under u outside the subtrees of u's descendant
/// ELCAs. The recursion over matched (all-containing) descendants is
/// memoized per node, so repeated candidates — RDIL probes the same region
/// many times — stay cheap.
class ElcaCandidateEvaluator {
 public:
  ElcaCandidateEvaluator(std::vector<const DeweyList*> lists,
                         ScoringParams scoring);

  /// True iff the subtree at `u` contains every keyword.
  bool ContainsAll(const DeweyId& u) const;

  /// True iff `u` is an ELCA. With `score` non-null also computes the
  /// ranking score (per-keyword damped maximum over surviving
  /// occurrences).
  bool IsElca(const DeweyId& u, double* score);

  /// True iff `u` is an SLCA (contains all keywords, no child does).
  bool IsSlca(const DeweyId& u, double* score);

  CandidateEvalStats* stats() { return &stats_; }

 private:
  struct NodeInfo {
    bool is_elca = false;
    /// Per keyword: occurrences under the node consumed by ELCAs in its
    /// subtree (the whole range when the node is an ELCA itself).
    std::vector<uint32_t> consumed;
    /// Maximal ELCAs strictly below the node — the consumption "holes"
    /// used when scoring the node itself.
    std::vector<DeweyId> holes;
  };

  /// Matched (all-containing) children of `u`, enumerated by child-prefix
  /// jumps over the first list's occurrences under u.
  std::vector<DeweyId> MatchedChildren(const DeweyId& u);

  /// Computes (memoized) the recursive ELCA state of matched node `u`.
  const NodeInfo& Evaluate(const DeweyId& u);

  std::vector<const DeweyList*> lists_;
  ScoringParams scoring_;
  CandidateEvalStats stats_;
  std::unordered_map<std::string, NodeInfo> memo_;  // key: EncodeDeweyKey
};

}  // namespace xtopk

#endif  // XTOPK_BASELINE_ELCA_EVAL_H_
