# Empty dependencies file for dblp_topk.
# This may be replaced when dependencies are built.
