// Correctness suite of the structure-aware compression layer (DESIGN.md
// §15): subtree-DAG detection + verification at build time, the exact
// dedup-column round trip, bit-identical query results with the DAG and
// dictionary on vs off, the force-off environment knobs, and the v3 disk
// format (dictionary-encoded term space, kDict row streams, deduplicated
// column blobs expanded through the checked expander at load).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/dag.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "index/reader.h"
#include "index/segment_builder.h"
#include "storage/segment_manifest.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRepeatedSubtreeTree;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

const std::vector<std::string> kTerms = {"alpha", "beta", "gamma"};

XmlTree RepeatedTree(uint64_t seed = 3) {
  return MakeRepeatedSubtreeTree(seed, /*groups=*/3, /*copies_per_group=*/8,
                                 kTerms);
}

IndexBuildOptions BaseOptions() {
  IndexBuildOptions options;
  options.index_tag_names = false;
  return options;
}

bool ColumnsEqual(const Column& a, const Column& b) {
  if (a.run_count() != b.run_count()) return false;
  for (size_t i = 0; i < a.run_count(); ++i) {
    const Run& ra = a.runs()[i];
    const Run& rb = b.runs()[i];
    if (ra.value != rb.value || ra.first_row != rb.first_row ||
        ra.count != rb.count) {
      return false;
    }
  }
  return true;
}

void ExpectListsIdentical(const JDeweyList& a, const JDeweyList& b,
                          const std::string& label) {
  ASSERT_EQ(a.lengths, b.lengths) << label;
  ASSERT_EQ(a.scores, b.scores) << label;
  ASSERT_EQ(a.max_length, b.max_length) << label;
  ASSERT_EQ(a.columns.size(), b.columns.size()) << label;
  for (size_t l = 0; l < a.columns.size(); ++l) {
    EXPECT_TRUE(ColumnsEqual(a.columns[l], b.columns[l]))
        << label << " level " << (l + 1);
  }
}

void ExpectSameResults(const std::vector<SearchResult>& got_in,
                       const std::vector<SearchResult>& want_in,
                       const std::string& label) {
  std::vector<SearchResult> got = got_in, want = want_in;
  SortByNode(&got);
  SortByNode(&want);
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score)
        << label << " node " << got[i].node;
  }
}

/// The builder must attach verified DAG data on a repeated corpus, and the
/// dedup columns must (a) be strictly smaller than the full ones somewhere
/// and (b) expand back to the bit-identical full column at every level.
TEST(DagCompressionTest, BuilderAttachesExactlyInvertibleDagData) {
  XmlTree tree = RepeatedTree();
  IndexBuildOptions options = BaseOptions();
  options.enable_dag = true;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();

  size_t dag_lists = 0, dedup_levels = 0, runs_saved = 0;
  for (size_t t = 0; t < index.terms().size(); ++t) {
    const JDeweyList& list = index.lists()[t];
    if (list.dag == nullptr) continue;
    ++dag_lists;
    ASSERT_NE(list.dag->catalog, nullptr);
    ASSERT_FALSE(list.dag->catalog->empty());
    for (uint32_t l = 1; l <= list.max_length; ++l) {
      if (l - 1 >= list.dag->has_dedup.size() || !list.dag->has_dedup[l - 1]) {
        continue;
      }
      ++dedup_levels;
      const Column& dedup = list.dag->dedup[l - 1];
      const Column& full = list.columns[l - 1];
      ASSERT_LE(dedup.run_count(), full.run_count());
      runs_saved += full.run_count() - dedup.run_count();
      Column expanded =
          ExpandDedupColumn(dedup, *list.dag->catalog, list.dag->row_deltas, l);
      EXPECT_TRUE(ColumnsEqual(expanded, full))
          << index.terms()[t] << " level " << l;
      // The checked (untrusted-input) expander must agree on valid data.
      auto checked = ExpandDedupColumnChecked(dedup, *list.dag->catalog,
                                              list.dag->row_deltas, l);
      ASSERT_TRUE(checked.ok()) << checked.status().ToString();
      EXPECT_TRUE(ColumnsEqual(*checked, full));
    }
  }
  EXPECT_GT(dag_lists, 0u) << "repeated corpus produced no shared subtrees";
  EXPECT_GT(dedup_levels, 0u);
  EXPECT_GT(runs_saved, 0u) << "dedup columns saved no runs";
}

/// DAG + dictionary on vs off: every query result — both semantics, both
/// join policies, ranked and unranked — must be bit-identical.
TEST(DagCompressionTest, QueriesBitIdenticalWithCompressionOnAndOff) {
  XmlTree tree = RepeatedTree();
  IndexBuilder plain_builder(tree, BaseOptions());
  JDeweyIndex plain = plain_builder.BuildJDeweyIndex();

  IndexBuildOptions compressed_options = BaseOptions();
  compressed_options.enable_dag = true;
  compressed_options.enable_dict = true;
  IndexBuilder compressed_builder(tree, compressed_options);
  JDeweyIndex compressed = compressed_builder.BuildJDeweyIndex();
  EXPECT_TRUE(compressed.dictionary_compacted());

  const std::vector<std::vector<std::string>> queries = {
      {"alpha"}, {"beta"}, {"alpha", "beta"}, {"alpha", "beta", "gamma"}};
  for (const auto& keywords : queries) {
    for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
      for (JoinPolicy policy :
           {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
        JoinSearchOptions options;
        options.semantics = semantics;
        options.planner.policy = policy;
        JoinSearch want(plain, options);
        JoinSearch got(compressed, options);
        ExpectSameResults(got.Search(keywords), want.Search(keywords),
                          "join sem=" +
                              std::to_string(static_cast<int>(semantics)));
      }
      TopKSearchOptions topk;
      topk.semantics = semantics;
      topk.k = 5;
      MemoryTermSource plain_source(plain);
      MemoryTermSource compressed_source(compressed);
      TopKSearch want(&plain_source, topk);
      TopKSearch got(&compressed_source, topk);
      auto want_results = want.Search(keywords);
      auto got_results = got.Search(keywords);
      ASSERT_EQ(got_results.size(), want_results.size());
      for (size_t i = 0; i < got_results.size(); ++i) {
        EXPECT_EQ(got_results[i].score, want_results[i].score) << "rank " << i;
      }
    }
  }
}

/// The compacted dictionary serves the exact same directory surface.
TEST(DagCompressionTest, CompactedDictionaryServesSameDirectory) {
  XmlTree tree = RepeatedTree();
  IndexBuilder plain_builder(tree, BaseOptions());
  JDeweyIndex plain = plain_builder.BuildJDeweyIndex();

  IndexBuildOptions options = BaseOptions();
  options.enable_dict = true;
  IndexBuilder dict_builder(tree, options);
  JDeweyIndex dict = dict_builder.BuildJDeweyIndex();
  ASSERT_TRUE(dict.dictionary_compacted());
  EXPECT_GT(dict.term_dictionary().size(), 0u);

  for (const std::string& term : kTerms) {
    EXPECT_EQ(dict.Frequency(term), plain.Frequency(term)) << term;
    const JDeweyList* a = dict.GetList(term);
    const JDeweyList* b = plain.GetList(term);
    ASSERT_NE(a, nullptr) << term;
    ASSERT_NE(b, nullptr) << term;
    ExpectListsIdentical(*a, *b, term);
    const TermStats* sa = dict.StatsOf(term);
    const TermStats* sb = plain.StatsOf(term);
    ASSERT_EQ(sa != nullptr, sb != nullptr) << term;
    if (sa != nullptr) EXPECT_EQ(sa->rows, sb->rows) << term;
  }
  EXPECT_EQ(dict.Frequency("absent"), 0u);
  EXPECT_EQ(dict.GetList("absent"), nullptr);
}

/// XTOPK_DISABLE_DAG / XTOPK_DISABLE_DICT force the features off even when
/// the build options enable them.
TEST(DagCompressionTest, EnvKnobsForceCompressionOff) {
  XmlTree tree = RepeatedTree();
  IndexBuildOptions options = BaseOptions();
  options.enable_dag = true;
  options.enable_dict = true;

  ::setenv("XTOPK_DISABLE_DAG", "1", 1);
  ::setenv("XTOPK_DISABLE_DICT", "1", 1);
  IndexBuilder off_builder(tree, options);
  JDeweyIndex off = off_builder.BuildJDeweyIndex();
  ::unsetenv("XTOPK_DISABLE_DAG");
  ::unsetenv("XTOPK_DISABLE_DICT");

  EXPECT_FALSE(off.dictionary_compacted());
  for (const JDeweyList& list : off.lists()) {
    EXPECT_EQ(list.dag, nullptr);
  }
  // "0" means enabled.
  ::setenv("XTOPK_DISABLE_DAG", "0", 1);
  IndexBuilder on_builder(tree, options);
  JDeweyIndex on = on_builder.BuildJDeweyIndex();
  ::unsetenv("XTOPK_DISABLE_DAG");
  size_t dag_lists = 0;
  for (const JDeweyList& list : on.lists()) dag_lists += list.dag != nullptr;
  EXPECT_GT(dag_lists, 0u);
}

/// Disk format v3: dictionary-encoded terms + kDict row streams + DAG
/// column blobs must load back to lists bit-identical to the in-memory
/// build, serve the same directory surface, and answer queries exactly
/// like a legacy v2 segment of the same index.
TEST(DagCompressionTest, DiskV3RoundTripsBitIdentical) {
  XmlTree tree = RepeatedTree();
  IndexBuildOptions build_options = BaseOptions();
  build_options.enable_dag = true;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex index = builder.BuildJDeweyIndex();

  std::string v2_path = TempPath("dag_v3_roundtrip_v2");
  std::string v3_path = TempPath("dag_v3_roundtrip_v3");
  ASSERT_TRUE(
      DiskIndexWriter::Write(index, /*include_scores=*/true, v2_path).ok());
  DiskIndexWriter::Options write_options;
  write_options.dict_terms = true;
  write_options.dag = true;
  write_options.dict_rows = true;
  ASSERT_TRUE(DiskIndexWriter::Write(index, v3_path, write_options).ok());

  auto v2_env = DiskIndexEnv::Open(v2_path);
  ASSERT_TRUE(v2_env.ok()) << v2_env.status().ToString();
  auto v3_env = DiskIndexEnv::Open(v3_path);
  ASSERT_TRUE(v3_env.ok()) << v3_env.status().ToString();
  EXPECT_EQ((*v3_env)->term_count(), index.term_count());
  EXPECT_TRUE((*v3_env)->checksums_verified());

  // Directory surface + full list materialization against the in-memory
  // truth, term by term.
  auto session = (*v3_env)->NewSession();
  for (size_t t = 0; t < index.terms().size(); ++t) {
    const std::string& term = index.terms()[t];
    const JDeweyList& want = index.lists()[t];
    EXPECT_EQ((*v3_env)->Frequency(term), want.num_rows()) << term;
    EXPECT_EQ((*v3_env)->MaxLength(term), want.max_length) << term;
    auto got = session->LoadList(term, want.max_length, /*need_scores=*/true);
    ASSERT_TRUE(got.ok()) << term << ": " << got.status().ToString();
    ASSERT_NE(*got, nullptr) << term;
    ExpectListsIdentical(**got, want, term);
    if (want.dag != nullptr) {
      // The session list re-grew its DAG companion from the sidecar, so
      // the shared-subtree join path engages on the disk path too.
      ASSERT_NE((*got)->dag, nullptr) << term;
      for (uint32_t l = 1; l <= want.max_length; ++l) {
        bool want_dedup = l - 1 < want.dag->has_dedup.size() &&
                          want.dag->has_dedup[l - 1] != 0;
        bool got_dedup = l - 1 < (*got)->dag->has_dedup.size() &&
                         (*got)->dag->has_dedup[l - 1] != 0;
        ASSERT_EQ(got_dedup, want_dedup) << term << " level " << l;
        if (want_dedup) {
          EXPECT_TRUE(ColumnsEqual((*got)->dag->dedup[l - 1],
                                   want.dag->dedup[l - 1]))
              << term << " level " << l;
        }
      }
    }
  }
  EXPECT_EQ((*v3_env)->Frequency("absent"), 0u);

  // Query equivalence against the legacy container.
  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "beta"}, {"alpha", "beta", "gamma"}, {"gamma"}};
  for (const auto& keywords : queries) {
    for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
      JoinSearchOptions options;
      options.semantics = semantics;
      auto v2_session = (*v2_env)->NewSession();
      auto v3_session = (*v3_env)->NewSession();
      auto want = v2_session->SearchComplete(keywords, options);
      auto got = v3_session->SearchComplete(keywords, options);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(*got, *want, "disk v3 vs v2");

      TopKSearchOptions topk;
      topk.semantics = semantics;
      topk.k = 4;
      auto want_topk = (*v2_env)->NewSession()->SearchTopK(keywords, topk);
      auto got_topk = (*v3_env)->NewSession()->SearchTopK(keywords, topk);
      ASSERT_TRUE(want_topk.ok()) << want_topk.status().ToString();
      ASSERT_TRUE(got_topk.ok()) << got_topk.status().ToString();
      ASSERT_EQ(got_topk->size(), want_topk->size());
      for (size_t i = 0; i < got_topk->size(); ++i) {
        EXPECT_EQ((*got_topk)[i].score, (*want_topk)[i].score) << "rank " << i;
      }
    }
  }

  std::remove(v2_path.c_str());
  std::remove((v2_path + ".manifest").c_str());
  std::remove(v3_path.c_str());
  std::remove((v3_path + ".manifest").c_str());
}

/// The v3 container is strictly smaller than v2 on a repeated corpus, and
/// Write with all compression knobs off emits a file v2 readers' size
/// accounting expects (same bytes as the legacy overload).
TEST(DagCompressionTest, CompressedContainerIsSmallerOnRepeatedCorpus) {
  XmlTree tree = MakeRepeatedSubtreeTree(5, /*groups=*/3,
                                         /*copies_per_group=*/16, kTerms);
  IndexBuildOptions build_options = BaseOptions();
  build_options.enable_dag = true;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex index = builder.BuildJDeweyIndex();

  auto file_size = [](const std::string& path) -> long {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return -1;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
  };

  std::string v2_path = TempPath("dag_size_v2");
  std::string v3_path = TempPath("dag_size_v3");
  std::string passthrough = TempPath("dag_size_passthrough");
  ASSERT_TRUE(
      DiskIndexWriter::Write(index, /*include_scores=*/true, v2_path).ok());
  DiskIndexWriter::Options write_options;
  write_options.dict_terms = true;
  write_options.dag = true;
  write_options.dict_rows = true;
  ASSERT_TRUE(DiskIndexWriter::Write(index, v3_path, write_options).ok());
  ASSERT_TRUE(
      DiskIndexWriter::Write(index, passthrough, DiskIndexWriter::Options{})
          .ok());

  long v2 = file_size(v2_path), v3 = file_size(v3_path);
  ASSERT_GT(v2, 0);
  ASSERT_GT(v3, 0);
  // Page granularity makes small corpora coarse; "no larger" is the
  // invariant here, the >= 30% bar lives in the perf-smoke bench on a
  // corpus big enough to see past page rounding.
  EXPECT_LE(v3, v2);
  EXPECT_EQ(file_size(passthrough), v2) << "no-knob Options must stay legacy";

  std::remove(v2_path.c_str());
  std::remove((v2_path + ".manifest").c_str());
  std::remove(v3_path.c_str());
  std::remove((v3_path + ".manifest").c_str());
  std::remove(passthrough.c_str());
  std::remove((passthrough + ".manifest").c_str());
}

/// v3 manifests (front-coded term section) round-trip and stay readable
/// alongside v1/v2.
TEST(DagCompressionTest, ManifestV3RoundTrip) {
  XmlTree tree = RepeatedTree();
  IndexBuilder builder(tree, BaseOptions());
  JDeweyIndex index = builder.BuildJDeweyIndex();
  SegmentManifest manifest = ManifestFromSegment(index);
  manifest.covered_nodes = tree.node_count();

  std::string v2_path = TempPath("manifest_v3_as_v2");
  std::string v3_path = TempPath("manifest_v3");
  ASSERT_TRUE(manifest.Save(v2_path).ok());
  ASSERT_TRUE(manifest.SaveV3(v3_path).ok());

  auto v2 = SegmentManifest::Load(v2_path);
  auto v3 = SegmentManifest::Load(v3_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(v3->covered_nodes, manifest.covered_nodes);
  ASSERT_EQ(v3->terms.size(), v2->terms.size());
  for (size_t i = 0; i < v3->terms.size(); ++i) {
    EXPECT_EQ(v3->terms[i].term, v2->terms[i].term);
    EXPECT_EQ(v3->terms[i].rows, v2->terms[i].rows);
    EXPECT_EQ(v3->terms[i].max_tf, v2->terms[i].max_tf);
    EXPECT_EQ(v3->terms[i].levels.size(), v2->terms[i].levels.size());
  }

  // Truncation must always be rejected (the CRC trailer covers the body).
  std::FILE* f = std::fopen(v3_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) bytes.append(chunk, n);
  std::fclose(f);
  std::string cut_path = TempPath("manifest_v3_cut");
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, cut, out);
    std::fclose(out);
    EXPECT_FALSE(SegmentManifest::Load(cut_path).ok()) << "cut=" << cut;
  }

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(cut_path.c_str());
}

}  // namespace
}  // namespace xtopk
