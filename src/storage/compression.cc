#include "storage/compression.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/accounting.h"
#include "obs/metrics.h"
#include "storage/sparse_index.h"
#include "util/simd.h"
#include "util/varint.h"

namespace xtopk {

// Body decode of a group-varint column (after the generic codec byte +
// row count header). Defined below; befriended by GvbColumnReader.
Status DecodeGvbBody(const std::string& data, size_t* pos, uint32_t row_count,
                     const std::vector<uint32_t>* present_rows,
                     const ValueBounds* bounds, Column* column,
                     SkipDecodeStats* stats);

namespace {

// Header layout: codec byte, then run/row counts, then codec-specific body.

void EncodeRunLength(const Column& column, std::string* out) {
  // Triples (v, r, c), with v and r delta-encoded against the previous
  // triple (both are strictly increasing across runs).
  uint32_t prev_value = 0;
  uint32_t prev_row = 0;
  for (const Run& run : column.runs()) {
    varint::PutU32(out, run.value - prev_value);
    varint::PutU32(out, run.first_row - prev_row);
    varint::PutU32(out, run.count);
    prev_value = run.value;
    prev_row = run.first_row;
  }
}

void EncodeDelta(const Column& column, std::string* out) {
  // Per-row value stream in blocks: the first value of each block is
  // stored in full, subsequent values as deltas from their predecessor
  // (zero while a run spans rows). Row ids are implied by the list's
  // sequence lengths and are not written.
  uint32_t in_block = 0;
  uint32_t prev_value = 0;
  for (const Run& run : column.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) {
      if (in_block == 0) {
        varint::PutU32(out, run.value);
      } else {
        varint::PutU32(out, run.value - prev_value);
      }
      prev_value = run.value;
      if (++in_block == kDeltaBlockRows) in_block = 0;
    }
  }
}

// One group of up to four values: control byte (2-bit length codes, code =
// len - 1, lane order low to high), then the payload bytes little-endian.
void PutGvbGroup(const uint32_t* values, size_t n, std::string* out) {
  uint8_t ctrl = 0;
  uint8_t lens[4] = {1, 1, 1, 1};
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = values[i];
    uint8_t len = v < (1u << 8) ? 1 : v < (1u << 16) ? 2 : v < (1u << 24) ? 3
                                                                          : 4;
    lens[i] = len;
    ctrl |= static_cast<uint8_t>((len - 1) << (2 * i));
  }
  out->push_back(static_cast<char>(ctrl));
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = values[i];
    for (uint8_t b = 0; b < lens[i]; ++b) {
      out->push_back(static_cast<char>(v & 0xFF));
      v >>= 8;
    }
  }
}

void EncodeGroupVarint(const Column& column, std::string* out) {
  // Body: block_rows, block_count, skip directory, then the data section
  // (blocks back to back). Each block holds kGvbBlockRows per-row values —
  // the first in full, the rest as deltas from their predecessor — packed
  // as group varint, so every block decodes standalone and the directory's
  // (min, max) = (first, last) value because values are non-decreasing.
  std::vector<uint32_t> values;
  values.reserve(column.row_count());
  for (const Run& run : column.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) values.push_back(run.value);
  }
  varint::PutU32(out, kGvbBlockRows);
  uint32_t block_count = static_cast<uint32_t>(
      (values.size() + kGvbBlockRows - 1) / kGvbBlockRows);
  varint::PutU32(out, block_count);

  BlockSkipIndex skip;
  std::string data;
  std::vector<uint32_t> scratch;
  for (uint32_t b = 0; b < block_count; ++b) {
    size_t begin = static_cast<size_t>(b) * kGvbBlockRows;
    size_t end = std::min(begin + kGvbBlockRows, values.size());
    scratch.clear();
    scratch.push_back(values[begin]);
    for (size_t i = begin + 1; i < end; ++i) {
      scratch.push_back(values[i] - values[i - 1]);
    }
    size_t before = data.size();
    for (size_t g = 0; g < scratch.size(); g += 4) {
      PutGvbGroup(scratch.data() + g, std::min<size_t>(4, scratch.size() - g),
                  &data);
    }
    skip.AddBlock(values[begin], values[end - 1],
                  static_cast<uint32_t>(data.size() - before));
  }
  skip.Encode(out);
  out->append(data);
}

Status DecodeRunLength(const std::string& data, size_t* pos, uint32_t run_count,
                       Column* column) {
  // Each run encodes as at least three varint bytes, so a header claiming
  // more runs than the remaining buffer can hold is corrupt — checked
  // before the reserve so a damaged count can't trigger a huge allocation
  // (e.g. a bit-flipped codec byte reinterpreting a gvb row count).
  if (run_count > (data.size() - *pos) / 3) {
    return Status::Corruption("column: run count exceeds buffer");
  }
  uint32_t prev_value = 0;
  uint32_t prev_row = 0;
  column->ReserveRuns(run_count);
  for (uint32_t i = 0; i < run_count; ++i) {
    uint32_t dv = 0, dr = 0, count = 0;
    Status s = varint::GetU32(data, pos, &dv);
    if (s.ok()) s = varint::GetU32(data, pos, &dr);
    if (s.ok()) s = varint::GetU32(data, pos, &count);
    if (!s.ok()) return s;
    uint64_t value = static_cast<uint64_t>(prev_value) + dv;
    uint64_t row = static_cast<uint64_t>(prev_row) + dr;
    if (value > UINT32_MAX || row > UINT32_MAX) {
      return Status::Corruption("column: run delta overflow");
    }
    if (!column->AppendRunChecked(static_cast<uint32_t>(row),
                                  static_cast<uint32_t>(value), count)) {
      return Status::Corruption("column: invalid run");
    }
    prev_value = static_cast<uint32_t>(value);
    prev_row = static_cast<uint32_t>(row);
  }
  return Status::Ok();
}

Status DecodeDelta(const std::string& data, size_t* pos, uint32_t row_count,
                   const std::vector<uint32_t>* present_rows,
                   Column* column) {
  if (present_rows == nullptr) {
    return Status::InvalidArgument(
        "column: delta codec requires the present-row list");
  }
  if (present_rows->size() != row_count) {
    return Status::Corruption("column: present-row count mismatch");
  }
  uint32_t in_block = 0;
  uint32_t prev_value = 0;
  column->ReserveRuns(row_count);
  for (uint32_t i = 0; i < row_count; ++i) {
    uint32_t v = 0;
    Status s = varint::GetU32(data, pos, &v);
    if (!s.ok()) return s;
    uint64_t value64 = in_block == 0
                           ? static_cast<uint64_t>(v)
                           : static_cast<uint64_t>(prev_value) + v;
    if (value64 > UINT32_MAX) {
      return Status::Corruption("column: delta value overflow");
    }
    uint32_t value = static_cast<uint32_t>(value64);
    if (!column->AppendRunChecked((*present_rows)[i], value, 1)) {
      return Status::Corruption("column: non-monotonic delta value");
    }
    prev_value = value;
    if (++in_block == kDeltaBlockRows) in_block = 0;
  }
  return Status::Ok();
}

void EncodeDictColumn(const Column& column, std::string* out) {
  // Dictionary section first: all distinct values as one monotone
  // delta-coded stream (runs are maximal, so one value per run). Then the
  // run structure; the run's code is its position, so codes are implicit.
  uint32_t prev_value = 0;
  for (const Run& run : column.runs()) {
    varint::PutU32(out, run.value - prev_value);
    prev_value = run.value;
  }
  uint32_t prev_row = 0;
  for (const Run& run : column.runs()) {
    varint::PutU32(out, run.first_row - prev_row);
    varint::PutU32(out, run.count);
    prev_row = run.first_row;
  }
}

Status DecodeDictColumn(const std::string& data, size_t* pos,
                        uint32_t run_count, Column* column) {
  // Each run costs >= 3 bytes across the two sections; bound the count
  // before reserving (same defense as DecodeRunLength).
  if (run_count > (data.size() - *pos) / 3) {
    return Status::Corruption("column: dict run count exceeds buffer");
  }
  std::vector<uint32_t> values(run_count);
  uint32_t prev_value = 0;
  for (uint32_t i = 0; i < run_count; ++i) {
    uint32_t dv = 0;
    Status s = varint::GetU32(data, pos, &dv);
    if (!s.ok()) return s;
    uint64_t value = static_cast<uint64_t>(prev_value) + dv;
    if (value > UINT32_MAX) {
      return Status::Corruption("column: dict value overflow");
    }
    values[i] = static_cast<uint32_t>(value);
    prev_value = values[i];
  }
  uint32_t prev_row = 0;
  column->ReserveRuns(run_count);
  for (uint32_t i = 0; i < run_count; ++i) {
    uint32_t dr = 0, count = 0;
    Status s = varint::GetU32(data, pos, &dr);
    if (s.ok()) s = varint::GetU32(data, pos, &count);
    if (!s.ok()) return s;
    uint64_t row = static_cast<uint64_t>(prev_row) + dr;
    if (row > UINT32_MAX) {
      return Status::Corruption("column: dict row overflow");
    }
    if (!column->AppendRunChecked(static_cast<uint32_t>(row), values[i],
                                  count)) {
      return Status::Corruption("column: invalid dict run");
    }
    prev_row = static_cast<uint32_t>(row);
  }
  return Status::Ok();
}

void EncodeColumnImpl(const Column& column, ColumnCodec codec,
                      std::string* out, bool count_metrics) {
  if (codec == ColumnCodec::kAuto) codec = ChooseCodec(column);
  size_t before = out->size();
  out->push_back(static_cast<char>(codec));
  switch (codec) {
    case ColumnCodec::kRunLength:
      varint::PutU32(out, static_cast<uint32_t>(column.run_count()));
      EncodeRunLength(column, out);
      if (count_metrics) XTOPK_COUNTER("storage.codec.rle_encodes").Add(1);
      break;
    case ColumnCodec::kGroupVarint:
      varint::PutU32(out, column.row_count());
      EncodeGroupVarint(column, out);
      if (count_metrics) XTOPK_COUNTER("storage.codec.gvb_encodes").Add(1);
      break;
    case ColumnCodec::kDict:
      varint::PutU32(out, static_cast<uint32_t>(column.run_count()));
      EncodeDictColumn(column, out);
      if (count_metrics) XTOPK_COUNTER("storage.codec.dict_encodes").Add(1);
      break;
    default:
      varint::PutU32(out, column.row_count());
      EncodeDelta(column, out);
      if (count_metrics) XTOPK_COUNTER("storage.codec.delta_encodes").Add(1);
      break;
  }
  if (count_metrics) {
    XTOPK_COUNTER("storage.codec.encoded_bytes").Add(out->size() - before);
  }
}

Status DecodeColumnImpl(const std::string& data, size_t* pos,
                        const std::vector<uint32_t>* present_rows,
                        const ValueBounds* bounds, Column* column,
                        SkipDecodeStats* stats) {
  if (*pos >= data.size()) return Status::Corruption("column: empty buffer");
  const size_t start = *pos;
  uint8_t codec_byte = static_cast<uint8_t>(data[(*pos)++]);
  uint32_t count = 0;
  Status s = varint::GetU32(data, pos, &count);
  if (!s.ok()) return s;
  switch (static_cast<ColumnCodec>(codec_byte)) {
    case ColumnCodec::kRunLength:
      XTOPK_COUNTER("storage.codec.rle_decodes").Add(1);
      s = DecodeRunLength(data, pos, count, column);
      break;
    case ColumnCodec::kDelta:
      XTOPK_COUNTER("storage.codec.delta_decodes").Add(1);
      s = DecodeDelta(data, pos, count, present_rows, column);
      break;
    case ColumnCodec::kGroupVarint:
      XTOPK_COUNTER("storage.codec.gvb_decodes").Add(1);
      s = DecodeGvbBody(data, pos, count, present_rows, bounds, column, stats);
      break;
    case ColumnCodec::kDict:
      XTOPK_COUNTER("storage.codec.dict_decodes").Add(1);
      s = DecodeDictColumn(data, pos, count, column);
      break;
    default:
      return Status::Corruption("column: unknown codec byte");
  }
  // Attribute the consumed encoded bytes (header included) to the in-flight
  // query, whether the decode was full or skip-based.
  if (s.ok()) obs::AccountBytesDecoded(*pos - start);
  return s;
}

}  // namespace

Status GvbColumnReader::Open(const std::string& data, size_t pos) {
  if (pos >= data.size()) return Status::Corruption("column: empty buffer");
  uint8_t codec_byte = static_cast<uint8_t>(data[pos++]);
  if (static_cast<ColumnCodec>(codec_byte) != ColumnCodec::kGroupVarint) {
    return Status::InvalidArgument("column: not a group-varint column");
  }
  uint32_t row_count = 0;
  Status s = varint::GetU32(data, &pos, &row_count);
  if (!s.ok()) return s;
  return OpenBody(data, pos, row_count);
}

Status GvbColumnReader::OpenBody(const std::string& data, size_t pos,
                                 uint32_t row_count) {
  data_ = &data;
  row_count_ = row_count;
  Status s = varint::GetU32(data, &pos, &block_rows_);
  uint32_t block_count = 0;
  if (s.ok()) s = varint::GetU32(data, &pos, &block_count);
  if (!s.ok()) return s;
  if (block_rows_ == 0) {
    return Status::Corruption("column: gvb zero block rows");
  }
  uint64_t expected_blocks =
      (static_cast<uint64_t>(row_count_) + block_rows_ - 1) / block_rows_;
  if (block_count != expected_blocks) {
    return Status::Corruption("column: gvb block count mismatch");
  }
  s = BlockSkipIndex::Decode(data, &pos, &skip_);
  if (!s.ok()) return s;
  if (skip_.block_count() != block_count) {
    return Status::Corruption("column: gvb directory size mismatch");
  }
  data_start_ = pos;
  if (data_start_ + skip_.data_bytes() > data.size()) {
    return Status::Corruption("column: gvb data section truncated");
  }
  end_pos_ = data_start_ + static_cast<size_t>(skip_.data_bytes());
  return Status::Ok();
}

uint32_t GvbColumnReader::rows_in_block(size_t b) const {
  size_t row_offset = b * block_rows_;
  return static_cast<uint32_t>(
      std::min<size_t>(block_rows_, row_count_ - row_offset));
}

Status GvbColumnReader::DecodeBlock(size_t b,
                                    const std::vector<uint32_t>& present_rows,
                                    Column* column) const {
  if (data_ == nullptr || b >= block_count()) {
    return Status::InvalidArgument("column: gvb block out of range");
  }
  if (present_rows.size() != row_count_) {
    return Status::Corruption("column: present-row count mismatch");
  }
  const std::string& data = *data_;
  size_t block_start = data_start_ + static_cast<size_t>(skip_.byte_offset(b));
  uint32_t byte_len = skip_.byte_len(b);
  uint32_t rows = rows_in_block(b);
  if (block_start + byte_len > data.size()) {
    return Status::Corruption("column: gvb block past end of buffer");
  }
  // The kernel gets the whole remaining buffer so the SIMD path keeps its
  // 16-byte load slack mid-blob; the consumed-byte check against the
  // directory's byte_len catches corruption.
  uint32_t stack_buf[kGvbBlockRows];
  std::vector<uint32_t> heap_buf;
  uint32_t* values = stack_buf;
  if (rows > kGvbBlockRows) {
    heap_buf.resize(rows);
    values = heap_buf.data();
  }
  size_t consumed = simd::GvbDecodeValues(
      reinterpret_cast<const uint8_t*>(data.data()) + block_start,
      data.size() - block_start, values, rows);
  if (consumed != byte_len) {
    return Status::Corruption("column: gvb block length mismatch");
  }
  for (uint32_t i = 1; i < rows; ++i) {
    uint32_t prev = values[i - 1];
    values[i] += prev;
    if (values[i] < prev) {  // wrapped: a damaged delta, not Prop 3.1 data
      return Status::Corruption("column: gvb value overflow");
    }
  }
  // Whole runs at a time: a stretch of equal values over consecutive
  // present rows is one AppendRun, not `rows` Appends.
  size_t row_offset = b * block_rows_;
  uint32_t i = 0;
  while (i < rows) {
    uint32_t value = values[i];
    uint32_t first = present_rows[row_offset + i];
    uint32_t j = i + 1;
    while (j < rows && values[j] == value &&
           present_rows[row_offset + j] == first + (j - i)) {
      ++j;
    }
    if (!column->AppendRunChecked(first, value, j - i)) {
      return Status::Corruption("column: gvb non-monotonic run");
    }
    i = j;
  }
  XTOPK_COUNTER("storage.skip.blocks_decoded").Add(1);
  return Status::Ok();
}

Status DecodeGvbBody(const std::string& data, size_t* pos, uint32_t row_count,
                     const std::vector<uint32_t>* present_rows,
                     const ValueBounds* bounds, Column* column,
                     SkipDecodeStats* stats) {
  if (present_rows == nullptr) {
    return Status::InvalidArgument(
        "column: group-varint codec requires the present-row list");
  }
  if (present_rows->size() != row_count) {
    return Status::Corruption("column: present-row count mismatch");
  }
  GvbColumnReader reader;
  Status s = reader.OpenBody(data, *pos, row_count);
  if (!s.ok()) return s;
  // The blob's extent is fixed regardless of how many blocks we decode.
  *pos = reader.end_pos();

  BlockSkipIndex::Range range{0, reader.block_count()};
  if (bounds != nullptr) range = reader.skip().ProbeRange(bounds->lo,
                                                          bounds->hi);
  // Upper-bound the run count by the rows in the selected block range so
  // distinct-heavy columns allocate once instead of doubling up.
  column->ReserveRuns(std::min<size_t>(
      row_count, (range.hi - range.lo) * kGvbBlockRows));
  for (size_t b = range.lo; b < range.hi; ++b) {
    s = reader.DecodeBlock(b, *present_rows, column);
    if (!s.ok()) return s;
  }
  uint64_t decoded = range.hi - range.lo;
  uint64_t skipped = reader.block_count() - decoded;
  if (stats != nullptr) {
    stats->blocks_decoded += decoded;
    stats->blocks_skipped += skipped;
  }
  if (skipped > 0) XTOPK_COUNTER("storage.skip.blocks_skipped").Add(skipped);
  return Status::Ok();
}

ColumnCodec ChooseCodec(const Column& column) {
  if (column.run_count() == 0) return ColumnCodec::kRunLength;
  double avg_run = static_cast<double>(column.row_count()) /
                   static_cast<double>(column.run_count());
  return avg_run >= kRleThreshold ? ColumnCodec::kRunLength
                                  : ColumnCodec::kGroupVarint;
}

void EncodeColumn(const Column& column, ColumnCodec codec, std::string* out) {
  EncodeColumnImpl(column, codec, out, /*count_metrics=*/true);
}

Status DecodeColumn(const std::string& data, size_t* pos,
                    const std::vector<uint32_t>* present_rows,
                    Column* column) {
  return DecodeColumnImpl(data, pos, present_rows, /*bounds=*/nullptr, column,
                          /*stats=*/nullptr);
}

Status DecodeColumnWithBounds(const std::string& data, size_t* pos,
                              const std::vector<uint32_t>* present_rows,
                              const ValueBounds& bounds, Column* column,
                              SkipDecodeStats* stats) {
  return DecodeColumnImpl(data, pos, present_rows, &bounds, column, stats);
}

size_t EncodedColumnSize(const Column& column, ColumnCodec codec) {
  std::string buf;
  EncodeColumnImpl(column, codec, &buf, /*count_metrics=*/false);
  return buf.size();
}

void EncodeDictRows(const std::vector<uint32_t>& values, std::string* out) {
  XTOPK_COUNTER("storage.codec.dict_encodes").Add(1);
  out->push_back(static_cast<char>(ColumnCodec::kDict));
  varint::PutU32(out, static_cast<uint32_t>(values.size()));
  std::vector<uint32_t> distinct = values;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  varint::PutU32(out, static_cast<uint32_t>(distinct.size()));
  uint32_t prev = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    varint::PutU32(out, distinct[i] - prev);
    prev = distinct[i];
  }
  uint32_t width = 0;
  while (distinct.size() > (1ull << width)) ++width;
  out->push_back(static_cast<char>(width));
  if (width == 0 || values.empty()) return;
  uint64_t acc = 0;
  uint32_t bits = 0;
  for (uint32_t v : values) {
    uint32_t code = static_cast<uint32_t>(
        std::lower_bound(distinct.begin(), distinct.end(), v) -
        distinct.begin());
    acc |= static_cast<uint64_t>(code) << bits;
    bits += width;
    while (bits >= 8) {
      out->push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out->push_back(static_cast<char>(acc & 0xFF));
}

Status DecodeDictRows(const std::string& data, size_t* pos,
                      size_t expected_rows, std::vector<uint32_t>* out) {
  if (*pos >= data.size()) {
    return Status::Corruption("dict rows: empty buffer");
  }
  if (static_cast<ColumnCodec>(data[(*pos)++]) != ColumnCodec::kDict) {
    return Status::Corruption("dict rows: bad codec byte");
  }
  XTOPK_COUNTER("storage.codec.dict_decodes").Add(1);
  uint32_t rows = 0, ndistinct = 0;
  Status s = varint::GetU32(data, pos, &rows);
  if (s.ok()) s = varint::GetU32(data, pos, &ndistinct);
  if (!s.ok()) return s;
  if (rows != expected_rows) {
    return Status::Corruption("dict rows: row count mismatch");
  }
  if (ndistinct > rows || (rows > 0 && ndistinct == 0)) {
    return Status::Corruption("dict rows: bad distinct count");
  }
  // Each distinct value costs >= 1 byte (same defense as the column
  // decoders: a damaged count must not drive a huge allocation).
  if (ndistinct > data.size() - *pos) {
    return Status::Corruption("dict rows: distinct count exceeds buffer");
  }
  std::vector<uint32_t> distinct(ndistinct);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < ndistinct; ++i) {
    uint32_t dv = 0;
    s = varint::GetU32(data, pos, &dv);
    if (!s.ok()) return s;
    if (i > 0 && dv == 0) {
      return Status::Corruption("dict rows: dictionary not strictly sorted");
    }
    uint64_t v = static_cast<uint64_t>(prev) + dv;
    if (v > UINT32_MAX) return Status::Corruption("dict rows: value overflow");
    distinct[i] = static_cast<uint32_t>(v);
    prev = distinct[i];
  }
  if (*pos >= data.size()) {
    return Status::Corruption("dict rows: truncated before code width");
  }
  uint32_t width = static_cast<uint8_t>(data[(*pos)++]);
  uint32_t expect_width = 0;
  while (ndistinct > (1ull << expect_width)) ++expect_width;
  if (width != expect_width) {
    return Status::Corruption("dict rows: code width mismatch");
  }
  out->assign(rows, ndistinct > 0 ? distinct[0] : 0);
  if (width == 0 || rows == 0) return Status::Ok();
  size_t packed_bytes = (static_cast<size_t>(rows) * width + 7) / 8;
  if (*pos + packed_bytes > data.size()) {
    return Status::Corruption("dict rows: packed codes truncated");
  }
  uint64_t acc = 0;
  uint32_t bits = 0;
  size_t byte = *pos;
  const uint32_t mask =
      width >= 32 ? UINT32_MAX : (1u << width) - 1;
  for (uint32_t r = 0; r < rows; ++r) {
    while (bits < width) {
      acc |= static_cast<uint64_t>(static_cast<uint8_t>(data[byte++])) << bits;
      bits += 8;
    }
    uint32_t code = static_cast<uint32_t>(acc & mask);
    acc >>= width;
    bits -= width;
    if (code >= ndistinct) {
      return Status::Corruption("dict rows: code out of range");
    }
    (*out)[r] = distinct[code];
  }
  *pos += packed_bytes;
  return Status::Ok();
}

}  // namespace xtopk
