#include "storage/segment_manifest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "storage/dictionary.h"
#include "util/crc32c.h"
#include "util/varint.h"

namespace xtopk {

namespace {
constexpr char kMagicV1[] = "XTKSMAN1";
constexpr char kMagicV2[] = "XTKSMAN2";
constexpr char kMagicV3[] = "XTKSMAN3";
constexpr size_t kMagicLen = 8;

void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutHistogram(std::string* buf, const LevelHistogram& hist) {
  varint::PutU64(buf, hist.buckets().size());
  uint64_t prev_hi = 0;
  for (const LevelHistogram::Bucket& b : hist.buckets()) {
    varint::PutU64(buf, b.lo - prev_hi);
    varint::PutU32(buf, b.hi - b.lo);
    varint::PutU64(buf, static_cast<uint64_t>(std::llround(b.count)));
    prev_hi = b.hi;
  }
}

Status GetHistogram(const std::string& body, size_t* pos, const char* path,
                    LevelHistogram* hist) {
  uint64_t bucket_count = 0;
  Status s = varint::GetU64(body, pos, &bucket_count);
  if (!s.ok()) return s;
  if (bucket_count > body.size()) {  // each bucket needs >= 3 bytes
    return Status::Corruption(std::string("manifest histogram overruns: ") +
                              path);
  }
  std::vector<LevelHistogram::Bucket> buckets;
  buckets.reserve(bucket_count);
  uint64_t prev_hi = 0;
  for (uint64_t i = 0; i < bucket_count; ++i) {
    uint64_t lo_delta = 0;
    uint32_t width = 0;
    uint64_t count = 0;
    s = varint::GetU64(body, pos, &lo_delta);
    if (s.ok()) s = varint::GetU32(body, pos, &width);
    if (s.ok()) s = varint::GetU64(body, pos, &count);
    if (!s.ok()) return s;
    LevelHistogram::Bucket b;
    uint64_t lo = prev_hi + lo_delta;
    uint64_t hi = lo + width;
    if (hi > 0xFFFFFFFFull) {
      return Status::Corruption(std::string("manifest bucket out of range: ") +
                                path);
    }
    b.lo = static_cast<uint32_t>(lo);
    b.hi = static_cast<uint32_t>(hi);
    b.count = static_cast<double>(count);
    prev_hi = hi;
    buckets.push_back(b);
  }
  if (!hist->AssignChecked(std::move(buckets))) {
    return Status::Corruption(std::string("manifest histogram invalid: ") +
                              path);
  }
  return Status::Ok();
}

Status WriteBuffer(const std::string& buf, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create manifest: " + path);
  }
  size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  int closed = std::fclose(f);
  if (written != buf.size() || closed != 0) {
    return Status::IoError("short manifest write: " + path);
  }
  return Status::Ok();
}

Status SaveImpl(const SegmentManifest& manifest, const std::string& path,
                bool with_histograms) {
  std::string buf(with_histograms ? kMagicV2 : kMagicV1, kMagicLen);
  varint::PutU64(&buf, manifest.covered_nodes);
  varint::PutU64(&buf, manifest.terms.size());
  for (const SegmentTermStats& t : manifest.terms) {
    varint::PutU64(&buf, t.term.size());
    buf.append(t.term);
    varint::PutU32(&buf, t.rows);
    varint::PutU32(&buf, t.max_tf);
    if (with_histograms) {
      varint::PutU64(&buf, t.levels.size());
      for (const LevelHistogram& hist : t.levels) {
        PutHistogram(&buf, hist);
      }
    }
  }
  PutFixed32(&buf, crc32c::Compute(buf));
  return WriteBuffer(buf, path);
}
}  // namespace

Status SegmentManifest::Save(const std::string& path) const {
  return SaveImpl(*this, path, /*with_histograms=*/true);
}

Status SegmentManifest::SaveV1(const std::string& path) const {
  return SaveImpl(*this, path, /*with_histograms=*/false);
}

Status SegmentManifest::SaveV3(const std::string& path) const {
  // Term order in the file is dictionary-code order (sorted); `terms` is
  // sorted by convention, but re-derive the order so the writer never
  // depends on it.
  std::vector<uint32_t> order(terms.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return terms[a].term < terms[b].term;
  });
  std::vector<std::string> names;
  names.reserve(terms.size());
  for (uint32_t i : order) names.push_back(terms[i].term);
  auto dict = FrontCodedDict::Build(names);
  if (!dict.ok()) return dict.status();

  std::string buf(kMagicV3, kMagicLen);
  varint::PutU64(&buf, covered_nodes);
  varint::PutU64(&buf, terms.size());
  dict->Serialize(&buf);
  for (uint32_t i : order) {
    const SegmentTermStats& t = terms[i];
    varint::PutU32(&buf, t.rows);
    varint::PutU32(&buf, t.max_tf);
    varint::PutU64(&buf, t.levels.size());
    for (const LevelHistogram& hist : t.levels) PutHistogram(&buf, hist);
  }
  PutFixed32(&buf, crc32c::Compute(buf));
  return WriteBuffer(buf, path);
}

StatusOr<SegmentManifest> SegmentManifest::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open manifest: " + path);
  }
  std::string buf;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  std::fclose(f);

  if (buf.size() < kMagicLen + 4) {
    return Status::Corruption("bad manifest magic: " + path);
  }
  bool v2 = buf.compare(0, kMagicLen, kMagicV2) == 0;
  bool v3 = buf.compare(0, kMagicLen, kMagicV3) == 0;
  if (!v2 && !v3 && buf.compare(0, kMagicLen, kMagicV1) != 0) {
    return Status::Corruption("bad manifest magic: " + path);
  }
  std::string body = buf.substr(0, buf.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<unsigned char>(buf[buf.size() - 4 + i]))
              << (8 * i);
  }
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  SegmentManifest manifest;
  size_t pos = kMagicLen;
  uint64_t term_count = 0;
  Status s = varint::GetU64(body, &pos, &manifest.covered_nodes);
  if (s.ok()) s = varint::GetU64(body, &pos, &term_count);
  if (!s.ok()) return s;
  if (term_count > body.size()) {
    return Status::Corruption("manifest term count overruns buffer: " + path);
  }
  // v3: the names live in one front-coded dictionary ahead of the
  // per-term records; code order == record order.
  std::vector<std::string> dict_names;
  if (v3) {
    auto dict = FrontCodedDict::Deserialize(body, &pos);
    if (!dict.ok()) return dict.status();
    if (dict->size() != term_count) {
      return Status::Corruption("manifest dictionary size mismatch: " + path);
    }
    dict_names = dict->DecodeAll();
  }
  manifest.terms.reserve(term_count);
  for (uint64_t i = 0; i < term_count; ++i) {
    SegmentTermStats t;
    if (v3) {
      t.term = std::move(dict_names[i]);
    } else {
      uint64_t len = 0;
      s = varint::GetU64(body, &pos, &len);
      if (!s.ok()) return s;
      if (pos + len > body.size()) {
        return Status::Corruption("manifest term overruns buffer: " + path);
      }
      t.term.assign(body, pos, len);
      pos += len;
    }
    s = varint::GetU32(body, &pos, &t.rows);
    if (s.ok()) s = varint::GetU32(body, &pos, &t.max_tf);
    if (!s.ok()) return s;
    if (v2 || v3) {
      uint64_t level_count = 0;
      s = varint::GetU64(body, &pos, &level_count);
      if (!s.ok()) return s;
      if (level_count > body.size()) {
        return Status::Corruption("manifest level count overruns buffer: " +
                                  path);
      }
      t.levels.resize(level_count);
      for (uint64_t l = 0; l < level_count; ++l) {
        s = GetHistogram(body, &pos, path.c_str(), &t.levels[l]);
        if (!s.ok()) return s;
      }
    }
    manifest.terms.push_back(std::move(t));
  }
  return manifest;
}

}  // namespace xtopk
