#ifndef XTOPK_STORAGE_MANIFEST_LOG_H_
#define XTOPK_STORAGE_MANIFEST_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace xtopk {

/// The write-ahead log of a durable segment set (DESIGN.md §17). Segment
/// FILES are immutable once written; what changes over time is the SET of
/// live segments, and this log is that set's single durable source of
/// truth. Every transition appends one record; the file itself is the
/// commit point, so a crash at any byte leaves either "operation fully
/// logged" or "operation never happened".
enum class ManifestRecordType : uint8_t {
  /// A memtable seal: segment `id` now covers `covered_nodes` nodes and
  /// the sealed watermark advanced to `watermark` (the tree node count at
  /// seal time). Written AFTER the segment + encoding files are durable.
  kSeal = 1,
  /// A compaction reserved output id `id` for merging `inputs`. The
  /// output file is not durable yet — recovery treats the inputs as still
  /// live and deletes a half-written output as an orphan.
  kCompactBegin = 2,
  /// The compaction's output file is durable: `id` replaces `inputs` in
  /// the live set. This record is the atomic switch-over.
  kCompactCommit = 3,
  /// Segment `id` (already out of the live set, or dropped by a rebuild)
  /// may be deleted from disk. Makes file GC crash-safe: recovery deletes
  /// any segment file whose id is not live, logged drop or not.
  kDrop = 4,
};

const char* ManifestRecordTypeName(ManifestRecordType type);

/// One log record. Field use by type: kSeal uses id + covered_nodes +
/// watermark; kCompactBegin/kCompactCommit use id (the output) + inputs
/// (+ covered_nodes on commit, informational); kDrop uses id only. A
/// commit with a non-zero watermark is a durable FULL REBUILD: the output
/// covers the whole tree, the watermark advances, and the output's
/// encoding snapshot becomes authoritative.
struct ManifestRecord {
  ManifestRecordType type = ManifestRecordType::kSeal;
  uint64_t id = 0;
  uint64_t covered_nodes = 0;
  uint64_t watermark = 0;
  std::vector<uint64_t> inputs;
};

/// Append-only CRC-framed record log:
///
///   magic "XTKMLOG1"
///   per record: varint body_len | body | fixed32 LE CRC32C(body)
///   body: u8 type | varint payload (see EncodeRecord)
///
/// Append fsyncs, so a returned Ok means the record survives power loss.
/// Replay stops at the first invalid frame (bad length, bad CRC, unknown
/// type, short tail) and reports the valid prefix length — the LevelDB
/// torn-tail policy: everything before the damage is trusted, everything
/// from it on is discarded.
///
/// Appends route through the process-wide FaultInjector at site
/// "manifestlog.append": kTruncate/kShortRead write a seed-chosen prefix
/// of the frame and fail (a torn write at the crash point), kBitFlip
/// flips one frame bit and succeeds (silent media damage, caught by
/// replay), kTransientIoError writes nothing and fails.
class ManifestLog {
 public:
  /// Opens (creating, with the magic header, if absent or empty) for
  /// appending. An existing file is NOT validated here — run Replay /
  /// RecoverSegmentSet first and truncate damage before appending.
  static StatusOr<std::unique_ptr<ManifestLog>> Open(const std::string& path);

  ~ManifestLog();
  ManifestLog(const ManifestLog&) = delete;
  ManifestLog& operator=(const ManifestLog&) = delete;

  /// Appends one framed record and fsyncs. Thread-safe.
  Status Append(const ManifestRecord& record);

  const std::string& path() const { return path_; }

  /// Serializes one record as its on-disk frame (length + body + CRC).
  static void EncodeRecord(const ManifestRecord& record, std::string* out);

  /// Parses all valid records. `valid_bytes`, when non-null, receives the
  /// byte offset of the first invalid frame (== file size when the whole
  /// log is clean) — the truncation point for recovery. A missing file or
  /// a bad magic is an error; a damaged tail is NOT (that is the torn
  /// crash case recovery exists for).
  static StatusOr<std::vector<ManifestRecord>> Replay(
      const std::string& path, uint64_t* valid_bytes = nullptr);

 private:
  ManifestLog(std::string path, std::FILE* file);

  std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// The segment set RecoverSegmentSet proved consistent.
struct RecoveredSegmentSet {
  /// Live segment ids in publish order (seal order, with compaction
  /// outputs taking their first input's position).
  std::vector<uint64_t> live;
  uint64_t next_segment_id = 1;
  /// Nodes [0, watermark) are covered by the live segments.
  uint64_t watermark = 0;
  /// The seal whose encoding snapshot (enc-<id>) is authoritative; 0 when
  /// nothing was ever sealed.
  uint64_t last_seal_id = 0;
  size_t records_applied = 0;
  /// Orphaned / dropped files deleted during recovery (file names, not
  /// paths); tests assert this against the injected crash point.
  std::vector<std::string> removed_files;
};

/// File-layout helpers of a durable data directory: the log plus
/// `seg-<id>` (+ `seg-<id>.manifest`) segment files and `enc-<id>` JDewey
/// encoding snapshots.
std::string ManifestLogPath(const std::string& dir);
std::string SegmentFilePath(const std::string& dir, uint64_t id);
std::string EncodingFilePath(const std::string& dir, uint64_t id);

/// Replays `dir`'s manifest log and makes the directory agree with it:
/// truncates the log's torn tail (if any), deletes segment files that no
/// live id claims (torn seals, uncommitted compaction outputs, dropped
/// inputs) and encoding snapshots other than the authoritative one. A
/// missing log yields an empty set (fresh directory). After this returns,
/// every `seg-<id>` on disk is live and readable-or-never-committed — the
/// "consistent set on reopen" proof the tests sweep.
StatusOr<RecoveredSegmentSet> RecoverSegmentSet(const std::string& dir);

}  // namespace xtopk

#endif  // XTOPK_STORAGE_MANIFEST_LOG_H_
