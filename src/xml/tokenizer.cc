#include "xml/tokenizer.h"

namespace xtopk {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  ForEachToken(text, [&](const std::string& token) { out.push_back(token); });
  return out;
}

std::unordered_map<std::string, uint32_t> Tokenizer::TermFrequencies(
    std::string_view text) const {
  std::unordered_map<std::string, uint32_t> tf;
  ForEachToken(text, [&](const std::string& token) { ++tf[token]; });
  return tf;
}

}  // namespace xtopk
