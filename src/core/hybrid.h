#ifndef XTOPK_CORE_HYBRID_H_
#define XTOPK_CORE_HYBRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "core/search_result.h"
#include "core/topk_search.h"
#include "index/topk_index.h"

namespace xtopk {

/// Options of the hybrid top-K planner.
struct HybridOptions {
  Semantics semantics = Semantics::kElca;
  size_t k = 10;
  /// Estimated result-count threshold at or above which the top-K join is
  /// chosen; below it the query keywords are assumed weakly correlated and
  /// the complete join-based evaluation (+ sort) wins (paper Fig. 10
  /// discussion: the top-K join "only performs well when the number of
  /// results is fairly large").
  double topk_min_estimated_results = 8.0;
  /// Number of runs sampled from the two shortest lists per level for the
  /// cardinality estimate.
  size_t sample_runs = 256;
  ScoringParams scoring;
  /// Per-query span tree ("hybrid_plan" span records the estimate and the
  /// decision; the chosen algorithm adds its own spans underneath). Null
  /// disables tracing at zero cost.
  obs::QueryTrace* trace = nullptr;
};

/// What the planner decided and why (exposed for tests/benches).
struct HybridDecision {
  bool used_topk_join = false;
  double estimated_results = 0.0;
};

/// The hybrid index/planner the paper sketches in §V-D: both the
/// JDewey-order and the score-order representations are available, and a
/// join-cardinality estimate — sampled value-overlap between the shortest
/// lists' columns — selects the top-K join for correlated keywords and the
/// complete join for uncorrelated ones.
class HybridSearch {
 public:
  HybridSearch(const TopKIndex& index, HybridOptions options = {});

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  const HybridDecision& decision() const { return decision_; }

  /// The sampled cardinality estimate on its own (tests).
  double EstimateResultCount(const std::vector<std::string>& keywords) const;

 private:
  const TopKIndex& index_;
  HybridOptions options_;
  HybridDecision decision_;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_HYBRID_H_
