#ifndef XTOPK_BASELINE_NAIVE_H_
#define XTOPK_BASELINE_NAIVE_H_

#include <string>
#include <vector>

#include "core/scoring.h"
#include "core/search_result.h"
#include "index/dewey_index.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct NaiveOptions {
  bool compute_scores = true;
  ScoringParams scoring;
};

/// Direct-from-definition evaluation of the ELCA / SLCA semantics (§II-A),
/// by whole-tree aggregation. O(n·k) per query — the correctness oracle for
/// the property tests, not a competitive baseline.
///
/// Semantics (the paper's operational definition — see DESIGN.md §5):
///  * ELCA is recursive: processing the tree bottom-up, u is an ELCA iff
///    every keyword keeps >= 1 occurrence under u that is not consumed by a
///    descendant ELCA (an ELCA consumes its whole subtree). This is what
///    Algorithm 1, the range checking of §III-E, and XRank's DIL compute;
///    the paper's §II example (1.1 loses to the ELCA 1.1.2) matches.
///  * u is an SLCA iff u contains all keywords and no child of u does
///    ("contains all" is upward-closed, so no-descendant == no-child).
class NaiveOracle {
 public:
  NaiveOracle(const XmlTree& tree, const DeweyIndex& index,
              NaiveOptions options = {});

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords,
                                   Semantics semantics);

  /// The full LCA set {lca(v_1..v_k) : v_i ∈ L_i} by exhaustive
  /// combination enumeration — exponential in k; callers must keep inputs
  /// tiny (the motivation example / blow-up test).
  std::vector<NodeId> AllLcas(const std::vector<std::string>& keywords);

 private:
  const XmlTree& tree_;
  const DeweyIndex& index_;
  NaiveOptions options_;
};

}  // namespace xtopk

#endif  // XTOPK_BASELINE_NAIVE_H_
