#include "index/dag.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "index/jdewey_index.h"
#include "util/varint.h"

namespace xtopk {

namespace {

bool EnvDisabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && std::strcmp(value, "0") != 0;
}

/// Per-depth value intervals of one subtree instance.
struct InstanceIntervals {
  std::vector<uint32_t> lo, hi;
};

InstanceIntervals IntervalsOf(const XmlTree& tree, const JDeweyEncoding& enc,
                              NodeId root, uint32_t base_level,
                              uint32_t depth) {
  InstanceIntervals iv;
  iv.lo.assign(depth, UINT32_MAX);
  iv.hi.assign(depth, 0);
  for (NodeId id : SubtreeNodes(tree, root)) {
    uint32_t d = tree.level(id) - base_level;
    uint32_t v = enc.NumberOf(id);
    iv.lo[d] = std::min(iv.lo[d], v);
    iv.hi[d] = std::max(iv.hi[d], v);
  }
  return iv;
}

/// Runs of `column` with value in [lo, hi], as [begin, end) run indices.
std::pair<size_t, size_t> SliceRuns(const Column& column, uint32_t lo,
                                    uint32_t hi) {
  size_t begin = column.LowerBoundValue(lo);
  size_t end = hi == UINT32_MAX ? column.run_count()
                                : column.LowerBoundValue(hi + 1);
  return {begin, end};
}

}  // namespace

bool DagDisabledByEnv() { return EnvDisabled("XTOPK_DISABLE_DAG"); }
bool DictDisabledByEnv() { return EnvDisabled("XTOPK_DISABLE_DICT"); }

void DagCatalog::BuildLevelIndex(uint32_t max_level) {
  level_reps_.assign(max_level, {});
  for (uint32_t c = 0; c < classes.size(); ++c) {
    const DagClassInfo& cls = classes[c];
    for (uint32_t d = 0; d < cls.depth; ++d) {
      uint32_t level = cls.base_level + d;
      if (level == 0 || level > max_level) continue;
      level_reps_[level - 1].push_back(
          RepInterval{cls.rep_lo[d], cls.rep_hi[d], c, d});
    }
  }
  for (auto& reps : level_reps_) {
    std::sort(reps.begin(), reps.end(),
              [](const RepInterval& a, const RepInterval& b) {
                return a.lo < b.lo;
              });
  }
}

const std::vector<DagCatalog::RepInterval>& DagCatalog::RepsAt(
    uint32_t level) const {
  static const std::vector<RepInterval> kEmpty;
  if (level == 0 || level > level_reps_.size()) return kEmpty;
  return level_reps_[level - 1];
}

const DagCatalog::RepInterval* DagCatalog::FindRep(uint32_t level,
                                                   uint32_t value) const {
  const auto& reps = RepsAt(level);
  auto it = std::upper_bound(
      reps.begin(), reps.end(), value,
      [](uint32_t v, const RepInterval& r) { return v < r.lo; });
  if (it == reps.begin()) return nullptr;
  --it;
  return value <= it->hi ? &*it : nullptr;
}

uint64_t DagCatalog::ResidentBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const DagClassInfo& cls : classes) {
    bytes += sizeof(cls) + (cls.rep_lo.size() + cls.rep_hi.size()) * 4;
    for (const DagInstance& inst : cls.instances) {
      bytes += sizeof(inst) + inst.value_delta.size() * 8;
    }
  }
  for (const auto& reps : level_reps_) bytes += reps.size() * sizeof(RepInterval);
  return bytes;
}

void DagCatalog::Serialize(std::string* out) const {
  varint::PutU32(out, static_cast<uint32_t>(classes.size()));
  for (const DagClassInfo& cls : classes) {
    varint::PutU32(out, cls.base_level);
    varint::PutU32(out, cls.depth);
    for (uint32_t d = 0; d < cls.depth; ++d) {
      varint::PutU32(out, cls.rep_lo[d]);
      varint::PutU32(out, cls.rep_hi[d] - cls.rep_lo[d]);
    }
    varint::PutU32(out, static_cast<uint32_t>(cls.instances.size()));
    // One column per depth, delta-encoded across instances: copies of a
    // shared subtree sit at near-evenly spaced values, so consecutive
    // instance deltas differ by a small, near-constant stride and the
    // second-order form packs into 1-2 byte varints.
    for (uint32_t d = 0; d < cls.depth; ++d) {
      int64_t prev = 0;
      for (const DagInstance& inst : cls.instances) {
        varint::PutS64(out, inst.value_delta[d] - prev);
        prev = inst.value_delta[d];
      }
    }
  }
}

StatusOr<std::shared_ptr<const DagCatalog>> DagCatalog::Deserialize(
    const std::string& data, size_t* pos, uint32_t max_level) {
  auto catalog = std::make_shared<DagCatalog>();
  uint32_t num_classes = 0;
  Status s = varint::GetU32(data, pos, &num_classes);
  if (!s.ok()) return s;
  if (num_classes > (1u << 24)) {
    return Status::Corruption("dag catalog: implausible class count");
  }
  catalog->classes.resize(num_classes);
  for (DagClassInfo& cls : catalog->classes) {
    s = varint::GetU32(data, pos, &cls.base_level);
    if (s.ok()) s = varint::GetU32(data, pos, &cls.depth);
    if (!s.ok()) return s;
    if (cls.base_level == 0 || cls.depth == 0 || cls.depth > 1024 ||
        cls.base_level + cls.depth - 1 > max_level) {
      return Status::Corruption("dag catalog: class levels out of range");
    }
    cls.rep_lo.resize(cls.depth);
    cls.rep_hi.resize(cls.depth);
    for (uint32_t d = 0; d < cls.depth; ++d) {
      uint32_t lo = 0, width = 0;
      s = varint::GetU32(data, pos, &lo);
      if (s.ok()) s = varint::GetU32(data, pos, &width);
      if (!s.ok()) return s;
      if (uint64_t(lo) + width > UINT32_MAX) {
        return Status::Corruption("dag catalog: interval overflow");
      }
      cls.rep_lo[d] = lo;
      cls.rep_hi[d] = lo + width;
    }
    uint32_t num_instances = 0;
    s = varint::GetU32(data, pos, &num_instances);
    if (!s.ok()) return s;
    if (num_instances == 0 || num_instances > (1u << 24)) {
      return Status::Corruption("dag catalog: implausible instance count");
    }
    cls.instances.resize(num_instances);
    for (DagInstance& inst : cls.instances) inst.value_delta.resize(cls.depth);
    for (uint32_t d = 0; d < cls.depth; ++d) {
      int64_t prev = 0;
      for (DagInstance& inst : cls.instances) {
        int64_t step = 0;
        s = varint::GetS64(data, pos, &step);
        if (!s.ok()) return s;
        // Accumulate with an explicit overflow guard: `step` is untrusted
        // and signed-add overflow would be UB before any range check.
        int64_t delta = 0;
        if (__builtin_add_overflow(prev, step, &delta)) {
          return Status::Corruption("dag catalog: instance delta overflow");
        }
        int64_t lo = int64_t(cls.rep_lo[d]) + delta;
        int64_t hi = int64_t(cls.rep_hi[d]) + delta;
        if (lo < 0 || hi > int64_t(UINT32_MAX)) {
          return Status::Corruption("dag catalog: instance interval overflow");
        }
        inst.value_delta[d] = delta;
        prev = delta;
      }
    }
  }
  catalog->BuildLevelIndex(max_level);
  return std::shared_ptr<const DagCatalog>(std::move(catalog));
}

uint64_t DagListData::ResidentBytes() const {
  uint64_t bytes = sizeof(*this) + has_dedup.size();
  for (const Column& col : dedup) bytes += col.run_count() * sizeof(Run);
  for (const auto& [cls, deltas] : row_deltas) {
    (void)cls;
    bytes += 16 + deltas.size() * 8;
  }
  return bytes;
}

Column ExpandDedupColumn(
    const Column& dedup, const DagCatalog& catalog,
    const std::unordered_map<uint32_t, std::vector<int64_t>>& row_deltas,
    uint32_t level) {
  // Literal (unshared) runs interleave arbitrarily in value space with the
  // translated instance intervals — an unshared sibling can sit between two
  // shared copies — so the expansion collects every output run individually
  // and restores the exact global order by sorting on value: per-level
  // values are unique (Property 3.1), which makes value order total and
  // identical to the original column's row order.
  std::vector<Run> out;
  const auto& runs = dedup.runs();
  const auto& reps = catalog.RepsAt(level);
  size_t i = 0, r = 0;
  while (i < runs.size()) {
    // Advance to the rep interval that could contain this run.
    while (r < reps.size() && reps[r].hi < runs[i].value) ++r;
    if (r == reps.size() || runs[i].value < reps[r].lo) {
      out.push_back(runs[i]);
      ++i;
      continue;
    }
    // Representative slice of class reps[r] at this level.
    auto [begin, end] = SliceRuns(dedup, reps[r].lo, reps[r].hi);
    assert(begin == i && end > begin);
    const DagClassInfo& cls = catalog.classes[reps[r].cls];
    // The representative's own runs stay in place.
    for (size_t k = begin; k < end; ++k) out.push_back(runs[k]);
    auto it = row_deltas.find(reps[r].cls);
    // A term with runs in a representative interval always participates in
    // the class (identical subtrees carry identical term sets); the guard
    // only protects against inconsistent hand-built data.
    if (it != row_deltas.end()) {
      for (size_t j = 0; j < cls.instances.size(); ++j) {
        int64_t vd = cls.instances[j].value_delta[reps[r].depth];
        int64_t rd = it->second[j];
        for (size_t k = begin; k < end; ++k) {
          out.push_back(
              Run{static_cast<uint32_t>(int64_t(runs[k].value) + vd),
                  static_cast<uint32_t>(int64_t(runs[k].first_row) + rd),
                  runs[k].count});
        }
      }
    }
    i = end;
  }
  std::sort(out.begin(), out.end(),
            [](const Run& a, const Run& b) { return a.value < b.value; });
  Column result;
  result.ReserveRuns(out.size());
  for (const Run& run : out) {
    result.AppendRun(run.first_row, run.value, run.count);
  }
  return result;
}

StatusOr<Column> ExpandDedupColumnChecked(
    const Column& dedup, const DagCatalog& catalog,
    const std::unordered_map<uint32_t, std::vector<int64_t>>& row_deltas,
    uint32_t level) {
  std::vector<Run> out;
  const auto& runs = dedup.runs();
  const auto& reps = catalog.RepsAt(level);
  size_t i = 0, r = 0;
  while (i < runs.size()) {
    while (r < reps.size() && reps[r].hi < runs[i].value) ++r;
    if (r == reps.size() || runs[i].value < reps[r].lo) {
      out.push_back(runs[i]);
      ++i;
      continue;
    }
    // Representative slice: every run from here with value <= hi belongs
    // to it (the loop guarantees runs[i].value is inside [lo, hi]).
    size_t begin = i;
    while (i < runs.size() && runs[i].value <= reps[r].hi) ++i;
    if (i == begin) {
      return Status::Corruption("dag: empty representative slice");
    }
    if (reps[r].cls >= catalog.classes.size()) {
      return Status::Corruption("dag: rep interval class out of range");
    }
    const DagClassInfo& cls = catalog.classes[reps[r].cls];
    for (size_t k = begin; k < i; ++k) out.push_back(runs[k]);
    auto it = row_deltas.find(reps[r].cls);
    if (it != row_deltas.end()) {
      if (it->second.size() != cls.instances.size()) {
        return Status::Corruption("dag: row delta count mismatch");
      }
      for (size_t j = 0; j < cls.instances.size(); ++j) {
        if (reps[r].depth >= cls.instances[j].value_delta.size()) {
          return Status::Corruption("dag: value delta depth out of range");
        }
        int64_t vd = cls.instances[j].value_delta[reps[r].depth];
        int64_t rd = it->second[j];
        for (size_t k = begin; k < i; ++k) {
          int64_t value = int64_t(runs[k].value) + vd;
          int64_t row = int64_t(runs[k].first_row) + rd;
          if (value < 0 || value > int64_t(UINT32_MAX) || row < 0 ||
              row > int64_t(UINT32_MAX)) {
            return Status::Corruption("dag: translated run out of range");
          }
          out.push_back(Run{static_cast<uint32_t>(value),
                            static_cast<uint32_t>(row), runs[k].count});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Run& a, const Run& b) { return a.value < b.value; });
  Column result;
  result.ReserveRuns(out.size());
  for (const Run& run : out) {
    if (!result.AppendRunChecked(run.first_row, run.value, run.count)) {
      return Status::Corruption("dag: expanded column not monotonic");
    }
  }
  return result;
}

DagBuildStats AttachDagData(const XmlTree& tree, const JDeweyEncoding& enc,
                            const SubtreeDagResult& detected,
                            uint32_t max_level,
                            std::vector<JDeweyList>* lists) {
  DagBuildStats stats;
  if (detected.classes.empty()) return stats;

  // Value-space geometry of every detected class.
  struct ClassGeom {
    const SubtreeClass* cls = nullptr;
    InstanceIntervals rep;
    std::vector<InstanceIntervals> instances;  // non-rep, document order
    std::vector<std::vector<int64_t>> vdeltas;  // per instance per depth
    bool valid = true;
  };
  std::vector<ClassGeom> geoms;
  geoms.reserve(detected.classes.size());
  for (const SubtreeClass& cls : detected.classes) {
    ClassGeom g;
    g.cls = &cls;
    g.rep = IntervalsOf(tree, enc, cls.roots[0], cls.level, cls.depth);
    for (size_t j = 1; j < cls.roots.size(); ++j) {
      InstanceIntervals iv =
          IntervalsOf(tree, enc, cls.roots[j], cls.level, cls.depth);
      std::vector<int64_t> vd(cls.depth);
      for (uint32_t d = 0; d < cls.depth && g.valid; ++d) {
        // Identical local structure must yield identical interval widths;
        // anything else means the translation premise fails — drop the
        // class rather than risk an inexact share.
        if (iv.hi[d] - iv.lo[d] != g.rep.hi[d] - g.rep.lo[d]) {
          g.valid = false;
          break;
        }
        vd[d] = int64_t(iv.lo[d]) - int64_t(g.rep.lo[d]);
      }
      g.instances.push_back(std::move(iv));
      g.vdeltas.push_back(std::move(vd));
    }
    geoms.push_back(std::move(g));
  }

  // Verify the translation against every term's materialized columns.
  // Participation of term t in class c is detected at the root level: the
  // representative root's value appears in t's base-level column iff t
  // occurs in the shared subtree.
  const size_t num_terms = lists->size();
  // participation[t] holds (geom index, per-instance row deltas).
  std::vector<std::vector<std::pair<uint32_t, std::vector<int64_t>>>>
      participation(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    const JDeweyList& list = (*lists)[t];
    for (uint32_t gi = 0; gi < geoms.size(); ++gi) {
      ClassGeom& g = geoms[gi];
      if (!g.valid) continue;
      uint32_t base = g.cls->level;
      if (base == 0 || base > list.max_length) continue;
      const Column& base_col = list.column(base);
      const Run* rep_run = base_col.FindValue(g.rep.lo[0]);
      if (rep_run == nullptr) {
        // Term absent from the representative: it must be absent from
        // every instance too, or the subtrees were not truly identical.
        for (const InstanceIntervals& iv : g.instances) {
          if (base_col.FindValue(iv.lo[0]) != nullptr) {
            g.valid = false;
            break;
          }
        }
        continue;
      }
      std::vector<int64_t> row_delta(g.instances.size());
      bool ok = true;
      for (size_t j = 0; j < g.instances.size() && ok; ++j) {
        const Run* inst_run = base_col.FindValue(g.instances[j].lo[0]);
        if (inst_run == nullptr || inst_run->count != rep_run->count) {
          ok = false;
          break;
        }
        row_delta[j] =
            int64_t(inst_run->first_row) - int64_t(rep_run->first_row);
      }
      // Deeper levels: every instance slice must equal the representative
      // slice under (value + vdelta, row + row_delta).
      for (uint32_t d = 0; d < g.cls->depth && ok; ++d) {
        uint32_t level = base + d;
        if (level > list.max_length) break;
        const Column& col = list.column(level);
        auto [rb, re] = SliceRuns(col, g.rep.lo[d], g.rep.hi[d]);
        for (size_t j = 0; j < g.instances.size() && ok; ++j) {
          auto [ib, ie] =
              SliceRuns(col, g.instances[j].lo[d], g.instances[j].hi[d]);
          if (ie - ib != re - rb) {
            ok = false;
            break;
          }
          for (size_t k = 0; k < re - rb; ++k) {
            const Run& rr = col.runs()[rb + k];
            const Run& ir = col.runs()[ib + k];
            if (int64_t(ir.value) !=
                    int64_t(rr.value) + g.vdeltas[j][d] ||
                int64_t(ir.first_row) !=
                    int64_t(rr.first_row) + row_delta[j] ||
                ir.count != rr.count) {
              ok = false;
              break;
            }
          }
        }
      }
      if (!ok) {
        g.valid = false;
        continue;
      }
      participation[t].emplace_back(gi, std::move(row_delta));
    }
  }

  // Compact the surviving classes into the catalog.
  std::vector<uint32_t> remap(geoms.size(), UINT32_MAX);
  auto catalog = std::make_shared<DagCatalog>();
  for (uint32_t gi = 0; gi < geoms.size(); ++gi) {
    const ClassGeom& g = geoms[gi];
    if (!g.valid) {
      ++stats.classes_rejected;
      continue;
    }
    remap[gi] = static_cast<uint32_t>(catalog->classes.size());
    DagClassInfo info;
    info.base_level = g.cls->level;
    info.depth = g.cls->depth;
    info.rep_lo = g.rep.lo;
    info.rep_hi = g.rep.hi;
    for (const auto& vd : g.vdeltas) {
      info.instances.push_back(DagInstance{vd});
    }
    catalog->classes.push_back(std::move(info));
    ++stats.classes;
    stats.shared_instances += g.instances.size();
  }
  if (catalog->classes.empty()) return stats;
  catalog->BuildLevelIndex(max_level);
  std::shared_ptr<const DagCatalog> shared_catalog = catalog;

  // Build the dedup columns of every participating term, then round-trip
  // check each one against the full column it replaces. The check can only
  // fail on a bug; if it ever does, the term keeps its exact columns and
  // no DAG data (never a wrong share).
  for (size_t t = 0; t < num_terms; ++t) {
    if (participation[t].empty()) continue;
    auto data = std::make_shared<DagListData>();
    data->catalog = shared_catalog;
    for (auto& [gi, row_delta] : participation[t]) {
      if (remap[gi] == UINT32_MAX) continue;
      data->row_deltas.emplace(remap[gi], std::move(row_delta));
    }
    if (data->row_deltas.empty()) continue;
    JDeweyList& list = (*lists)[t];
    data->dedup.resize(list.columns.size());
    data->has_dedup.assign(list.columns.size(), 0);
    bool any = false, ok = true;
    for (uint32_t level = 1; level <= list.max_length && ok; ++level) {
      // Removal intervals: every instance interval of every class this
      // term participates in that touches this level.
      std::vector<std::pair<uint32_t, uint32_t>> removals;
      for (const auto& [ci, deltas] : data->row_deltas) {
        (void)deltas;
        const DagClassInfo& cls = shared_catalog->classes[ci];
        if (level < cls.base_level || level >= cls.base_level + cls.depth) {
          continue;
        }
        uint32_t d = level - cls.base_level;
        for (const DagInstance& inst : cls.instances) {
          removals.emplace_back(
              static_cast<uint32_t>(cls.rep_lo[d] + inst.value_delta[d]),
              static_cast<uint32_t>(cls.rep_hi[d] + inst.value_delta[d]));
        }
      }
      if (removals.empty()) continue;
      std::sort(removals.begin(), removals.end());
      const Column& full = list.column(level);
      Column dedup;
      size_t ri = 0;
      uint64_t removed = 0;
      for (const Run& run : full.runs()) {
        while (ri < removals.size() && removals[ri].second < run.value) ++ri;
        if (ri < removals.size() && run.value >= removals[ri].first) {
          ++removed;
          continue;
        }
        dedup.AppendRun(run.first_row, run.value, run.count);
      }
      if (removed == 0) continue;
      // Exactness gate: expansion must reproduce the full column.
      Column rebuilt = ExpandDedupColumn(dedup, *shared_catalog,
                                         data->row_deltas, level);
      if (rebuilt.runs() != full.runs()) {
        assert(false && "dag dedup round-trip mismatch");
        ok = false;
        break;
      }
      stats.runs_removed += removed;
      data->dedup[level - 1] = std::move(dedup);
      data->has_dedup[level - 1] = 1;
      any = true;
    }
    if (ok && any) {
      list.dag = std::move(data);
      ++stats.terms_affected;
    }
  }
  return stats;
}

}  // namespace xtopk
