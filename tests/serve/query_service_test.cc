// Deterministic tests of the query service's control plane: deadlines
// (expired-in-queue and mid-execution, on fake clocks — no sleeping),
// two-priority admission with load shedding, shutdown semantics, and the
// watermark-keyed result cache including seal/compact/ingest invalidation
// through a real UpdatableEngine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/updatable_engine.h"
#include "serve/protocol.h"
#include "serve/query_service.h"
#include "testing/corpus.h"

namespace xtopk {
namespace serve {
namespace {

using xtopk::testing::MakeSmallCorpus;

// Manual fake clock: time moves only when the test says so.
std::atomic<uint64_t> g_manual_now{0};
uint64_t ManualNow() { return g_manual_now.load(std::memory_order_relaxed); }

// Auto-ticking fake clock: every read advances time by a fixed step. With
// a budget of N steps the deadline deterministically expires at the Nth
// clock read — which lands inside the engine once admission and dequeue
// have used their reads — reproducing "expired mid-query" without any
// real waiting.
constexpr uint64_t kTickStep = 1000;
std::atomic<uint64_t> g_auto_now{0};
uint64_t AutoTickNow() {
  return g_auto_now.fetch_add(kTickStep, std::memory_order_relaxed);
}

QueryRequest MakeRequest(uint32_t id, std::vector<std::string> keywords,
                         uint32_t k = 5,
                         Priority priority = Priority::kHigh) {
  QueryRequest request;
  request.request_id = id;
  request.keywords = std::move(keywords);
  request.k = k;
  request.priority = priority;
  return request;
}

QueryServiceOptions TestOptions() {
  QueryServiceOptions options;
  options.workers = 0;  // deterministic mode: tests step via RunOnce()
  return options;
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : tree_(MakeSmallCorpus()), engine_(tree_),
                       backend_(&engine_) {}

  XmlTree tree_;
  Engine engine_;
  EngineBackend backend_;
};

TEST_F(QueryServiceTest, ExecutesAndMatchesEngine) {
  QueryService service(&backend_, TestOptions());
  QueryResponse response =
      service.Execute(MakeRequest(1, {"xml", "data"}, 5));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  std::vector<QueryHit> expected =
      engine_.SearchTopK({"xml", "data"}, 5, Semantics::kElca);
  ASSERT_EQ(response.hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(response.hits[i].node, expected[i].node);
    EXPECT_EQ(response.hits[i].score, expected[i].score);
  }
  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST_F(QueryServiceTest, DeadlineExpiredInQueueSkipsExecution) {
  g_manual_now.store(1000);
  QueryServiceOptions options = TestOptions();
  options.clock = &ManualNow;
  QueryService service(&backend_, options);

  QueryResponse captured;
  bool done = false;
  QueryRequest request = MakeRequest(3, {"xml", "data"});
  request.deadline_us = 500;  // expires at t=1500
  service.Submit(request, [&](QueryResponse response) {
    captured = std::move(response);
    done = true;
  });
  EXPECT_FALSE(done);  // admitted, waiting in queue

  // The queue wait eats the whole budget before a worker gets to it.
  g_manual_now.store(10000);
  EXPECT_TRUE(service.RunOnce());
  ASSERT_TRUE(done);
  EXPECT_EQ(captured.status, ResponseStatus::kDeadlineExpired);
  EXPECT_EQ(captured.request_id, 3u);
  EXPECT_TRUE(captured.hits.empty());

  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.partial, 0u);
  // The engine never ran: nothing was executed to completion and nothing
  // entered the result cache.
  EXPECT_EQ(service.result_cache().size(), 0u);
}

TEST_F(QueryServiceTest, DeadlineExpiredMidExecutionYieldsPartial) {
  QueryServiceOptions options = TestOptions();
  options.clock = &AutoTickNow;
  QueryService service(&backend_, options);

  // Clock reads before the engine sees the token: AfterMicros at
  // admission, enqueue stamp, dequeue wait stamp, the expired-in-queue
  // check, and the exec-start stamp — five reads. A 7-step budget
  // survives all of them (the dequeue check sees t0+3 < t0+7) and expires
  // on the engine's own deadline checks a couple of reads later.
  QueryRequest request = MakeRequest(4, {"xml", "data"}, 5);
  request.deadline_us = 7 * kTickStep;
  QueryResponse response = service.Execute(request);
  EXPECT_EQ(response.status, ResponseStatus::kPartial);
  EXPECT_EQ(response.request_id, 4u);
  // Whatever came back is a proven prefix of the full answer.
  std::vector<QueryHit> full =
      engine_.SearchTopK({"xml", "data"}, 5, Semantics::kElca);
  ASSERT_LE(response.hits.size(), full.size());
  for (size_t i = 0; i < response.hits.size(); ++i) {
    EXPECT_EQ(response.hits[i].node, full[i].node);
    EXPECT_EQ(response.hits[i].score, full[i].score);
  }

  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.partial, 1u);
  EXPECT_EQ(stats.expired_in_queue, 0u);
  // Partial answers must never be cached — they would poison later
  // queries that have bigger budgets.
  EXPECT_EQ(service.result_cache().size(), 0u);

  // The same query with no deadline on the same service completes fully:
  // the cache was not poisoned by the partial run.
  QueryRequest unbounded = MakeRequest(5, {"xml", "data"}, 5);
  QueryResponse complete = service.Execute(unbounded);
  EXPECT_EQ(complete.status, ResponseStatus::kOk);
  EXPECT_EQ(complete.hits.size(), full.size());
}

TEST_F(QueryServiceTest, MaxDeadlineCapsClientBudgets) {
  g_manual_now.store(0);
  QueryServiceOptions options = TestOptions();
  options.clock = &ManualNow;
  options.max_deadline_us = 1000;
  QueryService service(&backend_, options);

  QueryResponse captured;
  bool done = false;
  QueryRequest request = MakeRequest(6, {"xml"});
  request.deadline_us = 60'000'000;  // asks for a minute; capped to 1ms
  service.Submit(request, [&](QueryResponse response) {
    captured = std::move(response);
    done = true;
  });
  g_manual_now.store(2000);  // past the cap, far before the minute
  EXPECT_TRUE(service.RunOnce());
  ASSERT_TRUE(done);
  EXPECT_EQ(captured.status, ResponseStatus::kDeadlineExpired);

  // And with no client deadline at all, the cap still applies.
  done = false;
  service.Submit(MakeRequest(7, {"xml"}), [&](QueryResponse response) {
    captured = std::move(response);
    done = true;
  });
  g_manual_now.store(10000);
  EXPECT_TRUE(service.RunOnce());
  ASSERT_TRUE(done);
  EXPECT_EQ(captured.status, ResponseStatus::kDeadlineExpired);
}

TEST_F(QueryServiceTest, ShedsWhenQueueFullWithRetryHint) {
  QueryServiceOptions options = TestOptions();
  options.max_queue_high = 2;
  options.max_queue_low = 1;
  options.retry_after_ms = 75;
  QueryService service(&backend_, options);

  std::vector<QueryResponse> inline_responses;
  auto collect = [&](QueryResponse response) {
    inline_responses.push_back(std::move(response));
  };

  // Fill both classes past their bounds. Admitted queries park in the
  // queue (no workers); everything over the bound is answered inline.
  for (uint32_t i = 0; i < 4; ++i) {
    service.Submit(MakeRequest(100 + i, {"xml"}, 3, Priority::kHigh),
                   collect);
  }
  for (uint32_t i = 0; i < 3; ++i) {
    service.Submit(MakeRequest(200 + i, {"xml"}, 3, Priority::kLow),
                   collect);
  }

  // 2 high + 2 low were shed, each with the retry hint, immediately.
  ASSERT_EQ(inline_responses.size(), 4u);
  for (const QueryResponse& response : inline_responses) {
    EXPECT_EQ(response.status, ResponseStatus::kShedOverload);
    EXPECT_EQ(response.retry_after_ms, 75u);
  }
  EXPECT_EQ(inline_responses[0].request_id, 102u);
  EXPECT_EQ(inline_responses[1].request_id, 103u);
  EXPECT_EQ(inline_responses[2].request_id, 201u);
  EXPECT_EQ(inline_responses[3].request_id, 202u);

  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed_high, 2u);
  EXPECT_EQ(stats.shed_low, 2u);
  EXPECT_EQ(stats.queue_depth_high, 2u);
  EXPECT_EQ(stats.queue_depth_low, 1u);

  // Answer the still-queued admissions before `inline_responses` (declared
  // after the service) goes out of scope; the destructor would otherwise
  // invoke `collect` against a dead vector.
  service.Stop();
  EXPECT_EQ(inline_responses.size(), 7u);
}

TEST_F(QueryServiceTest, HighPriorityDrainsBeforeLow) {
  QueryService service(&backend_, TestOptions());
  std::vector<uint32_t> completion_order;
  auto track = [&](QueryResponse response) {
    completion_order.push_back(response.request_id);
  };

  // Interleave admissions: low, high, low, high.
  service.Submit(MakeRequest(1, {"xml"}, 2, Priority::kLow), track);
  service.Submit(MakeRequest(2, {"xml"}, 2, Priority::kHigh), track);
  service.Submit(MakeRequest(3, {"xml"}, 2, Priority::kLow), track);
  service.Submit(MakeRequest(4, {"xml"}, 2, Priority::kHigh), track);

  while (service.RunOnce()) {
  }
  // Both high-priority queries finish before any low-priority one.
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], 2u);
  EXPECT_EQ(completion_order[1], 4u);
  EXPECT_EQ(completion_order[2], 1u);
  EXPECT_EQ(completion_order[3], 3u);
}

TEST_F(QueryServiceTest, SyntheticOverloadShedsLowWhileHighStaysBounded) {
  // 2x synthetic overload: 16 arrivals against 10 queue slots. The low
  // class must absorb the shedding; every high-priority query is
  // admitted and completes within max_queue_high service steps — its
  // wait is bounded by its own class depth, not the low backlog.
  QueryServiceOptions options = TestOptions();
  options.max_queue_high = 8;
  options.max_queue_low = 2;
  QueryService service(&backend_, options);

  std::vector<uint32_t> completed;
  uint64_t shed_low = 0, shed_high = 0;
  auto track = [&](QueryResponse response) {
    if (response.status == ResponseStatus::kShedOverload) {
      (response.request_id < 100 ? shed_high : shed_low) += 1;
    } else {
      completed.push_back(response.request_id);
    }
  };
  for (uint32_t i = 0; i < 8; ++i) {
    service.Submit(MakeRequest(i, {"xml"}, 2, Priority::kHigh), track);
    service.Submit(MakeRequest(100 + i, {"xml"}, 2, Priority::kLow), track);
  }
  EXPECT_EQ(shed_high, 0u);
  EXPECT_EQ(shed_low, 6u);

  while (service.RunOnce()) {
  }
  // Each RunOnce completes exactly one query, so a query's position in
  // `completed` is the step it finished at. The first 8 completions are
  // the highs: the slowest high waited at most max_queue_high service
  // steps — bounded by its own class depth, never by the low backlog.
  ASSERT_EQ(completed.size(), 10u);  // 8 high + the 2 admitted low
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_LT(completed[i], 100u) << "high must drain first";
  }

  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_low, 6u);
  EXPECT_EQ(stats.shed_high, 0u);
  EXPECT_EQ(stats.executed, 10u);
}

TEST_F(QueryServiceTest, PingAnswersInlineWithoutAdmission) {
  QueryService service(&backend_, TestOptions());
  QueryRequest ping;
  ping.request_id = 9;
  ping.op = RequestOp::kPing;
  bool done = false;
  service.Submit(ping, [&](QueryResponse response) {
    EXPECT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.request_id, 9u);
    done = true;
  });
  EXPECT_TRUE(done);  // no queue involved
  EXPECT_EQ(service.stats().admitted, 0u);
}

TEST_F(QueryServiceTest, StopAnswersQueuedAndRejectsNew) {
  QueryService service(&backend_, TestOptions());
  std::vector<QueryResponse> responses;
  auto collect = [&](QueryResponse response) {
    responses.push_back(std::move(response));
  };
  service.Submit(MakeRequest(1, {"xml"}), collect);
  service.Submit(MakeRequest(2, {"xml"}, 3, Priority::kLow), collect);

  service.Stop();
  ASSERT_EQ(responses.size(), 2u);
  for (const QueryResponse& response : responses) {
    EXPECT_EQ(response.status, ResponseStatus::kShuttingDown);
  }

  // Submissions after Stop answer kShuttingDown inline.
  service.Submit(MakeRequest(3, {"xml"}), collect);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses.back().status, ResponseStatus::kShuttingDown);
  EXPECT_EQ(responses.back().request_id, 3u);
}

TEST_F(QueryServiceTest, RepeatQueryHitsResultCache) {
  QueryService service(&backend_, TestOptions());
  QueryResponse first = service.Execute(MakeRequest(1, {"xml", "data"}, 4));
  ASSERT_EQ(first.status, ResponseStatus::kOk);
  // Different request_id, same normalized query: served from cache.
  QueryResponse second = service.Execute(MakeRequest(2, {"xml", "data"}, 4));
  ASSERT_EQ(second.status, ResponseStatus::kOk);
  ASSERT_EQ(second.hits.size(), first.hits.size());
  for (size_t i = 0; i < first.hits.size(); ++i) {
    EXPECT_EQ(second.hits[i].node, first.hits[i].node);
    EXPECT_EQ(second.hits[i].score, first.hits[i].score);
  }
  QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // Normalization is part of the key: a query that normalizes to the same
  // keywords ("XML" -> "xml") is the same cache entry.
  QueryResponse third = service.Execute(MakeRequest(3, {"XML", "DATA"}, 4));
  EXPECT_EQ(service.stats().cache_hits, 2u);
  EXPECT_EQ(third.hits.size(), first.hits.size());
}

// -------- watermark invalidation through a real UpdatableEngine --------

class UpdatableServiceTest : public ::testing::Test {
 protected:
  UpdatableServiceTest()
      : engine_(MakeSmallCorpus()), backend_(&engine_) {}

  std::string TempPath(const char* name) {
    return ::testing::TempDir() + "/serve_watermark_" + name;
  }

  UpdatableEngine engine_;
  UpdatableBackend backend_;
};

TEST_F(UpdatableServiceTest, IngestInvalidatesCachedResults) {
  QueryService service(&backend_, TestOptions());
  QueryRequest request = MakeRequest(1, {"xml", "data"}, 10);

  QueryResponse before = service.Execute(request);
  ASSERT_EQ(before.status, ResponseStatus::kOk);
  service.Execute(request);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // cached while unchanged

  // Ingest a document that adds answers. The ingest only dirties the
  // memtable — the watermark discipline must still see a new version and
  // turn every cached entry into a silent miss.
  XmlTree doc;
  NodeId root = doc.CreateRoot("paper");
  doc.AppendText(root, "xml data xml data");
  engine_.AddDocument("fresh", doc);

  QueryResponse after = service.Execute(request);
  ASSERT_EQ(after.status, ResponseStatus::kOk);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // no stale hit
  EXPECT_GT(after.hits.size(), before.hits.size())
      << "post-ingest answer must include the new document";

  // And the new answer is itself cached at the new watermark.
  service.Execute(request);
  EXPECT_EQ(service.stats().cache_hits, 2u);
}

TEST_F(UpdatableServiceTest, SealAndCompactInvalidateCachedResults) {
  QueryService service(&backend_, TestOptions());
  QueryRequest request = MakeRequest(1, {"xml", "data"}, 10);

  // Put something in the memtable so SealMemtable has work.
  XmlTree doc;
  NodeId root = doc.CreateRoot("paper");
  doc.AppendText(root, "xml data");
  engine_.AddDocument("d1", doc);

  QueryResponse before = service.Execute(request);
  ASSERT_EQ(before.status, ResponseStatus::kOk);
  service.Execute(request);
  ASSERT_EQ(service.stats().cache_hits, 1u);

  ASSERT_TRUE(engine_.SealMemtable(TempPath("seal.seg")).ok());
  QueryResponse after_seal = service.Execute(request);
  ASSERT_EQ(after_seal.status, ResponseStatus::kOk);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // seal invalidated
  // Sealing must not change answers, only the index layout.
  ASSERT_EQ(after_seal.hits.size(), before.hits.size());
  for (size_t i = 0; i < before.hits.size(); ++i) {
    EXPECT_EQ(after_seal.hits[i].node, before.hits[i].node);
    EXPECT_EQ(after_seal.hits[i].score, before.hits[i].score);
  }

  // A second sealed segment, then compaction; each bumps the version.
  XmlTree doc2;
  NodeId root2 = doc2.CreateRoot("paper");
  doc2.AppendText(root2, "xml data data");
  engine_.AddDocument("d2", doc2);
  ASSERT_TRUE(engine_.SealMemtable(TempPath("seal2.seg")).ok());
  QueryResponse after_second = service.Execute(request);
  ASSERT_EQ(after_second.status, ResponseStatus::kOk);

  uint64_t hits_before_compact = service.stats().cache_hits;
  ASSERT_TRUE(engine_.Compact(TempPath("compact.seg")).ok());
  QueryResponse after_compact = service.Execute(request);
  ASSERT_EQ(after_compact.status, ResponseStatus::kOk);
  EXPECT_EQ(service.stats().cache_hits, hits_before_compact)
      << "compaction must invalidate, not serve stale";
  // Compaction preserves answers bit for bit.
  ASSERT_EQ(after_compact.hits.size(), after_second.hits.size());
  for (size_t i = 0; i < after_second.hits.size(); ++i) {
    EXPECT_EQ(after_compact.hits[i].node, after_second.hits[i].node);
    EXPECT_EQ(after_compact.hits[i].score, after_second.hits[i].score);
  }
}

}  // namespace
}  // namespace serve
}  // namespace xtopk
