#include "obs/slow_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace obs {
namespace {

SlowQueryCapture MakeCapture(double wall_us, const std::string& keyword) {
  SlowQueryCapture capture;
  capture.ts_us = 123;
  capture.keywords = {keyword, "data"};
  capture.k = 5;
  capture.semantics = "elca";
  capture.wall_us = wall_us;
  capture.hits = 2;
  capture.result_fingerprint = "00ff00ff00ff00ff";
  capture.accounting.pages_read = 4;
  capture.accounting.planner_mode = "planned";
  return capture;
}

TEST(SlowLogTest, ThresholdFiltersByLatencyOrPages) {
  SlowLogOptions options;
  options.latency_threshold_us = 1000;
  options.pages_threshold = 50;
  SlowQueryLog log(options);
  EXPECT_FALSE(log.ShouldCapture(/*wall_us=*/10, /*pages_read=*/0));
  EXPECT_TRUE(log.ShouldCapture(1000, 0));
  EXPECT_TRUE(log.ShouldCapture(10, 50));  // page threshold alone qualifies
  EXPECT_FALSE(log.ShouldCapture(999.9, 49));
}

TEST(SlowLogTest, ThresholdZeroCapturesEverything) {
  SlowLogOptions options;
  options.latency_threshold_us = 0;
  SlowQueryLog log(options);
  EXPECT_TRUE(log.ShouldCapture(0.0, 0));
}

TEST(SlowLogTest, JsonLineShape) {
  std::string line = MakeCapture(2500.5, "xml").ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"keywords\":[\"xml\",\"data\"]"), std::string::npos);
  EXPECT_NE(line.find("\"k\":5"), std::string::npos);
  EXPECT_NE(line.find("\"semantics\":\"elca\""), std::string::npos);
  EXPECT_NE(line.find("\"wall_us\":2500.500"), std::string::npos);
  EXPECT_NE(line.find("\"hits\":2"), std::string::npos);
  EXPECT_NE(line.find("\"result_fingerprint\":\"00ff00ff00ff00ff\""),
            std::string::npos);
  EXPECT_NE(line.find("\"accounting\":{\"pages_read\":4"), std::string::npos);
  // No trace collected -> no trace key at all.
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);

  SlowQueryCapture traced = MakeCapture(1.0, "xml");
  traced.trace_json = "{\"name\":\"query\"}";
  EXPECT_NE(traced.ToJsonLine().find("\"trace\":{\"name\":\"query\"}"),
            std::string::npos);
}

TEST(SlowLogTest, RecentRingIsBounded) {
  SlowLogOptions options;
  options.memory_entries = 3;
  SlowQueryLog log(options);
  for (int i = 0; i < 10; ++i) {
    log.Record(MakeCapture(1000.0 + i, "q" + std::to_string(i)));
  }
  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].keywords[0], "q7");
  EXPECT_EQ(recent[2].keywords[0], "q9");
  EXPECT_EQ(log.Recent(/*max=*/2).size(), 2u);
  EXPECT_EQ(log.Recent(2)[1].keywords[0], "q9");
}

TEST(SlowLogTest, WritesJsonLinesToFileAndRotates) {
  std::string path = testing::TempDir() + "/slowlog_test.jsonl";
  std::remove(path.c_str());
  SlowLogOptions options;
  options.path = path;
  // Each line is ~260 bytes; cap at ~3 lines to force a rotation.
  options.max_file_bytes = 800;
  SlowQueryLog log(options);
  for (int i = 0; i < 10; ++i) {
    log.Record(MakeCapture(5000.0, "rotating" + std::to_string(i)));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  std::string last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    last = line;
    ++lines;
  }
  // Rotation truncated: far fewer than 10 lines on disk, newest survives.
  EXPECT_GE(lines, 1u);
  EXPECT_LT(lines, 10u);
  EXPECT_NE(last.find("rotating9"), std::string::npos);
  // The memory ring bridged the rotation.
  EXPECT_EQ(log.Recent().size(), 10u);
  std::remove(path.c_str());
}

TEST(SlowLogTest, ToJsonWrapsRecentCaptures) {
  SlowQueryLog log((SlowLogOptions()));
  log.Record(MakeCapture(1500.0, "wrapped"));
  std::string json = log.ToJson();
  EXPECT_EQ(json.find("{\"slow_queries\":["), 0u);
  EXPECT_NE(json.find("wrapped"), std::string::npos);
}

TEST(SlowLogTest, FingerprintHexIsDeterministic) {
  EXPECT_EQ(FingerprintHex("abc"), FingerprintHex("abc"));
  EXPECT_NE(FingerprintHex("abc"), FingerprintHex("abd"));
  EXPECT_EQ(FingerprintHex("").size(), 16u);
  for (char c : FingerprintHex("xyz")) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(SlowLogTest, EngineCapturesQueriesPastTheGlobalThreshold) {
  // Reconfigure the global log to capture-all, run a query, and expect it
  // in the recent ring; then restore a high threshold.
  SlowQueryLog& global = SlowQueryLog::Global();
  SlowLogOptions original = global.options();
  SlowLogOptions capture_all;
  capture_all.latency_threshold_us = 0;
  global.Reconfigure(capture_all);

  XmlTree tree = ParseXmlStringOrDie(
      "<root><a>xml data</a><b>xml search</b></root>");
  Engine engine(tree);
  size_t before = global.Recent().size();
  engine.Search({"xml"});
  auto recent = global.Recent();
  ASSERT_GT(recent.size(), before);
  const SlowQueryCapture& captured = recent.back();
  EXPECT_EQ(captured.keywords, std::vector<std::string>{"xml"});
  EXPECT_GT(captured.wall_us, 0.0);
  EXPECT_EQ(captured.result_fingerprint.size(), 16u);

  global.Reconfigure(original);
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
