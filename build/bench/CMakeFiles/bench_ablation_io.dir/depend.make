# Empty dependencies file for bench_ablation_io.
# This may be replaced when dependencies are built.
