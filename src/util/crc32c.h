#ifndef XTOPK_UTIL_CRC32C_H_
#define XTOPK_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xtopk {
namespace crc32c {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected). This is the
/// checksum guarding every on-disk index page and the segment footer
/// (DESIGN.md §9): it detects all single-bit flips, all burst errors up to
/// 32 bits, and — unlike the ISO CRC-32 — has a hardware instruction on
/// both x86 (SSE4.2) and ARM (ACLE), so verification costs well under the
/// 3% read-path budget. Dispatch is decided once at first use; the software
/// slice-by-8 fallback is bit-identical.
uint32_t Compute(const void* data, size_t n);

inline uint32_t Compute(std::string_view data) {
  return Compute(data.data(), data.size());
}

/// Extends a running CRC with more bytes: Extend(Compute(a), b) ==
/// Compute(a + b). `crc` is the plain (already finalized) value Compute
/// returned.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// True iff the hardware CRC32 instruction path is compiled in and this
/// CPU supports it (exposed for the unit tests' sw/hw equivalence check).
bool HardwareAvailable();

/// The portable reference implementation (always available).
uint32_t ComputeSoftware(const void* data, size_t n);

}  // namespace crc32c
}  // namespace xtopk

#endif  // XTOPK_UTIL_CRC32C_H_
