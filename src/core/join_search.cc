#include "core/join_search.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "core/dag_join.h"
#include "obs/accounting.h"
#include "obs/metrics.h"

namespace xtopk {
namespace {

/// Folds the final per-query counters into the process-wide registry (one
/// batch of relaxed adds per query, nothing per row). Also the per-query
/// attribution point: candidates are the rows this query materialized.
void FlushJoinStatsToRegistry(const JoinSearchStats& stats) {
  obs::AccountRowsJoined(stats.candidates);
  XTOPK_COUNTER("core.join.queries").Add(1);
  XTOPK_COUNTER("core.join.levels").Add(stats.levels_processed);
  XTOPK_COUNTER("core.join.candidates").Add(stats.candidates);
  XTOPK_COUNTER("core.join.results").Add(stats.results);
  XTOPK_COUNTER("core.join.rows_erased").Add(stats.rows_erased);
  XTOPK_COUNTER("core.join.erasure_touches").Add(stats.erasure_touches);
  XTOPK_COUNTER("core.join.merge_joins").Add(stats.join_ops.merge_joins);
  XTOPK_COUNTER("core.join.index_joins").Add(stats.join_ops.index_joins);
  XTOPK_COUNTER("core.join.gallop_joins").Add(stats.join_ops.gallop_joins);
  XTOPK_COUNTER("core.join.run_comparisons")
      .Add(stats.join_ops.run_comparisons);
  XTOPK_COUNTER("core.join.probes").Add(stats.join_ops.probes);
  XTOPK_COUNTER("core.join.gallops").Add(stats.join_ops.gallops);
  XTOPK_COUNTER("core.join.early_empty").Add(stats.join_ops.early_empty);
  if (stats.planned) XTOPK_COUNTER("core.plan.planned_queries").Add(1);
  if (stats.deadline_expired) {
    XTOPK_COUNTER("core.join.deadline_expirations").Add(1);
  }
}

}  // namespace

JoinSearch::Erasure::Erasure(bool use_ranges, uint32_t rows,
                             uint64_t* touches)
    : use_ranges_(use_ranges), touches_(touches) {
  if (!use_ranges_) bitmap_.assign(rows, 0);
}

void JoinSearch::Erasure::EraseRange(uint32_t begin, uint32_t end) {
  if (use_ranges_) {
    size_t before = ranges_.interval_count();
    ranges_.Add(begin, end);
    // Cost model: intervals merged away plus the insertion itself.
    *touches_ += before - ranges_.interval_count() + 2;
  } else {
    for (uint32_t r = begin; r < end; ++r) bitmap_[r] = 1;
    *touches_ += end - begin;
  }
}

uint32_t JoinSearch::Erasure::CountErased(uint32_t begin, uint32_t end) const {
  if (use_ranges_) {
    // Binary search plus a walk over the overlapped intervals (§III-E:
    // "the range checking is simply a binary search process").
    uint32_t overlap = ranges_.CountOverlap(begin, end);
    *touches_ += 2;
    return overlap;
  }
  uint32_t count = 0;
  for (uint32_t r = begin; r < end; ++r) count += bitmap_[r];
  *touches_ += end - begin;
  return count;
}

template <typename Fn>
void JoinSearch::Erasure::ForEachAlive(uint32_t begin, uint32_t end,
                                       Fn&& fn) const {
  if (use_ranges_) {
    ranges_.ForEachUncovered(begin, end, fn);
    return;
  }
  uint32_t r = begin;
  while (r < end) {
    while (r < end && bitmap_[r]) ++r;
    uint32_t lo = r;
    while (r < end && !bitmap_[r]) ++r;
    if (lo < r) fn(lo, r);
  }
}

JoinSearch::JoinSearch(TermSource* source, JoinSearchOptions options)
    : source_(source), options_(options) {}

JoinSearch::JoinSearch(const JDeweyIndex& index, JoinSearchOptions options)
    : owned_source_(std::make_unique<MemoryTermSource>(index)),
      options_(options) {
  source_ = owned_source_.get();
}

std::vector<SearchResult> JoinSearch::Search(
    const std::vector<std::string>& keywords) {
  return SearchWithTrace(keywords, nullptr);
}

std::vector<SearchResult> JoinSearch::SearchWithTrace(
    const std::vector<std::string>& keywords,
    std::vector<LevelTrace>* trace) {
  stats_ = JoinSearchStats{};
  last_status_ = Status::Ok();
  if (trace != nullptr) trace->clear();
  obs::ScopedSpan root(options_.trace, "join_search");
  root.Stat("keywords", static_cast<double>(keywords.size()));
  std::vector<SearchResult> results;
  if (keywords.empty()) {
    root.Label("termination", "empty_query");
    FlushJoinStatsToRegistry(stats_);
    return results;
  }

  // Deadline gate before any I/O: a query that arrives already expired
  // (e.g. it sat in an admission queue) must not touch the posting source.
  if (options_.deadline.expired()) {
    stats_.deadline_expired = true;
    last_status_ = Status::DeadlineExceeded("expired before list resolution");
    root.Label("termination", "deadline");
    FlushJoinStatsToRegistry(stats_);
    return results;
  }

  // Resolve inverted lists through the posting source (seed-first, bounded
  // loads on skip-capable sources); a missing keyword means no answers.
  std::vector<const JDeweyList*> lists;
  last_status_ =
      ResolveForJoin(source_, keywords, options_.compute_scores, &lists);
  if (!last_status_.ok()) {
    root.Label("termination", "resolve_error");
    FlushJoinStatsToRegistry(stats_);
    return results;
  }
  if (lists.empty()) {
    root.Label("termination", "missing_term");
    FlushJoinStatsToRegistry(stats_);
    return results;
  }
  const size_t k = lists.size();

  // The scan starts at the lowest level that every keyword reaches: there
  // cannot be an LCA of all keywords lower than min over lists of their
  // deepest occurrence level.
  uint32_t start_level = lists[0]->max_length;
  for (const JDeweyList* list : lists) {
    start_level = std::min(start_level, list->max_length);
  }

  // Join order + per-step algorithms. With the cost-based planner the
  // order comes from the histogram DP (cached per term set + index
  // watermark); otherwise it is the §III-C heuristic — shortest list
  // first, ties broken by term so the order is backend-independent.
  std::vector<size_t> sizes(k);
  for (size_t i = 0; i < k; ++i) sizes[i] = lists[i]->num_rows();
  std::shared_ptr<const JoinPlan> plan;
  if (options_.use_planner && !PlannerDisabledByEnv()) {
    uint64_t fingerprint = PlanFingerprint(keywords);
    uint64_t watermark = source_->PlanWatermark();
    if (options_.plan_cache != nullptr) {
      plan = options_.plan_cache->Lookup(fingerprint, watermark);
      stats_.plan_cache_hit = plan != nullptr;
    }
    if (plan == nullptr) {
      std::vector<TermPlanInput> inputs(k);
      for (size_t i = 0; i < k; ++i) {
        inputs[i].term = keywords[i];
        inputs[i].rows = lists[i]->num_rows();
        inputs[i].stats = source_->Stats(keywords[i]);
      }
      auto built = std::make_shared<JoinPlan>(
          PlanJoin(std::move(inputs), start_level, options_.planner));
      built->fingerprint = fingerprint;
      built->watermark = watermark;
      if (options_.plan_cache != nullptr) options_.plan_cache->Insert(built);
      plan = std::move(built);
    }
  }

  // Map plan steps (terms in join order) back to query positions; an
  // unmappable plan is discarded and the heuristic order takes over.
  std::vector<size_t> order;
  if (plan != nullptr) {
    order = MapPlanOrder(*plan, keywords, start_level);
    if (order.empty()) plan = nullptr;
  }
  if (plan == nullptr) {
    order = PlanJoinOrder(sizes, keywords);
  } else {
    stats_.planned = true;
  }
  if (options_.trace != nullptr) {
    obs::ScopedSpan plan_span(options_.trace, "join_plan");
    plan_span.Label("mode", plan == nullptr          ? "heuristic"
                            : plan->exact            ? "dp"
                                                     : "greedy");
    // Cache hit/miss is deliberately NOT a span label: traces of identical
    // queries must be field-for-field deterministic (engine_batch_test);
    // hit rates live in JoinSearchStats and the registry counters instead.
    if (plan != nullptr) plan_span.Stat("est_cost", plan->est_cost);
    std::string rendered;
    for (size_t j = 0; j < k; ++j) {
      if (j > 0) rendered += ",";
      rendered += keywords[order[j]];
    }
    plan_span.Label("order", rendered);
  }

  std::vector<Erasure> erasure;
  erasure.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    erasure.emplace_back(options_.use_range_check, lists[i]->num_rows(),
                         &stats_.erasure_touches);
  }

  for (uint32_t level = start_level; level >= 1; --level) {
    // Level boundary = deadline checkpoint: each level's joins and erasure
    // updates run to completion, so stopping here leaves a consistent
    // partial answer (every level processed so far is exact).
    if (options_.deadline.expired()) {
      stats_.deadline_expired = true;
      last_status_ = Status::DeadlineExceeded(
          "expired at level " + std::to_string(level) + " of " +
          std::to_string(start_level));
      break;
    }
    ++stats_.levels_processed;
    LevelTrace level_trace;
    level_trace.level = level;
    obs::ScopedSpan level_span(
        options_.trace, options_.trace != nullptr
                            ? "level_" + std::to_string(level)
                            : std::string());
    uint64_t erased_before = stats_.rows_erased;
    uint64_t candidates_before = stats_.candidates;
    uint64_t results_before = stats_.results;
    uint64_t merge_before = stats_.join_ops.merge_joins;
    uint64_t index_before = stats_.join_ops.index_joins;
    uint64_t gallop_before = stats_.join_ops.gallop_joins;

    // Left-deep pipeline over this level's columns in join order. The
    // merge/gallop/probe decision is re-made per step inside
    // IntersectColumns (§III-C dynamic optimization). Lists carrying DAG
    // data join their dedup columns and fan shared matches out afterwards
    // (bit-identical, see core/dag_join.h).
    std::vector<const JDeweyList*> ordered(k);
    for (size_t j = 0; j < k; ++j) ordered[j] = lists[order[j]];
    IntersectStepFn on_step;
    if (trace != nullptr || level_span.enabled()) {
      on_step = [&](size_t j, JoinAlgo algo, uint64_t input_runs,
                    uint64_t output_matches) {
        JoinStepTrace step{order[j], algo == JoinAlgo::kIndex, algo,
                           input_runs, output_matches, -1.0};
        if (plan != nullptr) step.est_output = plan->steps[j].est_out[level - 1];
        level_trace.steps.push_back(std::move(step));
      };
    }
    std::deque<Run> dag_arena;  // backs translated runs for this level
    std::vector<LevelMatch> matches;
    if (plan != nullptr) {
      std::vector<JoinAlgo> algos(k - 1);
      for (size_t j = 1; j < k; ++j) algos[j - 1] = plan->steps[j].algos[level - 1];
      matches = IntersectListsAtLevel(ordered, level, &algos, options_.planner,
                                      &stats_.join_ops, on_step, &dag_arena);
    } else {
      matches = IntersectListsAtLevel(ordered, level, nullptr, options_.planner,
                                      &stats_.join_ops, on_step, &dag_arena);
    }
    if (level_span.enabled()) {
      // One child span per executed join step, carrying the planner's
      // estimated output next to the actual (Explain's est-vs-actual view).
      for (const JoinStepTrace& step : level_trace.steps) {
        obs::ScopedSpan step_span(options_.trace, "join_step");
        step_span.Label("term", keywords[step.query_position]);
        step_span.Label("algo", step.algo == JoinAlgo::kIndex    ? "index"
                                : step.algo == JoinAlgo::kGallop ? "gallop"
                                                                 : "merge");
        step_span.Stat("input_runs", static_cast<double>(step.input_runs));
        step_span.Stat("actual_out", static_cast<double>(step.output_matches));
        if (step.est_output >= 0.0) step_span.Stat("est_out", step.est_output);
      }
    }

    for (const LevelMatch& match : matches) {
      ++stats_.candidates;
      // match.runs[j] belongs to list order[j]; fetch per query position.
      auto run_of = [&](size_t query_pos) -> const Run* {
        for (size_t j = 0; j < k; ++j) {
          if (order[j] == query_pos) return match.runs[j];
        }
        assert(false);
        return nullptr;
      };

      bool is_result = false;
      if (options_.semantics == Semantics::kElca) {
        // ELCA (§III-E): every keyword must retain at least one occurrence
        // not consumed by a lower ELCA. Failed candidates erase nothing —
        // their surviving occurrences must stay visible to ancestors.
        is_result = true;
        for (size_t i = 0; i < k && is_result; ++i) {
          const Run* run = run_of(i);
          uint32_t erased =
              erasure[i].CountErased(run->first_row, run->end_row());
          if (erased >= run->count) is_result = false;
        }
      } else {
        // SLCA (§III-F): the candidate is an answer iff no occurrence below
        // it was already matched (no descendant LCA). Every matched value
        // erases its runs so that ancestors observe the descendant match.
        is_result = true;
        for (size_t i = 0; i < k && is_result; ++i) {
          const Run* run = run_of(i);
          if (erasure[i].CountErased(run->first_row, run->end_row()) > 0) {
            is_result = false;
          }
        }
      }

      double score = 0.0;
      if (is_result && options_.compute_scores) {
        // Sum over keywords of the damped maximum among the occurrences
        // that belong to this result (non-erased rows of the run).
        for (size_t i = 0; i < k; ++i) {
          const Run* run = run_of(i);
          const JDeweyList* list = lists[i];
          double best = 0.0;
          erasure[i].ForEachAlive(
              run->first_row, run->end_row(), [&](uint32_t lo, uint32_t hi) {
                for (uint32_t row = lo; row < hi; ++row) {
                  double damped =
                      DampedScore(options_.scoring, list->scores[row],
                                  list->lengths[row], level);
                  best = std::max(best, damped);
                }
              });
          score += best;
        }
      }

      bool erase_runs =
          options_.semantics == Semantics::kSlca ? true : is_result;
      if (erase_runs) {
        for (size_t i = 0; i < k; ++i) {
          const Run* run = run_of(i);
          erasure[i].EraseRange(run->first_row, run->end_row());
          stats_.rows_erased += run->count;
        }
      }

      if (is_result) {
        ++stats_.results;
        NodeId node = source_->NodeAt(level, match.value);
        assert(node != kInvalidNode);
        results.push_back(SearchResult{node, level, score});
      }
    }

    if (trace != nullptr) {
      level_trace.candidates = stats_.candidates - candidates_before;
      level_trace.results = stats_.results - results_before;
      level_trace.rows_erased = stats_.rows_erased - erased_before;
      trace->push_back(std::move(level_trace));
    }
    if (level_span.enabled()) {
      level_span.Stat("candidates",
                      static_cast<double>(stats_.candidates -
                                          candidates_before));
      level_span.Stat("results",
                      static_cast<double>(stats_.results - results_before));
      level_span.Stat("rows_erased",
                      static_cast<double>(stats_.rows_erased - erased_before));
      level_span.Stat("merge_joins",
                      static_cast<double>(stats_.join_ops.merge_joins -
                                          merge_before));
      level_span.Stat("index_joins",
                      static_cast<double>(stats_.join_ops.index_joins -
                                          index_before));
      level_span.Stat("gallop_joins",
                      static_cast<double>(stats_.join_ops.gallop_joins -
                                          gallop_before));
    }
  }
  if (root.enabled()) {
    root.Stat("levels", static_cast<double>(stats_.levels_processed));
    root.Stat("candidates", static_cast<double>(stats_.candidates));
    root.Stat("results", static_cast<double>(stats_.results));
    root.Stat("rows_erased", static_cast<double>(stats_.rows_erased));
    root.Stat("erasure_touches", static_cast<double>(stats_.erasure_touches));
    root.Label("termination",
               stats_.deadline_expired ? "deadline" : "complete");
  }
  FlushJoinStatsToRegistry(stats_);
  return results;
}

}  // namespace xtopk
