#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/join_ops.h"
#include "core/join_planner.h"
#include "util/rng.h"

namespace xtopk {
namespace {

/// A column of `n` distinct values drawn sparsely from [0, universe).
Column RandomSortedColumn(uint64_t seed, size_t n, uint64_t universe) {
  Rng rng(seed);
  Column col;
  uint64_t value = 0;
  uint32_t row = 0;
  for (size_t i = 0; i < n; ++i) {
    value += 1 + rng.NextBounded(universe / n + 1);
    uint32_t count = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    for (uint32_t c = 0; c < count; ++c) {
      col.Append(row++, static_cast<uint32_t>(value));
    }
  }
  return col;
}

void ExpectSameMatches(const std::vector<LevelMatch>& a,
                       const std::vector<LevelMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << i;
    ASSERT_EQ(a[i].runs.size(), b[i].runs.size()) << i;
    for (size_t j = 0; j < a[i].runs.size(); ++j) {
      EXPECT_EQ(a[i].runs[j], b[i].runs[j]) << i << "," << j;
    }
  }
}

TEST(GallopJoinTest, MatchesMergeIntersectBothSkews) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    // Small-left / big-right (the gallop sweet spot) and the reverse.
    for (auto [ls, rs] : {std::pair<size_t, size_t>{40, 4000},
                          {4000, 40},
                          {500, 500},
                          {1, 1000},
                          {1000, 1}}) {
      Column left = RandomSortedColumn(seed, ls, 100000);
      Column right = RandomSortedColumn(seed + 77, rs, 100000);
      JoinOpStats merge_stats, gallop_stats;
      auto merged =
          MergeIntersect(SeedMatches(left), right, &merge_stats);
      auto galloped =
          GallopIntersect(SeedMatches(left), right, &gallop_stats);
      ExpectSameMatches(merged, galloped);
      EXPECT_EQ(gallop_stats.gallop_joins, 1u);
      EXPECT_EQ(merge_stats.merge_joins, 1u);
    }
  }
}

TEST(GallopJoinTest, EdgeCases) {
  Column empty;
  Column one;
  one.Append(0, 42);
  JoinOpStats stats;
  EXPECT_TRUE(GallopIntersect(SeedMatches(empty), one, &stats).empty());
  EXPECT_TRUE(GallopIntersect(SeedMatches(one), empty, &stats).empty());
  auto self = GallopIntersect(SeedMatches(one), one, &stats);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].value, 42u);
}

TEST(GallopJoinTest, GallopBeatsMergeOnSkewedInputs) {
  // 50 probe values against 100k: galloping should step far fewer cursors
  // than the linear merge scan.
  Column small = RandomSortedColumn(5, 50, 10000000);
  Column big = RandomSortedColumn(6, 100000, 10000000);
  JoinOpStats merge_stats, gallop_stats;
  MergeIntersect(SeedMatches(small), big, &merge_stats);
  GallopIntersect(SeedMatches(small), big, &gallop_stats);
  EXPECT_LT(gallop_stats.run_comparisons, merge_stats.run_comparisons / 10);
  EXPECT_GT(gallop_stats.gallops, 0u);
}

TEST(GallopJoinTest, PlannerPicksAlgoByShape) {
  PlannerOptions options;  // defaults: index at 16x, gallop at 8x
  EXPECT_EQ(ChooseJoinAlgo(1000, 1000, options), JoinAlgo::kMerge);
  EXPECT_EQ(ChooseJoinAlgo(1000, 1200, options), JoinAlgo::kMerge);
  EXPECT_EQ(ChooseJoinAlgo(100, 900, options), JoinAlgo::kGallop);
  EXPECT_EQ(ChooseJoinAlgo(900, 100, options), JoinAlgo::kGallop);
  EXPECT_EQ(ChooseJoinAlgo(10, 1000, options), JoinAlgo::kIndex);

  PlannerOptions force_merge;
  force_merge.policy = JoinPolicy::kForceMerge;
  EXPECT_EQ(ChooseJoinAlgo(10, 1000, force_merge), JoinAlgo::kMerge);
  PlannerOptions force_index;
  force_index.policy = JoinPolicy::kForceIndex;
  EXPECT_EQ(ChooseJoinAlgo(1000, 1000, force_index), JoinAlgo::kIndex);
}

}  // namespace
}  // namespace xtopk
