#include "index/index_io.h"

#include <cstring>

#include "index/index_access.h"
#include "storage/compression.h"
#include "storage/serializer.h"
#include "util/varint.h"

namespace xtopk {
namespace index_io {
namespace {

constexpr char kMagic[4] = {'X', 'T', 'K', '1'};
constexpr char kDeweyMagic[4] = {'X', 'T', 'D', '1'};

/// Row ids present in a column of a list with the given row lengths.
std::vector<uint32_t> PresentRows(const std::vector<uint16_t>& lengths,
                                  uint32_t level) {
  std::vector<uint32_t> rows;
  for (uint32_t row = 0; row < lengths.size(); ++row) {
    if (lengths[row] >= level) rows.push_back(row);
  }
  return rows;
}

}  // namespace

void EncodeJDeweyIndex(const JDeweyIndex& index, bool include_scores,
                       std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  out->push_back(include_scores ? 1 : 0);
  varint::PutU32(out, index.max_level());
  varint::PutU32(out, static_cast<uint32_t>(index.terms().size()));
  for (size_t t = 0; t < index.terms().size(); ++t) {
    const JDeweyList& list = index.lists()[t];
    ser::PutLengthPrefixed(out, index.terms()[t]);
    varint::PutU32(out, list.num_rows());
    varint::PutU32(out, list.max_length);
    for (uint16_t len : list.lengths) varint::PutU32(out, len);
    if (include_scores) {
      for (float s : list.scores) ser::PutFloat(out, s);
    }
    varint::PutU32(out, static_cast<uint32_t>(list.columns.size()));
    for (const Column& column : list.columns) {
      EncodeColumn(column, ColumnCodec::kAuto, out);
    }
  }
  const auto& level_nodes = IndexIoAccess::LevelNodes(index);
  varint::PutU32(out, static_cast<uint32_t>(level_nodes.size()));
  for (const auto& level : level_nodes) {
    varint::PutU32(out, static_cast<uint32_t>(level.size()));
    uint32_t prev_value = 0;
    int64_t prev_node = 0;
    for (const auto& [value, node] : level) {
      varint::PutU32(out, value - prev_value);
      varint::PutS64(out, static_cast<int64_t>(node) - prev_node);
      prev_value = value;
      prev_node = static_cast<int64_t>(node);
    }
  }
}

Status DecodeJDeweyIndex(const std::string& data, JDeweyIndex* out) {
  size_t pos = 0;
  if (data.size() < 5 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::Corruption("jdewey index: bad magic");
  }
  pos = 4;
  bool has_scores = data[pos++] != 0;
  uint32_t max_level = 0, term_count = 0;
  Status s = varint::GetU32(data, &pos, &max_level);
  if (s.ok()) s = varint::GetU32(data, &pos, &term_count);
  if (!s.ok()) return s;
  *IndexIoAccess::MaxLevel(out) = max_level;

  auto* terms = IndexIoAccess::Terms(out);
  auto* term_ids = IndexIoAccess::TermIds(out);
  auto* lists = IndexIoAccess::Lists(out);
  terms->clear();
  term_ids->clear();
  lists->clear();
  lists->resize(term_count);
  terms->resize(term_count);
  for (uint32_t t = 0; t < term_count; ++t) {
    JDeweyList& list = (*lists)[t];
    s = ser::GetLengthPrefixed(data, &pos, &(*terms)[t]);
    if (!s.ok()) return s;
    term_ids->emplace((*terms)[t], t);
    uint32_t rows = 0, max_length = 0;
    s = varint::GetU32(data, &pos, &rows);
    if (s.ok()) s = varint::GetU32(data, &pos, &max_length);
    if (!s.ok()) return s;
    list.max_length = max_length;
    list.lengths.resize(rows);
    if (max_length > UINT16_MAX) {
      return Status::Corruption("jdewey index: bad max length");
    }
    for (uint32_t r = 0; r < rows; ++r) {
      uint32_t len = 0;
      s = varint::GetU32(data, &pos, &len);
      if (!s.ok()) return s;
      if (len == 0 || len > max_length) {
        return Status::Corruption("jdewey index: bad row length");
      }
      list.lengths[r] = static_cast<uint16_t>(len);
    }
    list.scores.assign(rows, 0.0f);
    if (has_scores) {
      for (uint32_t r = 0; r < rows; ++r) {
        s = ser::GetFloat(data, &pos, &list.scores[r]);
        if (!s.ok()) return s;
      }
    }
    uint32_t column_count = 0;
    s = varint::GetU32(data, &pos, &column_count);
    if (!s.ok()) return s;
    if (column_count != max_length) {
      return Status::Corruption("jdewey index: column count mismatch");
    }
    list.columns.resize(column_count);
    for (uint32_t level = 1; level <= column_count; ++level) {
      std::vector<uint32_t> present = PresentRows(list.lengths, level);
      s = DecodeColumn(data, &pos, &present, &list.columns[level - 1]);
      if (!s.ok()) return s;
    }
  }

  uint32_t level_count = 0;
  s = varint::GetU32(data, &pos, &level_count);
  if (!s.ok()) return s;
  auto* level_nodes = IndexIoAccess::LevelNodes(out);
  level_nodes->clear();
  level_nodes->resize(level_count);
  for (uint32_t l = 0; l < level_count; ++l) {
    uint32_t entries = 0;
    s = varint::GetU32(data, &pos, &entries);
    if (!s.ok()) return s;
    uint32_t prev_value = 0;
    int64_t prev_node = 0;
    auto& level = (*level_nodes)[l];
    level.reserve(entries);
    for (uint32_t e = 0; e < entries; ++e) {
      uint32_t dv = 0;
      int64_t dn = 0;
      s = varint::GetU32(data, &pos, &dv);
      if (s.ok()) s = varint::GetS64(data, &pos, &dn);
      if (!s.ok()) return s;
      prev_value += dv;
      prev_node += dn;
      level.emplace_back(prev_value, static_cast<NodeId>(prev_node));
    }
  }

  // Reconstruct per-row occurrence nodes from the level-node mapping: a
  // row's node sits at (row length, value of its deepest component).
  for (JDeweyList& list : *lists) {
    list.nodes.resize(list.num_rows());
    for (uint32_t row = 0; row < list.num_rows(); ++row) {
      uint32_t level = list.lengths[row];
      const Run* run = list.columns[level - 1].FindRow(row);
      if (run == nullptr) {
        return Status::Corruption("jdewey index: row missing own component");
      }
      NodeId node = out->NodeAt(level, run->value);
      if (node == kInvalidNode) {
        return Status::Corruption("jdewey index: unresolvable occurrence");
      }
      list.nodes[row] = node;
    }
  }
  return Status::Ok();
}

Status SaveJDeweyIndex(const JDeweyIndex& index, bool include_scores,
                       const std::string& path) {
  std::string buf;
  EncodeJDeweyIndex(index, include_scores, &buf);
  return ser::WriteFile(path, buf);
}

StatusOr<JDeweyIndex> LoadJDeweyIndex(const std::string& path) {
  std::string buf;
  Status s = ser::ReadFile(path, &buf);
  if (!s.ok()) return s;
  JDeweyIndex index;
  s = DecodeJDeweyIndex(buf, &index);
  if (!s.ok()) return s;
  return index;
}

void EncodeDeweyIndex(const DeweyIndex& index, std::string* out) {
  out->append(kDeweyMagic, sizeof(kDeweyMagic));
  const auto& term_ids = IndexIoAccess::TermIds(index);
  const auto& lists = IndexIoAccess::Lists(index);
  varint::PutU32(out, static_cast<uint32_t>(lists.size()));
  // Stable term order for deterministic bytes.
  std::vector<const std::string*> terms(lists.size());
  for (const auto& [term, id] : term_ids) terms[id] = &term;
  for (size_t t = 0; t < lists.size(); ++t) {
    const DeweyList& list = lists[t];
    ser::PutLengthPrefixed(out, *terms[t]);
    varint::PutU32(out, list.num_rows());
    DeweyId prev;
    for (uint32_t row = 0; row < list.num_rows(); ++row) {
      const DeweyId& cur = list.deweys[row];
      // Prefix compression: shared length, remainder count, components.
      size_t shared = prev.CommonPrefixLength(cur);
      varint::PutU32(out, static_cast<uint32_t>(shared));
      varint::PutU32(out, static_cast<uint32_t>(cur.length() - shared));
      for (size_t i = shared; i < cur.length(); ++i) {
        varint::PutU32(out, cur[i]);
      }
      prev = cur;
    }
    for (uint32_t row = 0; row < list.num_rows(); ++row) {
      varint::PutU32(out, list.nodes[row]);
      ser::PutFloat(out, list.scores[row]);
    }
  }
}

Status DecodeDeweyIndex(const std::string& data, DeweyIndex* out) {
  size_t pos = 0;
  if (data.size() < 4 || std::memcmp(data.data(), kDeweyMagic, 4) != 0) {
    return Status::Corruption("dewey index: bad magic");
  }
  pos = 4;
  uint32_t term_count = 0;
  Status s = varint::GetU32(data, &pos, &term_count);
  if (!s.ok()) return s;
  auto* term_ids = IndexIoAccess::TermIds(out);
  auto* lists = IndexIoAccess::Lists(out);
  term_ids->clear();
  lists->clear();
  lists->resize(term_count);
  for (uint32_t t = 0; t < term_count; ++t) {
    std::string term;
    s = ser::GetLengthPrefixed(data, &pos, &term);
    if (!s.ok()) return s;
    term_ids->emplace(std::move(term), t);
    DeweyList& list = (*lists)[t];
    uint32_t rows = 0;
    s = varint::GetU32(data, &pos, &rows);
    if (!s.ok()) return s;
    list.deweys.reserve(rows);
    std::vector<uint32_t> prev;
    for (uint32_t row = 0; row < rows; ++row) {
      uint32_t shared = 0, extra = 0;
      s = varint::GetU32(data, &pos, &shared);
      if (s.ok()) s = varint::GetU32(data, &pos, &extra);
      if (!s.ok()) return s;
      if (shared > prev.size()) {
        return Status::Corruption("dewey index: bad shared prefix");
      }
      std::vector<uint32_t> comps(prev.begin(), prev.begin() + shared);
      for (uint32_t i = 0; i < extra; ++i) {
        uint32_t c = 0;
        s = varint::GetU32(data, &pos, &c);
        if (!s.ok()) return s;
        comps.push_back(c);
      }
      prev = comps;
      list.deweys.emplace_back(std::move(comps));
    }
    list.nodes.resize(rows);
    list.scores.resize(rows);
    for (uint32_t row = 0; row < rows; ++row) {
      s = varint::GetU32(data, &pos, &list.nodes[row]);
      if (s.ok()) s = ser::GetFloat(data, &pos, &list.scores[row]);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace index_io
}  // namespace xtopk
