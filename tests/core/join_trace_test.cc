#include <gtest/gtest.h>

#include "core/join_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"
#include "workload/dblp_gen.h"

namespace xtopk {
namespace {

TEST(JoinTraceTest, TraceIsConsistentWithStatsAndResults) {
  XmlTree tree = testing::MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  std::vector<LevelTrace> trace;
  auto results = search.SearchWithTrace({"xml", "data"}, &trace);

  const JoinSearchStats& stats = search.stats();
  ASSERT_EQ(trace.size(), stats.levels_processed);
  // Levels descend from the start level to 1.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i - 1].level, trace[i].level + 1);
  }
  uint64_t candidates = 0, result_count = 0, erased = 0, steps = 0;
  for (const LevelTrace& level : trace) {
    candidates += level.candidates;
    result_count += level.results;
    erased += level.rows_erased;
    steps += level.steps.size();
    // k=2 keywords -> exactly one join step per level.
    EXPECT_EQ(level.steps.size(), 1u);
  }
  EXPECT_EQ(candidates, stats.candidates);
  EXPECT_EQ(result_count, stats.results);
  EXPECT_EQ(result_count, results.size());
  EXPECT_EQ(erased, stats.rows_erased);
  EXPECT_EQ(steps, stats.join_ops.merge_joins + stats.join_ops.index_joins +
                       stats.join_ops.gallop_joins);
}

TEST(JoinTraceTest, DynamicDecisionsVisiblePerLevel) {
  // Short + long keyword: at deep levels the short intermediate should
  // pick the index join against the long column.
  DblpGenOptions gen;
  gen.planted = {{"needle", 20, "", 0.0}, {"hay", 8000, "", 0.0}};
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  std::vector<LevelTrace> trace;
  search.SearchWithTrace({"needle", "hay"}, &trace);
  ASSERT_FALSE(trace.empty());
  bool saw_index_join = false;
  for (const LevelTrace& level : trace) {
    for (const JoinStepTrace& step : level.steps) {
      if (step.index_join) saw_index_join = true;
      // The joined column is always the long keyword's (query position 1,
      // since "needle" is shorter and seeds the pipeline).
      EXPECT_EQ(step.query_position, 1u);
      EXPECT_LE(step.output_matches, step.input_runs);
    }
  }
  EXPECT_TRUE(saw_index_join);
}

TEST(JoinTraceTest, ContextAwareSelectionAcrossLevels) {
  // The paper's §III-C anecdote, reproduced: {topk, rewriting, xml} over
  // DBLP. Few papers contain both rare terms, but most years/conferences
  // do — so the same query's second join should probe (index join) at the
  // paper level where the intermediate is tiny, and switch to the merge
  // join at the year/conference levels where "keyword correlation is a
  // concept bound to specific contexts".
  DblpGenOptions gen;
  gen.num_conferences = 50;
  gen.years_per_conference = 10;
  gen.papers_per_year = 100;
  gen.planted = {
      {"topkterm", 500, "", 0.0},
      {"rewriting", 800, "", 0.0},
      {"xmlterm", 10000, "", 0.0},
  };
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch search(index);
  std::vector<LevelTrace> trace;
  search.SearchWithTrace({"topkterm", "rewriting", "xmlterm"}, &trace);
  ASSERT_GE(trace.size(), 4u);

  // trace is bottom-up: title level first, root last. The second step of
  // each level joins in the long xml column.
  bool deep_used_index = false, shallow_used_merge = false;
  for (const LevelTrace& level : trace) {
    ASSERT_EQ(level.steps.size(), 2u);
    const JoinStepTrace& second = level.steps[1];
    if (level.level >= 4 && second.index_join) deep_used_index = true;
    if (level.level <= 3 && !second.index_join) shallow_used_merge = true;
  }
  EXPECT_TRUE(deep_used_index)
      << "expected the index join where few papers hold both rare terms";
  EXPECT_TRUE(shallow_used_merge)
      << "expected the merge join where most years/conferences hold both";
}

TEST(JoinTraceTest, SearchAndSearchWithTraceAgree) {
  XmlTree tree =
      testing::MakeRandomTree(88, 400, 4, 7, {"alpha", "beta"}, 0.2);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  JoinSearch a(index), b(index);
  std::vector<LevelTrace> trace;
  auto plain = a.Search({"alpha", "beta"});
  auto traced = b.SearchWithTrace({"alpha", "beta"}, &trace);
  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].node, traced[i].node);
    EXPECT_EQ(plain[i].score, traced[i].score);
  }
}

}  // namespace
}  // namespace xtopk
