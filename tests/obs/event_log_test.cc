#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace xtopk {
namespace obs {
namespace {

TEST(EventLogTest, AppendAndSnapshotInOrder) {
  EventLog log;
  log.Append("seal", "segment 1 sealed");
  log.Append("compact", "2 segments -> 1");
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "seal");
  EXPECT_EQ(events[0].text, "segment 1 sealed");
  EXPECT_EQ(events[1].kind, "compact");
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(log.appended(), 2u);
}

TEST(EventLogTest, RingOverwritesOldestAndKeepsNewest) {
  EventLog log;
  for (size_t i = 0; i < EventLog::kCapacity + 10; ++i) {
    log.Append("k", "event " + std::to_string(i));
  }
  auto events = log.Snapshot();
  EXPECT_EQ(events.size(), EventLog::kCapacity);
  // The survivors are exactly the newest kCapacity appends.
  EXPECT_EQ(events.front().sequence, 10u);
  EXPECT_EQ(events.back().sequence, EventLog::kCapacity + 9);
  EXPECT_EQ(log.appended(), EventLog::kCapacity + 10);
}

TEST(EventLogTest, SnapshotMaxReturnsNewest) {
  EventLog log;
  for (int i = 0; i < 20; ++i) log.Append("k", std::to_string(i));
  auto events = log.Snapshot(/*max=*/5);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().text, "15");
  EXPECT_EQ(events.back().text, "19");
}

TEST(EventLogTest, TruncatesOversizedPayloads) {
  EventLog log;
  std::string long_kind(100, 'k');
  std::string long_text(1000, 't');
  log.Append(long_kind, long_text);
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind.size(), EventLog::kKindBytes - 1);
  EXPECT_EQ(events[0].text.size(), EventLog::kTextBytes - 1);
}

TEST(EventLogTest, JsonEscapesPayloads) {
  EventLog log;
  log.Append("quote", "say \"hi\"\nnewline");
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line
}

TEST(EventLogTest, ConcurrentAppendersNeverTearReads) {
  EventLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append("thread" + std::to_string(t),
                   "payload-" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  // Read concurrently: every snapshotted event must be internally
  // consistent (kind and text from the same append).
  for (int reads = 0; reads < 50; ++reads) {
    for (const auto& event : log.Snapshot()) {
      ASSERT_EQ(event.kind.substr(0, 6), "thread");
      std::string thread_id = event.kind.substr(6);
      ASSERT_EQ(event.text.substr(0, 9 + thread_id.size()),
                "payload-" + thread_id + "-");
    }
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(log.appended(), static_cast<uint64_t>(kThreads * kPerThread));
  auto events = log.Snapshot();
  EXPECT_LE(events.size(), EventLog::kCapacity);
  // Sequences are unique.
  std::set<uint64_t> sequences;
  for (const auto& event : events) sequences.insert(event.sequence);
  EXPECT_EQ(sequences.size(), events.size());
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
