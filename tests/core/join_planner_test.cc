// Cost-based planner units: the term-set fingerprint, the tie-broken
// heuristic order, the plan/keyword mapping, and PlanJoin itself — which
// must reproduce shortest-first ordering without statistics, exploit
// histogram overlap when it has them, and stay deterministic under input
// permutation.

#include "core/join_planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "storage/histogram.h"

namespace xtopk {
namespace {

Column MakeColumnOfValues(const std::vector<uint32_t>& values) {
  Column col;
  uint32_t row = 0;
  for (uint32_t v : values) col.Append(row++, v);
  return col;
}

/// rows values first, first+stride, ... at level 1 only.
TermStats MakeStats(uint32_t first, uint32_t stride, uint32_t rows) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < rows; ++i) values.push_back(first + i * stride);
  TermStats stats;
  stats.rows = rows;
  stats.levels.push_back(
      LevelHistogram::FromColumn(MakeColumnOfValues(values), 32));
  return stats;
}

TEST(PlanFingerprintTest, OrderInsensitiveAndSetSensitive) {
  uint64_t ab = PlanFingerprint({"alpha", "beta"});
  uint64_t ba = PlanFingerprint({"beta", "alpha"});
  EXPECT_EQ(ab, ba);
  EXPECT_NE(ab, PlanFingerprint({"alpha"}));
  EXPECT_NE(ab, PlanFingerprint({"alpha", "beta", "gamma"}));
  // Term boundaries must hash: {"ab", "c"} != {"a", "bc"}.
  EXPECT_NE(PlanFingerprint({"ab", "c"}), PlanFingerprint({"a", "bc"}));
  // Duplicates are part of the set signature.
  EXPECT_NE(PlanFingerprint({"alpha", "alpha"}), PlanFingerprint({"alpha"}));
}

TEST(PlanJoinOrderTest, TieBrokenByTermNotPosition) {
  std::vector<size_t> sizes = {5, 5, 5};
  std::vector<std::string> terms = {"cherry", "apple", "banana"};
  std::vector<size_t> order = PlanJoinOrder(sizes, terms);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(terms[order[0]], "apple");
  EXPECT_EQ(terms[order[1]], "banana");
  EXPECT_EQ(terms[order[2]], "cherry");
  // Size still dominates the tie-break.
  sizes = {5, 9, 5};
  order = PlanJoinOrder(sizes, terms);
  EXPECT_EQ(terms[order[2]], "apple");  // largest list last
}

TEST(PlanJoinTest, NoStatsReproducesShortestFirst) {
  std::vector<TermPlanInput> inputs(3);
  inputs[0] = {"big", 900, nullptr};
  inputs[1] = {"small", 10, nullptr};
  inputs[2] = {"mid", 100, nullptr};
  JoinPlan plan = PlanJoin(std::move(inputs), 3, PlannerOptions{});
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.steps[0].term, "small");
  EXPECT_EQ(plan.steps[1].term, "mid");
  EXPECT_EQ(plan.steps[2].term, "big");
  // Step 0 seeds (no algorithms); later steps carry one pick per level.
  EXPECT_TRUE(plan.steps[0].algos.empty());
  EXPECT_EQ(plan.steps[1].algos.size(), 3u);
  EXPECT_EQ(plan.steps[2].algos.size(), 3u);
  // 10 vs 900 clears the default index-join ratio on estimated sizes.
  EXPECT_EQ(plan.steps[2].algos[0], JoinAlgo::kIndex);
}

TEST(PlanJoinTest, HistogramOverlapBeatsSizeOrdering) {
  // Three equally-sized lists: "a" and "b" share the same value range
  // (large intersection) while "far" lives in a disjoint one. Size
  // ordering is a three-way tie, but the histograms show a ∩ far ~= 0:
  // joining the disjoint pair first collapses the intermediate to ~0 and
  // turns the final step into a single probe, so the correlated term must
  // come LAST — never be part of the opening pair.
  TermStats a = MakeStats(0, 1, 100);
  TermStats b = MakeStats(0, 1, 100);
  TermStats far = MakeStats(100000, 1, 100);
  std::vector<TermPlanInput> inputs(3);
  inputs[0] = {"a", 100, &a};
  inputs[1] = {"b", 100, &b};
  inputs[2] = {"far", 100, &far};
  JoinPlan plan = PlanJoin(std::move(inputs), 1, PlannerOptions{});
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_TRUE(plan.exact);
  // "far" must be one of the first two steps, leaving a correlated term
  // for the now-nearly-free final fold.
  EXPECT_TRUE(plan.steps[0].term == "far" || plan.steps[1].term == "far");
  EXPECT_LT(plan.steps[1].est_out[0], 5.0)
      << "opening pair must be the disjoint one";
  // Cost reflects the collapse: seed + one merge + one cheap probe step,
  // well under the 500 units the correlated-first order would price at.
  EXPECT_LT(plan.est_cost, 400.0);
}

TEST(PlanJoinTest, DeterministicUnderInputPermutation) {
  TermStats a = MakeStats(0, 2, 50);
  TermStats b = MakeStats(10, 3, 80);
  TermStats c = MakeStats(1000, 1, 60);
  std::vector<TermPlanInput> forward(3), backward(3);
  forward[0] = {"a", 50, &a};
  forward[1] = {"b", 80, &b};
  forward[2] = {"c", 60, &c};
  backward[0] = forward[2];
  backward[1] = forward[1];
  backward[2] = forward[0];
  JoinPlan p1 = PlanJoin(std::move(forward), 2, PlannerOptions{});
  JoinPlan p2 = PlanJoin(std::move(backward), 2, PlannerOptions{});
  ASSERT_EQ(p1.steps.size(), p2.steps.size());
  for (size_t j = 0; j < p1.steps.size(); ++j) {
    EXPECT_EQ(p1.steps[j].term, p2.steps[j].term);
    EXPECT_EQ(p1.steps[j].algos, p2.steps[j].algos);
    for (size_t l = 0; l < p1.steps[j].est_out.size(); ++l) {
      EXPECT_DOUBLE_EQ(p1.steps[j].est_out[l], p2.steps[j].est_out[l]);
    }
  }
  EXPECT_DOUBLE_EQ(p1.est_cost, p2.est_cost);
}

TEST(PlanJoinTest, WideQueryFallsBackToGreedy) {
  PlannerOptions options;
  options.exact_dp_max_terms = 3;
  std::vector<TermPlanInput> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back({"t" + std::to_string(i),
                      static_cast<uint32_t>(10 * (i + 1)), nullptr});
  }
  JoinPlan plan = PlanJoin(std::move(inputs), 2, options);
  EXPECT_FALSE(plan.exact);
  ASSERT_EQ(plan.steps.size(), 5u);
  EXPECT_EQ(plan.steps[0].term, "t0");  // cheapest seed still first
}

TEST(MapPlanOrderTest, MapsTermsAndHandlesDuplicates) {
  std::vector<TermPlanInput> inputs(3);
  inputs[0] = {"x", 30, nullptr};
  inputs[1] = {"x", 30, nullptr};
  inputs[2] = {"y", 5, nullptr};
  JoinPlan plan = PlanJoin(std::move(inputs), 1, PlannerOptions{});
  std::vector<std::string> keywords = {"x", "y", "x"};
  std::vector<size_t> order = MapPlanOrder(plan, keywords, 1);
  ASSERT_EQ(order.size(), 3u);
  // A bijection: every position consumed exactly once.
  std::vector<char> seen(3, 0);
  for (size_t pos : order) {
    ASSERT_LT(pos, 3u);
    EXPECT_EQ(seen[pos], 0);
    seen[pos] = 1;
  }
  // And each position's keyword matches its step's term.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(keywords[order[j]], plan.steps[j].term);
  }
}

TEST(MapPlanOrderTest, RejectsMismatchedPlans) {
  std::vector<TermPlanInput> inputs(2);
  inputs[0] = {"a", 3, nullptr};
  inputs[1] = {"b", 4, nullptr};
  JoinPlan plan = PlanJoin(std::move(inputs), 2, PlannerOptions{});
  EXPECT_TRUE(MapPlanOrder(plan, {"a", "c"}, 2).empty());   // wrong term
  EXPECT_TRUE(MapPlanOrder(plan, {"a"}, 2).empty());        // wrong arity
  EXPECT_TRUE(MapPlanOrder(plan, {"a", "b"}, 3).empty());   // level drift
  EXPECT_EQ(MapPlanOrder(plan, {"a", "b"}, 2).size(), 2u);
}

TEST(PlannerEnvTest, DisableFlagParsing) {
  unsetenv("XTOPK_DISABLE_PLANNER");
  EXPECT_FALSE(PlannerDisabledByEnv());
  setenv("XTOPK_DISABLE_PLANNER", "0", 1);
  EXPECT_FALSE(PlannerDisabledByEnv());
  setenv("XTOPK_DISABLE_PLANNER", "1", 1);
  EXPECT_TRUE(PlannerDisabledByEnv());
  setenv("XTOPK_DISABLE_PLANNER", "yes", 1);
  EXPECT_TRUE(PlannerDisabledByEnv());
  unsetenv("XTOPK_DISABLE_PLANNER");
}

}  // namespace
}  // namespace xtopk
