#ifndef XTOPK_XML_SUBTREE_DAG_H_
#define XTOPK_XML_SUBTREE_DAG_H_

#include <cstdint>
#include <vector>

#include "xml/xml_tree.h"

namespace xtopk {

/// Knobs of the build-time shared-subtree detection.
struct SubtreeDagOptions {
  /// Minimum nodes a subtree must span to be worth sharing. Tiny repeated
  /// leaves (a lone <title>xml</title>) are everywhere in real corpora but
  /// sharing them buys nothing and would perturb join statistics, so the
  /// default skips them.
  uint32_t min_subtree_nodes = 4;
  /// Minimum number of identical copies (including the representative).
  uint32_t min_instances = 2;
};

/// One equivalence class of identical subtrees: same tag, same direct text,
/// same attributes, and recursively identical children, with every root at
/// the same tree level (the precondition for the JDewey translation
/// argument — see DESIGN.md §15). `roots` is in document order; the first
/// root is the representative.
struct SubtreeClass {
  uint32_t level = 0;       ///< level of the subtree roots (1-based)
  uint32_t node_count = 0;  ///< nodes per instance
  uint32_t depth = 0;       ///< levels the subtree spans (root = depth 1)
  std::vector<NodeId> roots;
};

/// Detection result: a set of pairwise node-disjoint classes. Disjointness
/// (no chosen subtree overlaps another chosen class's subtree) keeps the
/// expansion at query time single-level — a matched value belongs to at
/// most one shared region.
struct SubtreeDagResult {
  std::vector<SubtreeClass> classes;
  /// Nodes covered by non-representative instances (the structural
  /// redundancy the DAG removes).
  uint64_t shared_nodes = 0;
};

/// Hash-conses identical subtrees of `tree` bottom-up and greedily picks a
/// disjoint set of classes, largest savings first. Deterministic for a
/// given tree. O(nodes) hashing plus exact structural verification of each
/// candidate group (hash collisions cannot produce a false class).
SubtreeDagResult DetectSharedSubtrees(const XmlTree& tree,
                                      const SubtreeDagOptions& options = {});

/// All nodes of the subtree rooted at `root`, in document order.
std::vector<NodeId> SubtreeNodes(const XmlTree& tree, NodeId root);

}  // namespace xtopk

#endif  // XTOPK_XML_SUBTREE_DAG_H_
