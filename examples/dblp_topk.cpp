// DBLP-like scenario (the paper's primary motivation): build a synthetic
// bibliography of conferences/years/papers, then answer top-10 keyword
// queries three ways — join-based top-K, complete join-based + sort, and
// the RDIL baseline — printing results and the work each algorithm did.
//
//   ./dblp_topk [papers_per_year]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/rdil.h"
#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "util/timer.h"
#include "workload/dblp_gen.h"

namespace {

void PrintResults(const char* name,
                  const std::vector<xtopk::SearchResult>& results,
                  const xtopk::XmlTree& tree, double millis,
                  const std::string& work) {
  std::printf("%-22s %6.2f ms   %s\n", name, millis, work.c_str());
  for (size_t i = 0; i < results.size() && i < 3; ++i) {
    std::printf("    #%zu <%s> score %.4f\n", i + 1,
                tree.TagName(results[i].node).c_str(), results[i].score);
  }
}

}  // namespace

int main(int argc, char** argv) {
  xtopk::DblpGenOptions gen;
  gen.papers_per_year = argc > 1 ? std::atoi(argv[1]) : 40;
  // Plant a correlated pair ("sensor network"-style) and an uncorrelated
  // pair so both regimes of Fig. 10 show up.
  gen.planted = {
      {"sensor", 900, "", 0.0},
      {"network", 1500, "sensor", 0.6},
      {"quantum", 400, "", 0.0},
      {"basket", 700, "", 0.0},
  };
  xtopk::DblpCorpus corpus = xtopk::GenerateDblp(gen);
  std::printf("corpus: %zu nodes, %zu papers\n\n", corpus.tree.node_count(),
              corpus.titles.size());

  xtopk::IndexBuilder builder(corpus.tree);
  xtopk::JDeweyIndex jindex = builder.BuildJDeweyIndex();
  xtopk::TopKIndex topk_index = builder.BuildTopKIndex(jindex);
  xtopk::DeweyIndex dindex = builder.BuildDeweyIndex();
  xtopk::RdilIndex rdil_index = builder.BuildRdilIndex(dindex);

  const std::vector<std::vector<std::string>> queries = {
      {"sensor", "network"},   // correlated: the top-K join's home turf
      {"quantum", "basket"},   // uncorrelated: complete join wins
  };

  for (const auto& query : queries) {
    std::printf("query: {");
    for (size_t i = 0; i < query.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", query[i].c_str());
    }
    std::printf("}  frequencies:");
    for (const auto& kw : query) {
      std::printf(" %u", jindex.Frequency(kw));
    }
    std::printf("\n");

    {
      xtopk::TopKSearchOptions options;
      options.k = 10;
      xtopk::TopKSearch search(topk_index, options);
      xtopk::Timer timer;
      auto results = search.Search(query);
      double ms = timer.ElapsedMillis();
      char work[128];
      std::snprintf(work, sizeof(work),
                    "entries_read=%llu early=%llu columns=%u",
                    (unsigned long long)search.stats().entries_read,
                    (unsigned long long)search.stats().early_emissions,
                    search.stats().columns_processed);
      PrintResults("join-based top-K", results, corpus.tree, ms, work);
    }
    {
      xtopk::JoinSearch search(jindex);
      xtopk::Timer timer;
      auto results = search.Search(query);
      xtopk::SortByScoreDesc(&results);
      if (results.size() > 10) results.resize(10);
      double ms = timer.ElapsedMillis();
      char work[128];
      std::snprintf(work, sizeof(work), "candidates=%llu results=%llu",
                    (unsigned long long)search.stats().candidates,
                    (unsigned long long)search.stats().results);
      PrintResults("complete join + sort", results, corpus.tree, ms, work);
    }
    {
      xtopk::RdilOptions options;
      options.k = 10;
      xtopk::RdilSearch search(corpus.tree, rdil_index, options);
      xtopk::Timer timer;
      auto results = search.Search(query);
      double ms = timer.ElapsedMillis();
      char work[128];
      std::snprintf(work, sizeof(work), "entries_read=%llu checked=%llu",
                    (unsigned long long)search.stats().entries_read,
                    (unsigned long long)search.stats().candidates_checked);
      PrintResults("RDIL baseline", results, corpus.tree, ms, work);
    }
    std::printf("\n");
  }
  return 0;
}
