#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace xtopk {
namespace serve {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* HttpStatusLine(int code) {
  switch (code) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 500:
      return "500 Internal Server Error";
    case 503:
      return "503 Service Unavailable";
    case 504:
      return "504 Gateway Timeout";
  }
  return "500 Internal Server Error";
}

std::string MakeHttpJson(int code, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += HttpStatusLine(code);
  out += "\r\nContent-Type: application/json";
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string FramedResponse(const QueryResponse& response) {
  std::string payload;
  EncodeResponse(response, &payload);
  std::string framed;
  EncodeFrame(&framed, payload);
  return framed;
}

}  // namespace

QueryServer::QueryServer(ServeBackend* backend)
    : QueryServer(backend, Options()) {}

QueryServer::QueryServer(ServeBackend* backend, Options options)
    : backend_(backend),
      options_(std::move(options)),
      service_(backend, options_.service) {}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) *error = "bad bind address";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = "bind/listen failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(listen_fd_);
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = "pipe() failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { EventLoop(); });
  obs::LogEvent("serve", "query server listening on port " +
                             std::to_string(port_));
  return true;
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (wake_write_fd_ >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
  if (thread_.joinable()) thread_.join();
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  XTOPK_GAUGE("server.connections").Set(0);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (wake_write_fd_ >= 0) {
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
  // After the loop is down no completion can reach a socket; the service
  // answers anything still queued with kShuttingDown into dropped
  // callbacks.
  service_.Stop();
}

void QueryServer::PostCompletion(uint64_t conn_id, std::string bytes,
                                 bool close_after) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(Completion{conn_id, std::move(bytes), close_after});
  }
  char byte = 1;
  ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  (void)ignored;  // pipe full just means a wakeup is already pending
}

void QueryServer::DrainCompletions() {
  char scratch[64];
  while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
  }
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died meanwhile
    Connection* conn = &it->second;
    if (conn->in_flight > 0) --conn->in_flight;
    if (conn->dead) {
      if (conn->in_flight == 0) CloseConnection(completion.conn_id);
      continue;
    }
    if (completion.close_after) conn->close_after_write = true;
    QueueWrite(conn, std::move(completion.bytes));
    if (conn->write_buffer.empty() && conn->close_after_write &&
        conn->in_flight == 0) {
      CloseConnection(completion.conn_id);
    }
  }
}

void QueryServer::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next wakeup
    if (connections_.size() >= options_.max_connections) {
      XTOPK_COUNTER("server.accept_rejected").Add(1);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    auto [it, inserted] = connections_.emplace(id, std::move(conn));
    XTOPK_COUNTER("server.accepted").Add(1);
    XTOPK_GAUGE("server.connections")
        .Set(static_cast<int64_t>(connections_.size()));
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }
#endif
    (void)it;
    (void)inserted;
  }
}

void QueryServer::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  if (it->second.in_flight > 0) {
    // Responses are still owed; keep a tombstone so completions can find
    // (and skip) it, close the socket now.
    if (it->second.fd >= 0) {
      ::close(it->second.fd);
      it->second.fd = -1;
    }
    it->second.dead = true;
    return;
  }
  if (it->second.fd >= 0) ::close(it->second.fd);
  connections_.erase(it);
  XTOPK_GAUGE("server.connections")
      .Set(static_cast<int64_t>(connections_.size()));
}

void QueryServer::QueueWrite(Connection* conn, std::string bytes) {
  if (conn->fd < 0) return;
  conn->write_buffer += bytes;
  FlushWrites(conn);
  UpdateInterest(conn);
}

bool QueryServer::FlushWrites(Connection* conn) {
  while (!conn->write_buffer.empty()) {
    ssize_t n = ::send(conn->fd, conn->write_buffer.data(),
                       conn->write_buffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_buffer.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  return true;
}

void QueryServer::UpdateInterest(Connection* conn) {
#ifdef __linux__
  if (epoll_fd_ < 0 || conn->fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->write_buffer.empty() ? 0 : EPOLLOUT);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
#else
  (void)conn;
#endif
}

void QueryServer::DispatchBinaryFrame(Connection* conn,
                                      const std::string& payload) {
  QueryRequest request;
  Status s = DecodeRequest(payload, &request);
  if (!s.ok()) {
    // The frame boundary held, only the payload is malformed: answer with
    // a typed error and keep the connection — the next frame decodes
    // cleanly.
    XTOPK_COUNTER("server.protocol_errors").Add(1);
    QueryResponse response;
    response.status = ResponseStatus::kBadRequest;
    response.error = s.message();
    QueueWrite(conn, FramedResponse(response));
    return;
  }
  ++conn->in_flight;
  const uint64_t conn_id = conn->id;
  service_.Submit(request, [this, conn_id](QueryResponse response) {
    PostCompletion(conn_id, FramedResponse(response), /*close_after=*/false);
  });
}

void QueryServer::DispatchHttp(Connection* conn,
                               std::string_view request_line) {
  // GET /search is ours; every other GET path is the telemetry surface.
  size_t space = request_line.find(' ');
  std::string_view method = request_line.substr(0, space);
  std::string_view rest =
      space == std::string_view::npos ? "" : request_line.substr(space + 1);
  size_t target_end = rest.find(' ');
  std::string_view target =
      target_end == std::string_view::npos ? rest : rest.substr(0, target_end);

  if (method == "GET" && target.substr(0, 7) == "/search") {
    QueryRequest request;
    Status s = ParseHttpSearchTarget(target, &request);
    if (!s.ok()) {
      XTOPK_COUNTER("server.protocol_errors").Add(1);
      QueryResponse response;
      response.status = ResponseStatus::kBadRequest;
      response.error = s.message();
      conn->close_after_write = true;
      QueueWrite(conn, MakeHttpJson(HttpStatusFor(response.status),
                                    ResponseToJson(response)));
      return;
    }
    ++conn->in_flight;
    const uint64_t conn_id = conn->id;
    service_.Submit(request, [this, conn_id](QueryResponse response) {
      PostCompletion(conn_id,
                     MakeHttpJson(HttpStatusFor(response.status),
                                  ResponseToJson(response)),
                     /*close_after=*/true);
    });
    return;
  }
  // /metrics, /vars, /slowlog, /events, /healthz — and 400/404 for the
  // rest — come from the shared exposition handler.
  conn->close_after_write = true;
  QueueWrite(conn, obs::ExpositionServer::HandleRequest(request_line));
}

bool QueryServer::HandleReadable(Connection* conn) {
  char chunk[4096];
  bool peer_closed = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (conn->read_buffer.size() + static_cast<size_t>(n) >
          kMaxFrameBytes + 4096) {
        // A peer that streams unbounded bytes without ever completing a
        // frame or a request line is hostile; cut it off.
        XTOPK_COUNTER("server.protocol_errors").Add(1);
        return false;
      }
      conn->read_buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard error
  }

  if (conn->dialect < 0) {
    if (conn->read_buffer.size() >= 5) {
      conn->dialect = LooksLikeHttp(conn->read_buffer) ? 1 : 0;
    } else if (peer_closed) {
      return false;  // died before identifying itself
    }
  }

  if (conn->dialect == 0) {
    for (;;) {
      std::string payload;
      bool complete = false;
      Status s = ExtractFrame(&conn->read_buffer, &payload, &complete);
      if (!s.ok()) {
        // Oversized length prefix: the stream can never resynchronize.
        // Answer once, then poison the connection.
        XTOPK_COUNTER("server.protocol_errors").Add(1);
        QueryResponse response;
        response.status = ResponseStatus::kBadRequest;
        response.error = s.message();
        conn->close_after_write = true;
        QueueWrite(conn, FramedResponse(response));
        return !conn->write_buffer.empty() || conn->in_flight > 0;
      }
      if (!complete) break;
      DispatchBinaryFrame(conn, payload);
    }
  } else if (conn->dialect == 1) {
    size_t eol = conn->read_buffer.find('\n');
    if (eol != std::string::npos) {
      std::string_view line(conn->read_buffer.data(), eol);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      DispatchHttp(conn, line);
      conn->read_buffer.clear();  // one request per HTTP connection
    } else if (conn->read_buffer.size() > 8192) {
      XTOPK_COUNTER("server.protocol_errors").Add(1);
      return false;  // request line never ends
    }
  }

  if (peer_closed) {
    // Keep the connection only while responses are in flight or queued
    // bytes remain (the peer may have shut down just its send side).
    return conn->in_flight > 0 || !conn->write_buffer.empty();
  }
  return true;
}

void QueryServer::EventLoop() {
#ifdef __linux__
  if (!options_.force_poll) {
    epoll_fd_ = ::epoll_create1(0);
  }
  if (epoll_fd_ >= 0) {
    // Sentinel ids: the listen socket and wake pipe are not connections.
    constexpr uint64_t kListenId = 0;
    constexpr uint64_t kWakeId = UINT64_MAX;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.u64 = kWakeId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);

    epoll_event events[64];
    while (running_.load(std::memory_order_acquire)) {
      int ready = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
      for (int i = 0; i < ready; ++i) {
        uint64_t id = events[i].data.u64;
        if (id == kListenId) {
          AcceptNew();
          continue;
        }
        if (id == kWakeId) {
          DrainCompletions();
          continue;
        }
        auto it = connections_.find(id);
        if (it == connections_.end()) continue;
        Connection* conn = &it->second;
        bool alive = true;
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          alive = false;
        }
        if (alive && (events[i].events & EPOLLIN) != 0) {
          alive = HandleReadable(conn);
        }
        if (alive && (events[i].events & EPOLLOUT) != 0) {
          alive = FlushWrites(conn);
          if (alive) UpdateInterest(conn);
        }
        if (alive && conn->close_after_write && conn->write_buffer.empty() &&
            conn->in_flight == 0) {
          alive = false;
        }
        if (!alive) CloseConnection(id);
      }
    }
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
#endif

  // poll() fallback: rebuild the fd set each iteration — the connection
  // count on this path is test-scale, simplicity wins.
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<uint64_t> ids;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    ids.push_back(0);
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    ids.push_back(0);
    for (auto& [id, conn] : connections_) {
      if (conn.fd < 0) continue;
      short events = POLLIN;
      if (!conn.write_buffer.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
      ids.push_back(id);
    }
    int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready <= 0) continue;
    if ((fds[0].revents & POLLIN) != 0) AcceptNew();
    if ((fds[1].revents & POLLIN) != 0) DrainCompletions();
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = connections_.find(ids[i]);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0) {
        alive = HandleReadable(conn);
      }
      if (alive && (fds[i].revents & POLLOUT) != 0) {
        alive = FlushWrites(conn);
      }
      if (alive && conn->close_after_write && conn->write_buffer.empty() &&
          conn->in_flight == 0) {
        alive = false;
      }
      if (!alive) CloseConnection(ids[i]);
    }
  }
}

}  // namespace serve
}  // namespace xtopk
