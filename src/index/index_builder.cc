#include "index/index_builder.h"

#include <algorithm>
#include <cassert>

#include "index/dag.h"
#include "obs/metrics.h"
#include "util/parallel.h"
#include "xml/jdewey_builder.h"

namespace xtopk {

IndexBuilder::IndexBuilder(const XmlTree& tree, IndexBuildOptions options)
    : tree_(tree), options_(options) {
  jdewey_ = JDeweyBuilder::Assign(tree_, options_.jdewey_gap);
  deweys_ = AssignDeweyIds(tree_);

  // Document-order (preorder) rank per node; sibling links give the order.
  doc_rank_.assign(tree_.node_count(), 0);
  if (!tree_.empty()) {
    uint32_t rank = 0;
    std::vector<NodeId> stack = {tree_.root()};
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      doc_rank_[u] = rank++;
      // Push children in reverse sibling order so the first child pops
      // first.
      std::vector<NodeId> kids;
      for (NodeId c = tree_.node(u).first_child; c != kInvalidNode;
           c = tree_.node(c).next_sibling) {
        kids.push_back(c);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }

  // Pass 1: tokenize every node; record (term, node, tf).
  Tokenizer tokenizer(options_.tokenizer);
  auto add_occurrence = [&](const std::string& term, NodeId node,
                            uint32_t tf) {
    auto [it, inserted] =
        term_ids_.emplace(term, static_cast<uint32_t>(occurrences_.size()));
    if (inserted) occurrences_.emplace_back();
    // The score field temporarily carries tf; converted below.
    occurrences_[it->second].push_back(
        Occurrence{node, static_cast<float>(tf)});
  };
  for (NodeId id = 0; id < tree_.node_count(); ++id) {
    auto tf_map = tokenizer.TermFrequencies(tree_.text(id));
    if (options_.index_tag_names) {
      for (const auto& tag_token : tokenizer.Tokenize(tree_.TagName(id))) {
        ++tf_map[tag_token];
      }
    }
    for (const auto& [term, tf] : tf_map) add_occurrence(term, id, tf);
  }
  // Rows of every index family are stored in document order.
  for (auto& occs : occurrences_) {
    std::sort(occs.begin(), occs.end(),
              [&](const Occurrence& a, const Occurrence& b) {
                return doc_rank_[a.node] < doc_rank_[b.node];
              });
  }

  // Pass 2: convert tf to normalized tf·idf local scores.
  const uint64_t corpus_nodes = tree_.node_count();
  double max_raw = 0.0;
  for (const auto& occs : occurrences_) {
    for (const Occurrence& occ : occs) {
      double raw = RawLocalScore(static_cast<uint32_t>(occ.score),
                                 occs.size(), corpus_nodes);
      max_raw = std::max(max_raw, raw);
    }
  }
  if (max_raw <= 0.0) max_raw = 1.0;
  for (auto& occs : occurrences_) {
    for (Occurrence& occ : occs) {
      double raw = RawLocalScore(static_cast<uint32_t>(occ.score), occs.size(),
                                 corpus_nodes);
      occ.score = static_cast<float>(raw / max_raw);
    }
  }

  term_infos_.reserve(term_ids_.size());
  for (const auto& [term, id] : term_ids_) {
    term_infos_.push_back(
        TermInfo{term, static_cast<uint32_t>(occurrences_[id].size())});
  }
  // Deterministic order for query generation.
  std::sort(term_infos_.begin(), term_infos_.end(),
            [](const TermInfo& a, const TermInfo& b) {
              return a.term < b.term;
            });
}

JDeweyIndex IndexBuilder::BuildJDeweyIndex() const {
  JDeweyIndex index;
  index.term_ids_ = term_ids_;
  index.terms_.resize(term_ids_.size());
  for (const auto& [term, id] : term_ids_) index.terms_[id] = term;
  index.max_level_ = tree_.max_level();

  index.lists_.resize(occurrences_.size());
  if (options_.stats_buckets > 0) index.stats_.resize(occurrences_.size());
  // Per-term materialization is index-disjoint: safe (and deterministic)
  // to parallelize.
  ParallelFor(occurrences_.size(), options_.build_threads, [&](size_t t) {
    const auto& occs = occurrences_[t];
    JDeweyList& list = index.lists_[t];
    uint32_t rows = static_cast<uint32_t>(occs.size());
    list.lengths.resize(rows);
    list.scores.resize(rows);
    list.nodes.resize(rows);
    // Occurrences are in document order, which for a freshly built JDewey
    // encoding equals JDewey-sequence order.
    for (uint32_t row = 0; row < rows; ++row) {
      NodeId node = occs[row].node;
      assert(row == 0 || doc_rank_[occs[row - 1].node] < doc_rank_[node]);
      JDeweySeq seq = jdewey_.SequenceOf(tree_, node);
      uint16_t len = static_cast<uint16_t>(seq.size());
      list.lengths[row] = len;
      list.scores[row] = occs[row].score;
      list.nodes[row] = node;
      if (len > list.max_length) list.max_length = len;
      if (list.columns.size() < len) list.columns.resize(len);
      for (uint16_t level = 1; level <= len; ++level) {
        list.columns[level - 1].Append(row, seq[level - 1]);
      }
    }
    if (options_.stats_buckets > 0) {
      index.stats_[t] = ComputeListStats(list, options_.stats_buckets);
    }
  });

  // Reverse (level, value) -> node mapping over all tree nodes.
  index.level_nodes_.resize(tree_.max_level());
  for (NodeId id = 0; id < tree_.node_count(); ++id) {
    index.level_nodes_[tree_.level(id) - 1].emplace_back(
        jdewey_.NumberOf(id), id);
  }
  for (auto& level : index.level_nodes_) {
    std::sort(level.begin(), level.end());
  }

  // Structure-aware compression (DESIGN.md §15): share verified identical
  // subtrees and compact the term dictionary. Both are additive — the
  // exact lists above stay the source of truth.
  if (options_.enable_dag && !DagDisabledByEnv()) {
    SubtreeDagResult detected = DetectSharedSubtrees(tree_, options_.dag);
    DagBuildStats dag_stats = AttachDagData(tree_, jdewey_, detected,
                                            index.max_level_, &index.lists_);
    XTOPK_COUNTER("index.dag.classes").Add(dag_stats.classes);
    XTOPK_COUNTER("index.dag.shared_instances")
        .Add(dag_stats.shared_instances);
    XTOPK_COUNTER("index.dag.runs_removed").Add(dag_stats.runs_removed);
    XTOPK_COUNTER("index.dag.terms_affected").Add(dag_stats.terms_affected);
    XTOPK_COUNTER("index.dag.classes_rejected")
        .Add(dag_stats.classes_rejected);
  }
  if (options_.enable_dict && !DictDisabledByEnv()) {
    index.CompactTermDictionary();
  }
  PublishResidentBytes(MeasureResidentBytes(index));
  return index;
}

DeweyIndex IndexBuilder::BuildDeweyIndex() const {
  DeweyIndex index;
  index.term_ids_ = term_ids_;
  index.lists_.resize(occurrences_.size());
  for (size_t t = 0; t < occurrences_.size(); ++t) {
    const auto& occs = occurrences_[t];
    DeweyList& list = index.lists_[t];
    list.deweys.reserve(occs.size());
    list.scores.reserve(occs.size());
    list.nodes.reserve(occs.size());
    // NodeId order is document order, which is Dewey order.
    for (const Occurrence& occ : occs) {
      list.deweys.push_back(deweys_[occ.node]);
      list.scores.push_back(occ.score);
      list.nodes.push_back(occ.node);
    }
  }
  return index;
}

TopKIndex IndexBuilder::BuildTopKIndex(const JDeweyIndex& base) const {
  // The segments depend only on the base index's rows and scores.
  return BuildTopKIndexFrom(base);
}

RdilIndex IndexBuilder::BuildRdilIndex(const DeweyIndex& base) const {
  RdilIndex index;
  index.base_ = &base;
  index.term_ids_ = term_ids_;
  index.lists_.resize(occurrences_.size());
  for (const auto& [term, t] : term_ids_) {
    const DeweyList* dlist = base.GetList(term);
    assert(dlist != nullptr);
    RdilList& list = index.lists_[t];
    list.base = dlist;
    list.by_score.resize(dlist->num_rows());
    for (uint32_t i = 0; i < dlist->num_rows(); ++i) list.by_score[i] = i;
    std::sort(list.by_score.begin(), list.by_score.end(),
              [&](uint32_t a, uint32_t b) {
                if (dlist->scores[a] != dlist->scores[b]) {
                  return dlist->scores[a] > dlist->scores[b];
                }
                return a < b;
              });
    list.dewey_btree = std::make_unique<BTree>(options_.btree_fanout);
    for (uint32_t row = 0; row < dlist->num_rows(); ++row) {
      list.dewey_btree->Insert(EncodeDeweyKey(dlist->deweys[row]), row);
    }
  }
  return index;
}

BTree IndexBuilder::BuildCombinedBTree(const DeweyIndex& base) const {
  BTree btree(options_.btree_fanout);
  for (const auto& [term, t] : term_ids_) {
    const DeweyList* dlist = base.GetList(term);
    assert(dlist != nullptr);
    // Key: 4-byte big-endian term id, then the encoded Dewey id — the
    // (keyword, Dewey) composite the paper's BerkeleyDB store used.
    std::string prefix;
    prefix.push_back(static_cast<char>((t >> 24) & 0xFF));
    prefix.push_back(static_cast<char>((t >> 16) & 0xFF));
    prefix.push_back(static_cast<char>((t >> 8) & 0xFF));
    prefix.push_back(static_cast<char>(t & 0xFF));
    for (uint32_t row = 0; row < dlist->num_rows(); ++row) {
      btree.Insert(prefix + EncodeDeweyKey(dlist->deweys[row]), row);
    }
  }
  return btree;
}

}  // namespace xtopk
