#ifndef XTOPK_XML_XML_TREE_H_
#define XTOPK_XML_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xtopk {

/// Index of a node inside an XmlTree. Nodes are stored in an arena in
/// document (pre-)order, so NodeId also serves as a compact document-order
/// key for element nodes.
using NodeId = uint32_t;

/// Sentinel for "no node" (absent parent / child / sibling).
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// An element node. Text content is accumulated into `text` (character data
/// of direct text children plus attribute values); XML keyword search treats
/// the element as the node "directly containing" every token of that text and
/// of its tag name.
struct XmlNode {
  NodeId parent = kInvalidNode;
  NodeId first_child = kInvalidNode;
  NodeId next_sibling = kInvalidNode;
  /// Interned tag name; resolve with XmlTree::TagName().
  uint32_t tag_id = 0;
  /// Depth of the node; the root is at level 1 (the paper's convention:
  /// column 1 of an inverted list corresponds to the root level).
  uint32_t level = 1;
  /// Direct character data of this element (not descendants').
  std::string text;
};

/// An attribute attached to an element. Kept in a side table because the vast
/// majority of nodes in the evaluated corpora carry no attributes.
struct XmlAttr {
  NodeId node = kInvalidNode;
  std::string name;
  std::string value;
};

/// An in-memory XML document tree. Mutable during construction (parser or
/// generator), then used read-only by index builders. Node 0 is the root.
class XmlTree {
 public:
  XmlTree() = default;

  // Movable but not copyable: trees can hold millions of nodes.
  XmlTree(XmlTree&&) = default;
  XmlTree& operator=(XmlTree&&) = default;
  XmlTree(const XmlTree&) = delete;
  XmlTree& operator=(const XmlTree&) = delete;

  /// Creates the root element. Must be called exactly once, first.
  NodeId CreateRoot(std::string_view tag);

  /// Appends a new last child under `parent`. Returns its id.
  NodeId AddChild(NodeId parent, std::string_view tag);

  /// Appends character data to `node`'s direct text.
  void AppendText(NodeId node, std::string_view text);

  /// Attaches an attribute to `node`.
  void AddAttribute(NodeId node, std::string_view name, std::string_view value);

  bool empty() const { return nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  NodeId root() const { return 0; }

  const XmlNode& node(NodeId id) const { return nodes_[id]; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  uint32_t level(NodeId id) const { return nodes_[id].level; }
  const std::string& text(NodeId id) const { return nodes_[id].text; }

  /// Deepest level present in the tree (>= 1 once a root exists).
  uint32_t max_level() const { return max_level_; }

  /// Tag name of `id` ("conference", "paper", ...).
  const std::string& TagName(NodeId id) const {
    return tag_names_[nodes_[id].tag_id];
  }
  uint32_t tag_id(NodeId id) const { return nodes_[id].tag_id; }

  /// Number of distinct tag names seen.
  size_t tag_count() const { return tag_names_.size(); }

  /// Attributes in insertion order (grouped by node because elements are
  /// built one at a time).
  const std::vector<XmlAttr>& attributes() const { return attrs_; }

  /// Attributes of one node (linear scan over the contiguous group; the
  /// parser attaches all attributes before moving to the next element).
  std::vector<const XmlAttr*> AttributesOf(NodeId id) const;

  /// Children ids of `id` in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// True iff `anc` is a proper ancestor of `node` (or equal when
  /// `or_self`).
  bool IsAncestor(NodeId anc, NodeId node, bool or_self = false) const;

  /// Root-to-node path of node ids (path[0] = root, path.back() = id).
  std::vector<NodeId> PathTo(NodeId id) const;

  /// Serializes the subtree at `id` back to XML text (tests / examples).
  std::string ToXmlString(NodeId id, int indent = 0) const;

 private:
  uint32_t InternTag(std::string_view tag);

  std::vector<XmlNode> nodes_;
  std::vector<XmlAttr> attrs_;
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, uint32_t> tag_ids_;
  std::vector<NodeId> last_child_;  // fast AddChild appends
  uint32_t max_level_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_XML_XML_TREE_H_
