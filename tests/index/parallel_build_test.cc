// The parallel index build must be bit-identical to the serial one: every
// term writes to its own slot, so thread count is not observable.

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "testing/corpus.h"
#include "util/parallel.h"
#include "workload/dblp_gen.h"

namespace xtopk {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 7u}) {
    for (size_t n : {0u, 1u, 5u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      ParallelFor(n, threads, [&](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelBuildTest, ThreadCountIsNotObservable) {
  DblpGenOptions gen;
  gen.num_conferences = 8;
  gen.years_per_conference = 4;
  gen.papers_per_year = 20;
  DblpCorpus corpus = GenerateDblp(gen);

  IndexBuildOptions serial_options, parallel_options;
  parallel_options.build_threads = 8;
  IndexBuilder serial(corpus.tree, serial_options);
  IndexBuilder parallel(corpus.tree, parallel_options);
  JDeweyIndex a = serial.BuildJDeweyIndex();
  JDeweyIndex b = parallel.BuildJDeweyIndex();

  ASSERT_EQ(a.terms().size(), b.terms().size());
  for (const std::string& term : a.terms()) {
    const JDeweyList* la = a.GetList(term);
    const JDeweyList* lb = b.GetList(term);
    ASSERT_NE(lb, nullptr) << term;
    ASSERT_EQ(la->num_rows(), lb->num_rows()) << term;
    ASSERT_EQ(la->lengths, lb->lengths) << term;
    ASSERT_EQ(la->scores, lb->scores) << term;
    ASSERT_EQ(la->nodes, lb->nodes) << term;
    ASSERT_EQ(la->columns.size(), lb->columns.size()) << term;
    for (size_t c = 0; c < la->columns.size(); ++c) {
      ASSERT_EQ(la->columns[c].run_count(), lb->columns[c].run_count());
      for (size_t r = 0; r < la->columns[c].run_count(); ++r) {
        ASSERT_EQ(la->columns[c].runs()[r], lb->columns[c].runs()[r]);
      }
    }
  }
}

}  // namespace
}  // namespace xtopk
