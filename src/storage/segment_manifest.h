#ifndef XTOPK_STORAGE_SEGMENT_MANIFEST_H_
#define XTOPK_STORAGE_SEGMENT_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace xtopk {

/// Per-term statistics of one sealed segment. `rows` is the segment's
/// inverted-list length (its contribution to the corpus-wide document
/// frequency); `max_tf` the largest raw term frequency of any row. Both
/// are what query-time score normalization needs from a segment WITHOUT
/// loading its lists: df(t) = sum of rows over segments, and the global
/// normalizer max_raw = max over terms of RawLocalScore(max_tf, df, N)
/// (RawLocalScore is monotone in tf for fixed df, so the per-term max is
/// attained at max_tf).
struct SegmentTermStats {
  std::string term;
  uint32_t rows = 0;
  uint32_t max_tf = 0;
};

/// Sidecar metadata of a sealed segment (stored next to the page file as
/// `<segment>.manifest`). Byte layout:
///
///   magic "XTKSMAN1" | varint covered_nodes | varint term_count
///   per term: varint term_len | term bytes | varint rows | varint max_tf
///   fixed32 LE CRC32C over all preceding bytes
///
/// Load verifies the magic and the checksum and returns Corruption on any
/// mismatch or truncation, so a damaged manifest is detected before its
/// statistics can skew scores.
struct SegmentManifest {
  uint64_t covered_nodes = 0;          ///< nodes this segment indexed
  std::vector<SegmentTermStats> terms; ///< sorted by term

  Status Save(const std::string& path) const;
  static StatusOr<SegmentManifest> Load(const std::string& path);
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_SEGMENT_MANIFEST_H_
