#ifndef XTOPK_CORE_JOIN_PLANNER_H_
#define XTOPK_CORE_JOIN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xtopk {

/// Join-algorithm selection policy (§III-C "dynamic optimization").
enum class JoinPolicy {
  /// Per join, pick the index join when the left side is much smaller than
  /// the right column; otherwise merge. Re-decided at every level, which is
  /// what makes the selection context-aware.
  kDynamic,
  kForceMerge,
  kForceIndex,
};

struct PlannerOptions {
  JoinPolicy policy = JoinPolicy::kDynamic;
  /// kDynamic picks the index join when
  /// left_size * index_join_ratio < right_size.
  double index_join_ratio = 16.0;
};

/// True iff the next join step should probe (index join) rather than merge.
bool UseIndexJoin(size_t left_size, size_t right_size,
                  const PlannerOptions& options);

/// Left-deep join order: indexes of `list_sizes` sorted ascending by size
/// ("from the shortest inverted list to the longest", §III-C).
std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes);

}  // namespace xtopk

#endif  // XTOPK_CORE_JOIN_PLANNER_H_
