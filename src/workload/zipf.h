#ifndef XTOPK_WORKLOAD_ZIPF_H_
#define XTOPK_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace xtopk {

/// Zipf-distributed sampler over ranks [0, n): P(r) ∝ 1 / (r+1)^theta.
/// Word frequencies in the synthetic corpora follow this (natural-language
/// frequency skew is what makes the paper's compression scheme 2 and the
/// context-dependent correlations meaningful).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta, uint64_t seed);

  /// A rank in [0, n).
  size_t Next();

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace xtopk

#endif  // XTOPK_WORKLOAD_ZIPF_H_
