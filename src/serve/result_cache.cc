#include "serve/result_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xtopk {
namespace serve {

std::string ResultCache::Key(
    const std::vector<std::string>& normalized_keywords, Semantics semantics,
    uint32_t k) {
  std::string key;
  key.reserve(16 + normalized_keywords.size() * 8);
  key += semantics == Semantics::kSlca ? "slca|" : "elca|";
  key += std::to_string(k);
  for (const std::string& keyword : normalized_keywords) {
    // Length-prefixed so no keyword content can forge a separator: the
    // tokenizer never emits '|', but the key must not depend on that.
    key.push_back('|');
    key += std::to_string(keyword.size());
    key.push_back(':');
    key += keyword;
  }
  return key;
}

std::shared_ptr<const std::vector<ResponseHit>> ResultCache::Lookup(
    const std::string& key, uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.watermark != watermark) {
    ++misses_;
    XTOPK_COUNTER("server.result_cache.misses").Add(1);
    return nullptr;
  }
  ++hits_;
  XTOPK_COUNTER("server.result_cache.hits").Add(1);
  return it->second.hits;
}

void ResultCache::Insert(
    const std::string& key, uint64_t watermark,
    std::shared_ptr<const std::vector<ResponseHit>> hits) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_ && !insertion_order_.empty()) {
      entries_.erase(insertion_order_.front());
      insertion_order_.erase(insertion_order_.begin());
      XTOPK_COUNTER("server.result_cache.evictions").Add(1);
    }
    insertion_order_.push_back(key);
    entries_.emplace(key, Entry{watermark, std::move(hits)});
  } else {
    it->second = Entry{watermark, std::move(hits)};
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace serve
}  // namespace xtopk
