#ifndef XTOPK_STORAGE_FAULT_PAGEFILE_H_
#define XTOPK_STORAGE_FAULT_PAGEFILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page_file.h"
#include "util/fault_env.h"

namespace xtopk {

/// A PageFile that injects deterministic storage faults on the read path,
/// driven by a FaultInjector plan (DESIGN.md §9). Sites:
///
///   pagefile.open  — kTruncate marks a seed-chosen tail of the file's
///                    pages unreadable (a torn/short final write); every
///                    later read of those pages fails with IoError.
///   pagefile.read  — kBitFlip flips one seed-chosen payload bit,
///                    kShortRead zero-fills a seed-chosen tail of the page
///                    (a read that came back short), kTransientIoError
///                    fails the call outright without touching the disk.
///
/// Damage is applied to the in-memory payload only — the file on disk is
/// never modified, so clearing the plan always restores a healthy read
/// path (what the bounded-retry and re-read recovery paths rely on).
class FaultPageFile : public PageFile {
 public:
  explicit FaultPageFile(FaultInjector* injector = &FaultInjector::Global());

  Status Open(const std::string& path, bool create) override;
  Status ReadPage(PageId id, std::string* out) override;

 private:
  FaultInjector* injector_;
  /// Pages at or above this id fail every read (kTruncate).
  PageId readable_limit_ = UINT32_MAX;
};

/// The PageFile the disk index should read through: the plain concrete
/// file normally, the fault-injecting wrapper when the process-wide
/// injector is armed (a test plan or the XTOPK_FAULT_INJECT knob).
std::unique_ptr<PageFile> MakeFaultAwarePageFile();

}  // namespace xtopk

#endif  // XTOPK_STORAGE_FAULT_PAGEFILE_H_
