file(REMOVE_RECURSE
  "CMakeFiles/baseline_naive_test.dir/baseline/naive_test.cc.o"
  "CMakeFiles/baseline_naive_test.dir/baseline/naive_test.cc.o.d"
  "baseline_naive_test"
  "baseline_naive_test.pdb"
  "baseline_naive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
