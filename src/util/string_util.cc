#include "util/string_util.h"

#include <cstdint>
#include <cstdio>

namespace xtopk {

void AsciiLowerInPlace(std::string* s) {
  for (char& c : *s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  AsciiLowerInPlace(&out);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitNonEmpty(std::string_view s,
                                       std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace xtopk
