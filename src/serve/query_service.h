#ifndef XTOPK_SERVE_QUERY_SERVICE_H_
#define XTOPK_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/updatable_engine.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "util/deadline.h"

namespace xtopk {
namespace serve {

/// What the query service needs from an engine: run one query under a
/// deadline, normalize keywords the way that engine's tokenizer does, and
/// report the index version (the result-cache watermark). Implementations
/// must be safe to call from multiple worker threads.
class ServeBackend {
 public:
  virtual ~ServeBackend() = default;

  /// Executes the query synchronously. On a deadline expiry the hits hold
  /// the proven partial prefix and the returned status is
  /// kDeadlineExceeded; other non-ok statuses mean the query failed.
  virtual Status RunQuery(const QueryRequest& request, DeadlineToken deadline,
                          std::vector<ResponseHit>* hits) = 0;

  /// The engine's analyzer (multi-token inputs expand, duplicates drop) —
  /// cache keys must normalize exactly like execution will.
  virtual std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) = 0;

  /// Current index version. Immutable engines return a constant; the
  /// updatable engine bumps it on seal/compact/ingest, which silently
  /// invalidates every cached result.
  virtual uint64_t Watermark() = 0;
};

/// Backend over the immutable Engine. The engine's indexes are read-only
/// and RunBatch-safe, so queries run concurrently without locking and the
/// watermark is constant.
class EngineBackend : public ServeBackend {
 public:
  explicit EngineBackend(const Engine* engine) : engine_(engine) {}
  Status RunQuery(const QueryRequest& request, DeadlineToken deadline,
                  std::vector<ResponseHit>* hits) override;
  std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) override;
  uint64_t Watermark() override { return 1; }

 private:
  const Engine* engine_;  // not owned
};

/// Backend over an UpdatableEngine. The engine mutates lazily on query
/// (memtable refresh), so every call serializes through one mutex;
/// concurrency comes from the admission queue, not the index.
///
/// A durable engine's background compactor runs OUTSIDE this mutex: it
/// publishes new segment versions while queries execute. That is benign
/// by construction — each query pins the version it started on, and a
/// compaction publish is result-invariant (same rows, merged layout), so
/// Watermark() moving under a cached entry invalidates a result that the
/// new version would reproduce bit-identically. The serve-layer
/// concurrency test asserts exactly this.
class UpdatableBackend : public ServeBackend {
 public:
  explicit UpdatableBackend(UpdatableEngine* engine) : engine_(engine) {}
  Status RunQuery(const QueryRequest& request, DeadlineToken deadline,
                  std::vector<ResponseHit>* hits) override;
  std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) override;
  uint64_t Watermark() override;

 private:
  std::mutex mu_;
  UpdatableEngine* engine_;  // not owned
};

struct QueryServiceOptions {
  /// Worker threads executing admitted queries. 0 starts none — tests
  /// drive the queues deterministically through RunOnce().
  size_t workers = 2;
  /// Bounded depth per priority class. An arriving query that finds its
  /// class full is shed immediately (kShedOverload + retry hint); it
  /// never displaces queued work.
  size_t max_queue_high = 64;
  size_t max_queue_low = 64;
  /// Applied when a request carries deadline_us == 0. 0 keeps it
  /// unbounded.
  uint64_t default_deadline_us = 0;
  /// Ceiling on any request's budget (0 = none) — a client cannot pin a
  /// worker forever by asking for an hour.
  uint64_t max_deadline_us = 0;
  /// Backoff hint attached to shed responses.
  uint32_t retry_after_ms = 50;
  size_t result_cache_capacity = 1024;
  /// Injectable clock for deadline arithmetic (tests pass a fake).
  /// Null uses the process steady clock.
  DeadlineToken::ClockFn clock = nullptr;
};

/// Point-in-time counters (tests read these; the same numbers flow into
/// the process metrics registry as server.* series).
struct QueryServiceStats {
  uint64_t admitted = 0;
  uint64_t executed = 0;
  uint64_t shed_high = 0;
  uint64_t shed_low = 0;
  uint64_t expired_in_queue = 0;  ///< queue wait consumed the whole budget
  uint64_t partial = 0;           ///< deadline expired mid-execution
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t queue_depth_high = 0;
  size_t queue_depth_low = 0;
};

/// The socket-free heart of the query service: a two-priority bounded
/// admission queue in front of a worker pool, load shedding, deadline
/// propagation, and a watermark-keyed result cache. QueryServer puts a
/// byte protocol in front of this; tests call it directly.
///
/// Flow: Submit() admits or sheds inline (shed/ping/shutdown responses
/// are produced on the caller's thread — shedding must stay cheap under
/// overload, that is its point). Admitted queries wait in their priority
/// class; workers always drain high before low. On dequeue an
/// already-expired deadline short-circuits to kDeadlineExpired without
/// touching the engine; otherwise the query runs with the remaining
/// budget and an in-flight expiry yields kPartial with the proven prefix.
class QueryService {
 public:
  /// `backend` must outlive the service.
  QueryService(ServeBackend* backend, QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Done callbacks run on whichever thread produced the response: the
  /// submitter's for inline outcomes (shed, ping, shutdown), a worker's
  /// for executed queries.
  using DoneFn = std::function<void(QueryResponse)>;

  /// Admits, sheds, or answers inline. Never blocks on query execution.
  void Submit(const QueryRequest& request, DoneFn done);

  /// Synchronous convenience: Submit + wait for the response. Safe from
  /// any thread; with workers == 0 the queues are drained inline (the
  /// deterministic test mode).
  QueryResponse Execute(const QueryRequest& request);

  /// Dequeues and executes one admitted query (high class first). False
  /// when both queues are empty. Workers loop this; workers == 0 tests
  /// call it to step the service deterministically.
  bool RunOnce();

  /// Stops the workers and answers everything still queued with
  /// kShuttingDown. Idempotent; Submit after Stop sheds as shutting down.
  void Stop();

  QueryServiceStats stats() const;
  ResultCache& result_cache() { return cache_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    QueryRequest request;
    DeadlineToken deadline;
    uint64_t enqueue_us = 0;
    DoneFn done;
  };

  void WorkerLoop();
  /// Executes one admitted query end-to-end (expiry check, cache, engine,
  /// metrics) and invokes its callback.
  void ExecuteAdmitted(Pending pending);
  DeadlineToken MakeDeadline(uint64_t budget_us) const;
  uint64_t NowUs() const;

  ServeBackend* backend_;  // not owned
  QueryServiceOptions options_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<Pending> queue_high_;
  std::deque<Pending> queue_low_;
  bool stopping_ = false;
  QueryServiceStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace xtopk

#endif  // XTOPK_SERVE_QUERY_SERVICE_H_
