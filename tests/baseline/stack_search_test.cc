#include "baseline/stack_search.h"

#include <gtest/gtest.h>

#include <set>

#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

class StackSearchTest : public ::testing::Test {
 protected:
  StackSearchTest() : tree_(MakeSmallCorpus()), builder_(tree_) {
    index_ = builder_.BuildDeweyIndex();
  }
  std::set<NodeId> Nodes(const std::vector<SearchResult>& results) {
    std::set<NodeId> out;
    for (const auto& r : results) out.insert(r.node);
    return out;
  }
  XmlTree tree_;
  IndexBuilder builder_;
  DeweyIndex index_;
};

TEST_F(StackSearchTest, ElcaMatchesHandChecked) {
  StackSearch search(tree_, index_);
  auto results = search.Search({"xml", "data"});
  EXPECT_EQ(Nodes(results), (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1,
                                              Ids::kP4Title, Ids::kDb}));
}

TEST_F(StackSearchTest, SlcaMatchesHandChecked) {
  StackSearchOptions options;
  options.semantics = Semantics::kSlca;
  StackSearch search(tree_, index_, options);
  auto results = search.Search({"xml", "data"});
  EXPECT_EQ(Nodes(results),
            (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1, Ids::kP4Title}));
}

TEST_F(StackSearchTest, ResultsComeOutInDocumentOrderOfPops) {
  // The merge is document-ordered; a frame is decided when it is popped,
  // so results are ordered by subtree end — descendants before ancestors.
  StackSearch search(tree_, index_);
  auto results = search.Search({"xml", "data"});
  ASSERT_EQ(results.size(), 4u);
  // db (the root) pops last.
  EXPECT_EQ(results.back().node, Ids::kDb);
}

TEST_F(StackSearchTest, ScansEveryIdRegardlessOfQueryShape) {
  // The defining cost property (paper §II-C): all input lists are always
  // scanned completely.
  StackSearch a(tree_, index_);
  a.Search({"xml", "data"});
  EXPECT_EQ(a.stats().ids_scanned,
            index_.Frequency("xml") + index_.Frequency("data"));
  StackSearch b(tree_, index_);
  b.Search({"xml", "data", "title"});
  EXPECT_EQ(b.stats().ids_scanned, index_.Frequency("xml") +
                                       index_.Frequency("data") +
                                       index_.Frequency("title"));
}

TEST_F(StackSearchTest, FramesBoundedByPathsPushed) {
  StackSearch search(tree_, index_);
  search.Search({"xml", "data"});
  // Every pushed frame is one path component of some occurrence; with 8
  // occurrences at depth <= 4 the count is well under 32.
  EXPECT_GT(search.stats().frames_pushed, 0u);
  EXPECT_LE(search.stats().frames_pushed, 32u);
}

TEST_F(StackSearchTest, EmptyAndMissingInputs) {
  StackSearch search(tree_, index_);
  EXPECT_TRUE(search.Search({}).empty());
  EXPECT_TRUE(search.Search({"xml", "missing"}).empty());
}

TEST_F(StackSearchTest, SharedOccurrenceNodeAcrossKeywords) {
  // paper0 and p4t carry both keywords in one node: the merge sees the
  // same Dewey id from two lists back to back and must fold both flags
  // into one frame.
  StackSearch search(tree_, index_);
  auto results = search.Search({"xml", "data"});
  std::set<NodeId> nodes = Nodes(results);
  EXPECT_TRUE(nodes.count(Ids::kPaper0) > 0);
  EXPECT_TRUE(nodes.count(Ids::kP4Title) > 0);
}

}  // namespace
}  // namespace xtopk
