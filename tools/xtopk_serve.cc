// xtopk_serve: the network query service CLI. Builds an engine over a
// document (the built-in demo bibliography by default) and serves keyword
// queries over TCP — binary frames and an HTTP/JSON dialect on one port
// (serve/protocol.h documents both). The telemetry surface (/metrics,
// /vars, /slowlog, /events, /healthz) is exposed on the same port.
//
//   ./xtopk_serve                        # demo doc, ephemeral port
//   ./xtopk_serve --port 8080 --file dblp.xml
//   ./xtopk_serve --updatable --workers 4 --default-deadline-us 50000
//
// Prints "LISTENING <port>" on stdout once ready (scripts wait for that
// line), then runs until SIGINT/SIGTERM or EOF on stdin.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/updatable_engine.h"
#include "demo_doc.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "xml/xml_parser.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N                listen port (default 0 = ephemeral)\n"
      "  --file doc.xml          serve this document (default: demo doc)\n"
      "  --updatable             use the incremental engine backend\n"
      "  --data-dir DIR          durable mode: manifest-logged segments in\n"
      "                          DIR, recovered on restart (implies\n"
      "                          --updatable)\n"
      "  --auto-compact on|off   background tiered compaction in durable\n"
      "                          mode (default on; XTOPK_DISABLE_BG_COMPACT\n"
      "                          also forces it off)\n"
      "  --compact-throttle-mb N cap background compaction write rate at\n"
      "                          N MiB/s (default 0 = unthrottled)\n"
      "  --workers N             query worker threads (default 2)\n"
      "  --queue-high N          high-priority queue depth (default 64)\n"
      "  --queue-low N           low-priority queue depth (default 64)\n"
      "  --default-deadline-us N budget for requests without one\n"
      "  --max-deadline-us N     ceiling on any request's budget\n"
      "  --poll                  force the poll() event loop (no epoll)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xtopk::serve::QueryServer::Options options;
  std::string file;
  bool updatable = false;
  xtopk::DurableOptions durable;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::stoul(next("--port")));
    } else if (arg == "--file") {
      file = next("--file");
    } else if (arg == "--updatable") {
      updatable = true;
    } else if (arg == "--data-dir") {
      durable.data_dir = next("--data-dir");
      updatable = true;
    } else if (arg == "--auto-compact") {
      std::string value = next("--auto-compact");
      if (value != "on" && value != "off") {
        std::fprintf(stderr, "error: --auto-compact takes on|off\n");
        return 2;
      }
      durable.auto_compact = value == "on";
    } else if (arg == "--compact-throttle-mb") {
      durable.compaction.throttle_bytes_per_sec =
          std::stoull(next("--compact-throttle-mb")) * (1024ull * 1024ull);
    } else if (arg == "--workers") {
      options.service.workers =
          static_cast<size_t>(std::stoul(next("--workers")));
    } else if (arg == "--queue-high") {
      options.service.max_queue_high =
          static_cast<size_t>(std::stoul(next("--queue-high")));
    } else if (arg == "--queue-low") {
      options.service.max_queue_low =
          static_cast<size_t>(std::stoul(next("--queue-low")));
    } else if (arg == "--default-deadline-us") {
      options.service.default_deadline_us =
          std::stoull(next("--default-deadline-us"));
    } else if (arg == "--max-deadline-us") {
      options.service.max_deadline_us =
          std::stoull(next("--max-deadline-us"));
    } else if (arg == "--poll") {
      options.force_poll = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.service.workers == 0) {
    // 0 is the in-process test mode (callers drive RunOnce themselves); a
    // live server without workers would queue forever.
    std::fprintf(stderr, "error: --workers must be >= 1\n");
    return 2;
  }

  auto parsed = file.empty()
                    ? xtopk::XmlParser::Parse(xtopk_tools::BuildDemoXml())
                    : xtopk::ParseXmlFile(file);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // Both backends live for the whole process; only one is constructed.
  std::unique_ptr<xtopk::Engine> engine;
  std::unique_ptr<xtopk::UpdatableEngine> updatable_engine;
  std::unique_ptr<xtopk::serve::ServeBackend> backend;
  xtopk::XmlTree tree = std::move(parsed).value();
  if (updatable) {
    if (!durable.data_dir.empty()) {
      auto opened = xtopk::UpdatableEngine::OpenDurable(std::move(tree), {},
                                                        durable);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      updatable_engine = std::move(opened).value();
    } else {
      updatable_engine =
          std::make_unique<xtopk::UpdatableEngine>(std::move(tree));
    }
    backend = std::make_unique<xtopk::serve::UpdatableBackend>(
        updatable_engine.get());
  } else {
    engine = std::make_unique<xtopk::Engine>(tree);
    backend = std::make_unique<xtopk::serve::EngineBackend>(engine.get());
  }

  xtopk::serve::QueryServer server(backend.get(), options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Exit on signal or on stdin EOF (the parent script closing our stdin is
  // the portable "shut down now" for spawned smoke runs).
  while (!g_stop.load(std::memory_order_acquire)) {
    char byte;
    ssize_t n = ::read(STDIN_FILENO, &byte, 1);
    if (n <= 0 && errno != EINTR) break;
  }
  server.Stop();
  std::printf("STOPPED\n");
  return 0;
}
