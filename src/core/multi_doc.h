#ifndef XTOPK_CORE_MULTI_DOC_H_
#define XTOPK_CORE_MULTI_DOC_H_

#include <optional>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Builds one searchable tree out of many XML documents — the shape the
/// paper's DBLP setup has after its regrouping (one synthetic root over
/// per-document subtrees), and the practical entry point for indexing a
/// collection of files.
///
///   corpus:                      <collection>
///     a.xml -> <doc name="a">      <doc name="a"> ... </doc>
///     b.xml -> <doc name="b">      <doc name="b"> ... </doc>
///                                </collection>
///
/// Keyword semantics compose naturally: an LCA spanning two documents is
/// the collection root (or a <doc> wrapper), which ELCA/SLCA pruning
/// handles like any other ancestor.
class MultiDocCorpus {
 public:
  MultiDocCorpus();

  /// Appends `doc` (its root becomes a child of the <doc> wrapper).
  /// Element structure and text are copied; attribute *values* survive in
  /// the text (the parser folds them in), attribute structure does not.
  /// Returns the document's index.
  size_t AddDocument(const std::string& name, const XmlTree& doc);

  /// Parses and appends an XML string.
  StatusOr<size_t> AddDocumentXml(const std::string& name,
                                  const std::string& xml);

  /// The merged tree (build indexes / engines over this). Valid until the
  /// next AddDocument call.
  const XmlTree& tree() const { return tree_; }

  size_t document_count() const { return doc_roots_.size(); }
  const std::string& document_name(size_t index) const {
    return doc_names_[index];
  }

  /// The <doc> wrapper node of document `index`.
  NodeId doc_root(size_t index) const { return doc_roots_[index]; }

  /// All nodes of document `index` — its wrapper plus every descendant, in
  /// creation order. This is the covered-node set a per-document segment
  /// build (BuildSegmentIndex) ingests.
  std::vector<NodeId> DocumentNodes(size_t index) const;

  /// Which document `node` belongs to; nullopt for the collection root.
  /// O(depth).
  std::optional<size_t> DocumentOf(NodeId node) const;

 private:
  XmlTree tree_;
  std::vector<NodeId> doc_roots_;  // the <doc> wrapper nodes
  std::vector<std::string> doc_names_;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_MULTI_DOC_H_
