file(REMOVE_RECURSE
  "CMakeFiles/index_parallel_build_test.dir/index/parallel_build_test.cc.o"
  "CMakeFiles/index_parallel_build_test.dir/index/parallel_build_test.cc.o.d"
  "index_parallel_build_test"
  "index_parallel_build_test.pdb"
  "index_parallel_build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_parallel_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
