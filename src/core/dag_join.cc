#include "core/dag_join.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace xtopk {

namespace {

std::vector<LevelMatch> IntersectPlain(
    const std::vector<const Column*>& columns,
    const std::vector<JoinAlgo>* algos, const PlannerOptions& planner,
    JoinOpStats* stats, const IntersectStepFn& on_step) {
  if (algos != nullptr) {
    return IntersectColumnsPlanned(columns, *algos, stats, on_step);
  }
  return IntersectColumns(columns, planner, stats, on_step);
}

}  // namespace

std::vector<LevelMatch> IntersectListsAtLevel(
    const std::vector<const JDeweyList*>& ordered_lists, uint32_t level,
    const std::vector<JoinAlgo>* algos, const PlannerOptions& planner,
    JoinOpStats* stats, const IntersectStepFn& on_step,
    std::deque<Run>* arena) {
  const size_t k = ordered_lists.size();
  std::vector<const Column*> full(k);
  for (size_t j = 0; j < k; ++j) full[j] = &ordered_lists[j]->column(level);

  // Pick dedup columns where they exist; bail to the exact path when no
  // list is deduplicated at this level, or the lists disagree on the
  // catalog (never happens for lists of one source; cheap to guard).
  const DagCatalog* catalog = nullptr;
  std::vector<const Column*> join_cols(k);
  bool used_dag = false, consistent = true;
  for (size_t j = 0; j < k; ++j) {
    const JDeweyList* list = ordered_lists[j];
    join_cols[j] = full[j];
    if (list->dag == nullptr) continue;
    if (catalog == nullptr) {
      catalog = list->dag->catalog.get();
    } else if (catalog != list->dag->catalog.get()) {
      consistent = false;
    }
    const Column* dedup = list->dag->JoinColumn(level, full[j]);
    if (dedup != full[j]) {
      join_cols[j] = dedup;
      used_dag = true;
    }
  }
  if (!used_dag || !consistent || catalog == nullptr) {
    return IntersectPlain(full, algos, planner, stats, on_step);
  }

  std::vector<LevelMatch> matches =
      IntersectPlain(join_cols, algos, planner, stats, on_step);
  if (matches.empty()) return matches;

  // Fan matched shared regions out to their instances. Matches arrive in
  // ascending value order; representative intervals are disjoint, so one
  // forward sweep partitions them into literal stretches and per-class
  // representative slices.
  struct Unit {
    size_t begin = 0, end = 0;  // slice of `matches`
    uint32_t cls = 0, depth = 0;
    int32_t inst = -1;  // -1: literal (emit as-is)
  };
  const auto& reps = catalog->RepsAt(level);
  std::vector<Unit> units;
  size_t extra = 0;
  {
    size_t i = 0, r = 0;
    while (i < matches.size()) {
      uint32_t v = matches[i].value;
      while (r < reps.size() && reps[r].hi < v) ++r;
      if (r == reps.size() || v < reps[r].lo) {
        size_t begin = i;
        uint32_t stop = r < reps.size() ? reps[r].lo : UINT32_MAX;
        while (i < matches.size() && matches[i].value < stop) ++i;
        units.push_back(Unit{begin, i, 0, 0, -1});
        continue;
      }
      // Representative slice of class reps[r].cls.
      size_t begin = i;
      while (i < matches.size() && matches[i].value <= reps[r].hi) ++i;
      // Every term of a match inside a representative interval must carry
      // this class's row deltas (identical subtrees share term sets). If
      // one doesn't, the premise is broken — redo this level exactly.
      for (size_t j = 0; j < k; ++j) {
        const JDeweyList* list = ordered_lists[j];
        if (list->dag == nullptr ||
            list->dag->row_deltas.find(reps[r].cls) ==
                list->dag->row_deltas.end()) {
          XTOPK_COUNTER("core.dag.expand_fallbacks").Add(1);
          return IntersectPlain(full, algos, planner, stats, on_step);
        }
      }
      units.push_back(Unit{begin, i, reps[r].cls, reps[r].depth, -1});
      const DagClassInfo& cls = catalog->classes[reps[r].cls];
      for (size_t inst = 0; inst < cls.instances.size(); ++inst) {
        int64_t vd = cls.instances[inst].value_delta[reps[r].depth];
        units.push_back(Unit{begin, i, reps[r].cls, reps[r].depth,
                             static_cast<int32_t>(inst)});
        extra += i - begin;
      }
    }
  }
  if (extra == 0) return matches;  // no shared region actually matched
  XTOPK_COUNTER("core.dag.levels_expanded").Add(1);
  XTOPK_COUNTER("core.dag.matches_fanned_out").Add(extra);

  std::vector<LevelMatch> out;
  out.reserve(matches.size() + extra);
  for (const Unit& u : units) {
    if (u.inst < 0) {
      for (size_t m = u.begin; m < u.end; ++m) out.push_back(matches[m]);
      continue;
    }
    const DagClassInfo& cls = catalog->classes[u.cls];
    int64_t vd = cls.instances[u.inst].value_delta[u.depth];
    for (size_t m = u.begin; m < u.end; ++m) {
      const LevelMatch& src = matches[m];
      LevelMatch nm;
      nm.value = static_cast<uint32_t>(int64_t(src.value) + vd);
      nm.runs.reserve(k);
      for (size_t j = 0; j < k; ++j) {
        int64_t rd = ordered_lists[j]->dag->row_deltas.at(u.cls)[u.inst];
        const Run& run = *src.runs[j];
        arena->push_back(
            Run{static_cast<uint32_t>(int64_t(run.value) + vd),
                static_cast<uint32_t>(int64_t(run.first_row) + rd),
                run.count});
        nm.runs.push_back(&arena->back());
      }
      out.push_back(std::move(nm));
    }
  }
  // Literal matches interleave in value space with translated instance
  // values (unshared siblings can sit between shared copies), so unit
  // order is not global order — sort the emitted matches by value, which
  // is unique per level (Property 3.1) and equals the exact join order.
  std::sort(out.begin(), out.end(),
            [](const LevelMatch& a, const LevelMatch& b) {
              return a.value < b.value;
            });
  return out;
}

}  // namespace xtopk
