#include "index/index_stats.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "workload/dblp_gen.h"

namespace xtopk {
namespace {

TEST(IndexStatsTest, ReportHasEveryFamilyAndExpectedOrdering) {
  DblpGenOptions gen;
  gen.num_conferences = 6;
  gen.years_per_conference = 4;
  gen.papers_per_year = 15;
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  IndexSizeReport report = MeasureIndexSizes(builder, "unit-test corpus");

  EXPECT_GT(report.join_based_il, 0u);
  EXPECT_GT(report.join_based_sparse, 0u);
  EXPECT_GT(report.stack_based_il, 0u);
  EXPECT_GT(report.index_based_btree, 0u);
  EXPECT_GT(report.topk_join_il, 0u);
  EXPECT_GT(report.rdil_il, 0u);
  EXPECT_GT(report.rdil_btree, 0u);

  // Table I orderings that must hold at any scale:
  // scores + segment orders make the top-K IL bigger;
  EXPECT_GT(report.topk_join_il, report.join_based_il);
  // the per-(keyword, Dewey) B-tree dwarfs the lists (margin 1.5x: the
  // group-varint codec trades ~25% list size over plain delta for decode
  // speed, which thinned the old 2x headroom on tiny corpora);
  EXPECT_GT(report.index_based_btree, report.join_based_il * 3 / 2);
  // the sparse indexes are small relative to the lists;
  EXPECT_LT(report.join_based_sparse, report.join_based_il);
  // RDIL's score-ordered full-id entries beat prefix compression.
  EXPECT_GT(report.rdil_il, report.stack_based_il);

  std::string table = report.ToTable();
  EXPECT_NE(table.find("unit-test corpus"), std::string::npos);
  EXPECT_NE(table.find("Join-based"), std::string::npos);
  EXPECT_NE(table.find("RDIL"), std::string::npos);
}

TEST(IndexStatsTest, SizesGrowWithCorpus) {
  DblpGenOptions small_gen, large_gen;
  small_gen.num_conferences = 2;
  small_gen.years_per_conference = 2;
  small_gen.papers_per_year = 5;
  large_gen.num_conferences = 6;
  large_gen.years_per_conference = 4;
  large_gen.papers_per_year = 20;
  DblpCorpus small_corpus = GenerateDblp(small_gen);
  DblpCorpus large_corpus = GenerateDblp(large_gen);
  IndexBuilder small_builder(small_corpus.tree);
  IndexBuilder large_builder(large_corpus.tree);
  IndexSizeReport small_report = MeasureIndexSizes(small_builder, "small");
  IndexSizeReport large_report = MeasureIndexSizes(large_builder, "large");
  EXPECT_GT(large_report.join_based_il, small_report.join_based_il);
  EXPECT_GT(large_report.index_based_btree, small_report.index_based_btree);
}

}  // namespace
}  // namespace xtopk
