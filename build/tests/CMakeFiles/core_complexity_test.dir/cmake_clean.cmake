file(REMOVE_RECURSE
  "CMakeFiles/core_complexity_test.dir/core/complexity_test.cc.o"
  "CMakeFiles/core_complexity_test.dir/core/complexity_test.cc.o.d"
  "core_complexity_test"
  "core_complexity_test.pdb"
  "core_complexity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
