#include "util/fault_env.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace xtopk {
namespace {

std::optional<FaultKind> ParseKind(std::string_view value) {
  if (value == "none") return FaultKind::kNone;
  if (value == "bitflip") return FaultKind::kBitFlip;
  if (value == "shortread") return FaultKind::kShortRead;
  if (value == "truncate") return FaultKind::kTruncate;
  if (value == "ioerror") return FaultKind::kTransientIoError;
  return std::nullopt;
}

std::optional<uint64_t> ParseU64(std::string_view value) {
  if (value.empty()) return std::nullopt;
  uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kShortRead:
      return "shortread";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kTransientIoError:
      return "ioerror";
  }
  return "unknown";
}

std::optional<FaultPlan> ParseFaultPlan(std::string_view spec) {
  FaultPlan plan;
  bool saw_kind = false;
  while (!spec.empty()) {
    size_t comma = spec.find(',');
    std::string_view field = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = field.substr(0, eq);
    std::string_view value = field.substr(eq + 1);
    if (key == "kind") {
      auto kind = ParseKind(value);
      if (!kind) return std::nullopt;
      plan.kind = *kind;
      saw_kind = true;
    } else if (key == "site") {
      plan.site.assign(value);
    } else if (key == "trigger") {
      auto v = ParseU64(value);
      if (!v) return std::nullopt;
      plan.trigger = *v;
    } else if (key == "count") {
      if (value == "inf") {
        plan.count = UINT64_MAX;
      } else {
        auto v = ParseU64(value);
        if (!v) return std::nullopt;
        plan.count = *v;
      }
    } else if (key == "seed") {
      auto v = ParseU64(value);
      if (!v) return std::nullopt;
      plan.seed = *v;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_kind) return std::nullopt;
  return plan;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("XTOPK_FAULT_INJECT");
      env != nullptr && env[0] != '\0') {
    if (auto plan = ParseFaultPlan(env)) {
      plan_ = *plan;
      active_ = true;
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::SetPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  active_ = true;
  counts_.clear();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = false;
}

bool FaultInjector::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

FaultInjector::Decision FaultInjector::OnCall(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision decision;
  if (!active_) return decision;
  uint64_t& count = counts_[std::string(site)];
  uint64_t index = count++;
  decision.call_index = index;
  decision.seed = plan_.seed;
  if (plan_.kind == FaultKind::kNone) return decision;
  if (site.find(plan_.site) == std::string_view::npos) return decision;
  if (index < plan_.trigger) return decision;
  if (plan_.count != UINT64_MAX && index >= plan_.trigger + plan_.count) {
    return decision;
  }
  decision.kind = plan_.kind;
  XTOPK_COUNTER("storage.fault.injected").Add(1);
  return decision;
}

uint64_t FaultInjector::CallCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace xtopk
