#include "obs/slow_log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace xtopk {
namespace obs {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

SlowLogOptions SlowLogOptions::FromEnv() {
  SlowLogOptions options;
  if (const char* path = std::getenv("XTOPK_SLOWLOG_PATH")) {
    options.path = path;
  }
  options.latency_threshold_us =
      EnvU64("XTOPK_SLOWLOG_THRESHOLD_US", options.latency_threshold_us);
  options.pages_threshold =
      EnvU64("XTOPK_SLOWLOG_PAGES", options.pages_threshold);
  options.max_file_bytes =
      EnvU64("XTOPK_SLOWLOG_MAX_BYTES", options.max_file_bytes);
  return options;
}

std::string SlowQueryCapture::ToJsonLine() const {
  std::string out = "{\"ts_us\":" + std::to_string(ts_us);
  out += ",\"keywords\":[";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    AppendEscaped(&out, keywords[i]);
    out.push_back('"');
  }
  out += "],\"k\":" + std::to_string(k);
  out += ",\"semantics\":\"" + semantics + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"wall_us\":%.3f", wall_us);
  out += buf;
  out += ",\"hits\":" + std::to_string(hits);
  out += ",\"result_fingerprint\":\"" + result_fingerprint + "\"";
  out += ",\"accounting\":";
  accounting.AppendJson(&out);
  if (!trace_json.empty()) {
    // trace_json is already JSON (QueryTrace::ToJson's span array) —
    // embed verbatim.
    out += ",\"trace\":" + trace_json;
  }
  out += "}";
  return out;
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log =
      new SlowQueryLog(SlowLogOptions::FromEnv());  // never destroyed
  return *log;
}

void SlowQueryLog::Record(const SlowQueryCapture& capture) {
  std::string line = capture.ToJsonLine();
  line.push_back('\n');
  {
    std::lock_guard<std::mutex> lock(mu_);
    recent_.push_back(capture);
    while (recent_.size() > options_.memory_entries) recent_.pop_front();
    if (!options_.path.empty()) {
      const char* mode = "a";
      if (file_bytes_ + line.size() > options_.max_file_bytes) {
        // Bounded file: truncate and restart rather than grow forever. The
        // in-memory ring bridges the rotation for /slowlog readers.
        mode = "w";
        file_bytes_ = 0;
        XTOPK_COUNTER("obs.slowlog.rotations").Add(1);
      }
      if (FILE* f = std::fopen(options_.path.c_str(), mode)) {
        if (std::fwrite(line.data(), 1, line.size(), f) == line.size()) {
          file_bytes_ += line.size();
        }
        std::fclose(f);
      }
    }
  }
  XTOPK_COUNTER("obs.slowlog.captures").Add(1);
}

std::vector<SlowQueryCapture> SlowQueryLog::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = recent_.size();
  if (max != 0 && max < n) n = max;
  return std::vector<SlowQueryCapture>(recent_.end() - n, recent_.end());
}

std::string SlowQueryLog::ToJson(size_t max) const {
  std::string out = "{\"slow_queries\":[";
  bool first = true;
  for (const SlowQueryCapture& capture : Recent(max)) {
    if (!first) out.push_back(',');
    first = false;
    out += capture.ToJsonLine();
  }
  out += "]}";
  return out;
}

void SlowQueryLog::Reconfigure(SlowLogOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = std::move(options);
  file_bytes_ = 0;
}

SlowLogOptions SlowQueryLog::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

std::string FingerprintHex(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace obs
}  // namespace xtopk
