# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_paper_fig5_test.
