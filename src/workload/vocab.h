#ifndef XTOPK_WORKLOAD_VOCAB_H_
#define XTOPK_WORKLOAD_VOCAB_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Synthetic vocabulary: pronounceable, unique, tokenizer-stable words
/// ("wagopi", "welubo", ...). Background corpus text draws ranks from a
/// ZipfSampler and maps them through word().
class Vocab {
 public:
  explicit Vocab(size_t size);

  const std::string& word(size_t rank) const { return words_[rank]; }
  size_t size() const { return words_.size(); }

 private:
  std::vector<std::string> words_;
};

/// A keyword planted into a corpus with an exact target frequency —
/// the experiments' frequency sweeps (Fig. 9/10) select keywords whose
/// inverted-list lengths are controlled, which random vocabulary cannot
/// guarantee at small corpus scale.
struct PlantedTerm {
  std::string term;
  /// Number of distinct target nodes to plant into (clamped to the number
  /// of available targets).
  uint32_t frequency = 0;
  /// When non-empty, plant preferentially into targets that already carry
  /// that term: P(pick correlated target) = correlation. Referenced terms
  /// must appear earlier in the planted list.
  std::string correlate_with;
  double correlation = 0.0;
};

/// Plants `terms` into the text of nodes drawn from `targets` (typically
/// the corpus's title/description elements). Deterministic given `rng`.
void PlantTerms(XmlTree* tree, const std::vector<NodeId>& targets,
                const std::vector<PlantedTerm>& terms, Rng* rng);

}  // namespace xtopk

#endif  // XTOPK_WORKLOAD_VOCAB_H_
