#ifndef XTOPK_CORE_UPDATABLE_ENGINE_H_
#define XTOPK_CORE_UPDATABLE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compaction.h"
#include "core/engine.h"
#include "index/segment.h"
#include "storage/manifest_log.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Durable-mode configuration (OpenDurable). The data directory holds the
/// manifest log, the sealed segment files (`seg-<id>` + `.manifest`), and
/// the JDewey encoding snapshot of the last seal (`enc-<id>`).
struct DurableOptions {
  std::string data_dir;
  /// Run tiered compaction on the background maintenance thread. The
  /// XTOPK_DISABLE_BG_COMPACT environment variable overrides this to off.
  bool auto_compact = true;
  CompactionOptions compaction;
  /// Options for opening sealed segment files.
  DiskIndexOptions disk;
};

/// A genuinely incremental engine over a mutable document. Node insertions
/// maintain the JDewey encoding in place (§III-A: reserved gaps, partial
/// re-encoding), and the inverted lists are segmented LSM-style
/// (SegmentedIndex): nodes below a watermark live in immutable sealed
/// segments, nodes at or above it in a small memtable segment that is
/// rebuilt lazily before a query. An append-only workload therefore NEVER
/// rebuilds the full index — only the memtable tail — and `rebuilds()`
/// stays 0.
///
/// A full rebuild happens only when sealed data goes stale:
///  - a reserved-range overflow re-encodes a subtree rooted BELOW the
///    watermark (its sealed JDewey numbers are now wrong), or
///  - text is appended to a node below the watermark (its sealed term
///    rows are now wrong).
/// Both are detected per mutation and deferred to the next query.
///
/// Queries serve from pinned SegmentSetVersion snapshots (DESIGN.md §17),
/// so the DURABLE mode's background compactor can publish new versions
/// mid-query without disturbing in-flight reads. Mutations and queries
/// still follow the single-writer contract: one thread drives
/// AddElement/AppendText/Search; only the maintenance work (SealMemtable
/// and compaction rounds) is internally synchronized against the
/// background thread.
///
/// DURABLE MODE (OpenDurable): seals write `seg-<id>` files named by a
/// crash-safe manifest log; reopening the same directory recovers the
/// sealed set (deleting orphans from torn operations) and resumes the
/// maintained encoding from the last seal's snapshot. A background
/// CompactionScheduler runs tiered compaction; every transition is logged
/// write-ahead, so a crash at any point reopens to either the pre- or the
/// post-operation set, never a mix.
class UpdatableEngine {
 public:
  explicit UpdatableEngine(XmlTree initial, EngineOptions options = {});
  ~UpdatableEngine();

  /// Opens a durable engine over `durable.data_dir`: replays the manifest
  /// log, reopens the live sealed segments, resumes the JDewey encoding
  /// from the last seal's snapshot and extends it over any tree nodes
  /// beyond the recovered watermark (they become the memtable). A fresh
  /// directory seals `initial` as the durable base segment. A damaged
  /// encoding snapshot or unreadable live segment degrades safely: the
  /// stale set is dropped (logged) and the whole tree is re-sealed.
  static StatusOr<std::unique_ptr<UpdatableEngine>> OpenDurable(
      XmlTree initial, EngineOptions options, DurableOptions durable);

  /// Adds an element under `parent`, with optional direct text. Returns
  /// the new node. O(1) amortized encoding maintenance; the new node goes
  /// to the memtable.
  NodeId AddElement(NodeId parent, const std::string& tag,
                    const std::string& text = "");

  /// Appends text to an existing element. Appending an empty string is a
  /// no-op (nothing to index — the index must NOT go dirty). Text on a
  /// memtable node only dirties the memtable; text on a sealed node
  /// forces a full rebuild at the next query.
  void AppendText(NodeId node, const std::string& text);

  /// Grafts a copy of `doc` under the root as one <doc name=...> wrapper
  /// subtree (the MultiDocCorpus shape), maintaining the encoding node by
  /// node. Returns the wrapper node. The whole document lands in the
  /// memtable; SealMemtable turns accumulated documents into an immutable
  /// segment.
  NodeId AddDocument(const std::string& name, const XmlTree& doc);

  /// Queries (refresh the memtable / rebuild first if needed). `deadline`
  /// bounds the query's time budget (default unbounded); on expiry the
  /// hits hold the proven partial answer and last_status() reports
  /// kDeadlineExceeded. The query pins the current segment version for
  /// its whole lifetime — background publishes cannot change its answer.
  std::vector<QueryHit> Search(const std::vector<std::string>& keywords,
                               Semantics semantics = Semantics::kElca,
                               DeadlineToken deadline = {});
  std::vector<QueryHit> SearchTopK(const std::vector<std::string>& keywords,
                                   size_t k,
                                   Semantics semantics = Semantics::kElca,
                                   DeadlineToken deadline = {});

  /// Seals the current memtable to `path` as an immutable on-disk segment
  /// (+ ".manifest") and advances the watermark past it. Queries before
  /// and after answer identically. Fails on an empty memtable. (The
  /// caller-names-the-path form; durable engines use the no-arg
  /// overload.)
  Status SealMemtable(const std::string& path);

  /// DURABLE: seals the memtable as the next log-managed segment — files
  /// first, then the kSeal record (the commit point), so a crash at any
  /// byte leaves either the old or the new set. Wakes the compactor.
  Status SealMemtable();

  /// Merges every sealed segment into one at `path` (SegmentedIndex::
  /// Compact). The memtable is untouched. Superseded segment files are
  /// deleted once the last in-flight query stops pinning them.
  Status Compact(const std::string& path);

  /// DURABLE: synchronously merges all log-managed disk segments into one
  /// (the same crash-safe kCompactBegin/kCompactCommit/kDrop protocol the
  /// background rounds use). No-op with fewer than two.
  Status Compact();

  const XmlTree& tree() const { return tree_; }

  /// Numbers changed by encoding maintenance since construction (1 per
  /// plain insert; subtree size when a reserved range forced a partial
  /// re-encode).
  uint64_t encoding_updates() const { return encoding_updates_; }
  /// FULL index rebuilds (sealed data went stale). 0 on append-only
  /// workloads — the point of the segmented design.
  uint64_t rebuilds() const { return rebuilds_; }
  /// Lazy memtable (tail segment) rebuilds; not counted as rebuilds.
  uint64_t memtable_refreshes() const { return memtable_refreshes_; }
  bool dirty() const { return memtable_dirty_ || needs_full_rebuild_; }

  /// Sealed segments currently serving queries.
  size_t segment_count() const { return segments_.sealed_count(); }
  /// Documents (AddDocument) accumulated in the memtable since the last
  /// seal / rebuild.
  size_t memtable_docs() const { return memtable_docs_; }
  /// Nodes below this id are covered by sealed segments.
  NodeId watermark() const { return watermark_; }

  /// Whether this engine was opened by OpenDurable.
  bool durable() const { return log_ != nullptr; }
  /// The background scheduler (durable mode; nullptr otherwise). Tests
  /// drive RunOnce / inspect rounds() through it.
  CompactionScheduler* scheduler() { return scheduler_.get(); }

  /// Invariant check (tests): the maintained encoding still satisfies both
  /// JDewey requirements.
  Status ValidateEncoding() const { return encoding_.Validate(tree_); }

  /// The join-plan cache (tests assert invalidation-on-seal through it).
  PlanCache& plan_cache() { return plan_cache_; }

  /// Resource bill of the most recent Search/SearchTopK (the Search APIs
  /// return bare hit vectors, so the accounting rides on the side).
  const obs::ResourceAccounting& last_accounting() const {
    return last_accounting_;
  }

  /// Status of the most recent Search/SearchTopK (kDeadlineExceeded when
  /// its deadline expired mid-query; rides on the side like
  /// last_accounting()).
  const Status& last_status() const { return last_status_; }

  /// The segmented index's version after folding in any pending mutations
  /// (EnsureFresh runs first, so an ingest that merely dirtied the
  /// memtable still bumps the number). Result caches key on this: a seal,
  /// compact, or ingest moves the watermark and silently invalidates —
  /// including background compaction publishes.
  uint64_t plan_watermark();

  /// Same analyzer as indexing (multi-token inputs expand, duplicates
  /// drop). Public for cache-key normalization, like Engine::Normalize.
  std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) const;

 private:
  struct RecoveryTag {};
  /// The OpenDurable constructor: takes the tree but defers encoding
  /// assignment and base sealing to the recovery logic.
  UpdatableEngine(RecoveryTag, XmlTree initial, EngineOptions options);

  void EnsureFresh();
  void FullRebuild();
  /// DURABLE full rebuild: seals the whole tree as a new log-managed
  /// segment and atomically replaces the stale set (compact-record
  /// protocol, so recovery sees pre- or post-rebuild, never both). Falls
  /// back to the in-memory FullRebuild when disk writes fail — queries
  /// stay correct; the log keeps the old set as the recovery state.
  void DurableFullRebuild();
  void RefreshMemtable();
  /// Seals nodes [watermark_, node_count) as one segment; `disk_path`
  /// empty seals in memory.
  Status Seal(const std::string& disk_path);
  /// DURABLE seal of [watermark_, node_count): segment + manifest +
  /// encoding snapshot files first, then the kSeal record. Caller holds
  /// maintenance_mu_.
  Status SealDurableLocked();
  /// One compaction round over the log-managed disk segments: pick
  /// (tiered, or everything when `merge_all`), kCompactBegin, merge +
  /// write off-lock, kCompactCommit + publish, kDrop + supersede the
  /// inputs. Returns true when a merge was published. Runs on the
  /// maintenance thread or a caller thread — never two at once
  /// (maintenance_mu_ serializes the log/publish sections).
  bool CompactRound(bool merge_all);
  /// Logs a kDrop for the abandoned output id and deletes its files
  /// (failed/raced compaction cleanup).
  void AbandonOutput(uint64_t id, const std::string& path);
  std::vector<QueryHit> Materialize(
      const std::vector<SearchResult>& results) const;
  /// Shared query epilogue: finalize the accounting, fold it into the
  /// process metrics (cumulative + windowed), and capture to the slow log
  /// when the thresholds say so.
  void FinishQuery(const std::vector<std::string>& normalized, size_t k,
                   Semantics semantics, double wall_us, double cpu_us,
                   const std::vector<QueryHit>& hits,
                   obs::ResourceAccounting* accounting);

  XmlTree tree_;
  EngineOptions options_;
  JDeweyEncoding encoding_;
  SegmentedIndex segments_;
  /// Join-plan cache over the segmented index. Entries carry the index
  /// version as their watermark, so a seal / compact / ingest silently
  /// invalidates them — no explicit hook needed.
  PlanCache plan_cache_;
  /// Shared so pinned versions keep a replaced memtable alive until the
  /// last in-flight query drops it.
  std::shared_ptr<const JDeweyIndex> memtable_;
  NodeId watermark_ = 0;
  bool memtable_dirty_ = false;
  bool needs_full_rebuild_ = false;
  uint64_t encoding_updates_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t memtable_refreshes_ = 0;
  size_t memtable_docs_ = 0;
  obs::ResourceAccounting last_accounting_;
  Status last_status_ = Status::Ok();

  // Durable mode (all null/empty in the plain constructor).
  DurableOptions durable_options_;
  std::unique_ptr<ManifestLog> log_;
  std::unique_ptr<CompactionScheduler> scheduler_;
  /// Serializes maintenance transitions (seal, compaction rounds, durable
  /// rebuild) between the owner thread and the background thread. Lock
  /// order: maintenance_mu_ before any SegmentedIndex-internal lock;
  /// queries take neither.
  std::mutex maintenance_mu_;
  uint64_t next_segment_id_ = 1;
  /// The id whose `enc-<id>` snapshot is authoritative (0 = none yet).
  uint64_t enc_id_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_UPDATABLE_ENGINE_H_
