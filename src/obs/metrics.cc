#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/windowed.h"

namespace xtopk {
namespace obs {
namespace {

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  *out += key;  // metric names are dotted identifiers — no escaping needed
  *out += "\":";
}

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  *out += buf;
}

/// A percentile of an empty distribution has no value: emit JSON null
/// instead of leaking the kEmptyPercentile (-1) sentinel into consumers
/// that would plot it as a real latency.
void AppendPercentile(std::string* out, double value) {
  if (value < 0) {
    *out += "null";
    return;
  }
  AppendDouble(out, value);
}

}  // namespace

double PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return kEmptyPercentile;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th sample, 1-based; q=0 maps to the first sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      // Uniform interpolation inside the bucket.
      double frac = static_cast<double>(rank - seen - 1) /
                    static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    seen += buckets[i];
  }
  return static_cast<double>(Histogram::BucketUpperBound(
      Histogram::kNumBuckets - 1));
}

double Histogram::Percentile(double q) const {
  std::array<uint64_t, kNumBuckets> copy{};
  for (size_t i = 0; i < kNumBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return PercentileFromBuckets(copy, q);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: static handles in hot paths must outlive every
  // static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

WindowedHistogram& MetricsRegistry::GetWindowedHistogram(
    std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_histograms_.find(name);
  if (it == windowed_histograms_.end()) {
    it = windowed_histograms_
             .emplace(std::string(name), std::make_unique<WindowedHistogram>())
             .first;
  }
  return *it->second;
}

WindowedCounter& MetricsRegistry::GetWindowedCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_counters_.find(name);
  if (it == windowed_counters_.end()) {
    it = windowed_counters_
             .emplace(std::string(name), std::make_unique<WindowedCounter>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      data.buckets[i] = histogram->bucket(i);
      data.count += data.buckets[i];
    }
    data.sum = histogram->sum();
    data.p50 = PercentileFromBuckets(data.buckets, 0.50);
    data.p95 = PercentileFromBuckets(data.buckets, 0.95);
    data.p99 = PercentileFromBuckets(data.buckets, 0.99);
    snapshot.histograms.push_back(std::move(data));
  }
  uint64_t now_us = MonotonicNowUs();
  auto scalar = [](const WindowedHistogram::WindowSnapshot& w) {
    MetricsSnapshot::WindowStats stats;
    stats.window_us = w.window_us;
    stats.count = w.count;
    stats.sum = w.sum;
    stats.p50 = w.p50;
    stats.p99 = w.p99;
    stats.p999 = w.p999;
    stats.rate_per_sec = w.rate_per_sec;
    return stats;
  };
  snapshot.windowed_histograms.reserve(windowed_histograms_.size());
  for (const auto& [name, histogram] : windowed_histograms_) {
    MetricsSnapshot::WindowedHistogramData data;
    data.name = name;
    data.w10s = scalar(
        histogram->WindowAt(WindowedHistogram::kWindow10sUs, now_us));
    data.w60s = scalar(
        histogram->WindowAt(WindowedHistogram::kWindow60sUs, now_us));
    snapshot.windowed_histograms.push_back(std::move(data));
  }
  snapshot.windowed_counters.reserve(windowed_counters_.size());
  for (const auto& [name, counter] : windowed_counters_) {
    MetricsSnapshot::WindowedCounterData data;
    data.name = name;
    data.sum_10s =
        counter->SumInWindowAt(WindowedHistogram::kWindow10sUs, now_us);
    data.sum_60s =
        counter->SumInWindowAt(WindowedHistogram::kWindow60sUs, now_us);
    data.rate_10s =
        counter->RateInWindowAt(WindowedHistogram::kWindow10sUs, now_us);
    data.rate_60s =
        counter->RateInWindowAt(WindowedHistogram::kWindow60sUs, now_us);
    snapshot.windowed_counters.push_back(std::move(data));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramData& h : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, h.name);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"p50\":";
    AppendPercentile(&out, h.p50);
    out += ",\"p95\":";
    AppendPercentile(&out, h.p95);
    out += ",\"p99\":";
    AppendPercentile(&out, h.p99);
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      AppendJsonKey(&out, std::to_string(i));
      out += std::to_string(h.buckets[i]);
    }
    out += "}}";
  }
  out += "},\"windows\":{";
  first = true;
  auto append_window = [&out](const char* key, const WindowStats& w) {
    out += '"';
    out += key;
    out += "\":{\"count\":" + std::to_string(w.count) +
           ",\"sum\":" + std::to_string(w.sum) + ",\"rate_per_sec\":";
    AppendDouble(&out, w.rate_per_sec);
    out += ",\"p50\":";
    AppendPercentile(&out, w.p50);
    out += ",\"p99\":";
    AppendPercentile(&out, w.p99);
    out += ",\"p999\":";
    AppendPercentile(&out, w.p999);
    out += '}';
  };
  for (const WindowedHistogramData& w : windowed_histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, w.name);
    out += '{';
    append_window("10s", w.w10s);
    out += ',';
    append_window("60s", w.w60s);
    out += '}';
  }
  for (const WindowedCounterData& w : windowed_counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, w.name);
    out += "{\"10s\":{\"count\":" + std::to_string(w.sum_10s) +
           ",\"rate_per_sec\":";
    AppendDouble(&out, w.rate_10s);
    out += "},\"60s\":{\"count\":" + std::to_string(w.sum_60s) +
           ",\"rate_per_sec\":";
    AppendDouble(&out, w.rate_60s);
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  // Prometheus metric names use underscores, not dots.
  auto flat = [](const std::string& name) {
    std::string out = name;
    std::replace(out.begin(), out.end(), '.', '_');
    return out;
  };
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string n = flat(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string n = flat(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const HistogramData& h : histograms) {
    std::string n = flat(h.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      out += n + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  // Windowed metrics export as gauges (a recent-window percentile is a
  // point-in-time level, not a cumulative series). Percentile gauges of
  // an idle window are omitted — Prometheus has no null, and exporting
  // the -1 sentinel would plot as a negative latency; the rate gauges
  // stay (a rate of 0 is a real observation).
  auto append_gauge = [&out](const std::string& name, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + buf + "\n";
  };
  auto append_percentile_gauge = [&append_gauge](const std::string& name,
                                                 double value) {
    if (value >= 0) append_gauge(name, value);
  };
  for (const WindowedHistogramData& w : windowed_histograms) {
    std::string n = flat(w.name);
    append_percentile_gauge(n + "_w10s_p50", w.w10s.p50);
    append_percentile_gauge(n + "_w10s_p99", w.w10s.p99);
    append_percentile_gauge(n + "_w10s_p999", w.w10s.p999);
    append_gauge(n + "_w10s_rate", w.w10s.rate_per_sec);
    append_percentile_gauge(n + "_w60s_p50", w.w60s.p50);
    append_percentile_gauge(n + "_w60s_p99", w.w60s.p99);
    append_percentile_gauge(n + "_w60s_p999", w.w60s.p999);
    append_gauge(n + "_w60s_rate", w.w60s.rate_per_sec);
  }
  for (const WindowedCounterData& w : windowed_counters) {
    std::string n = flat(w.name);
    append_gauge(n + "_w10s_rate", w.rate_10s);
    append_gauge(n + "_w60s_rate", w.rate_60s);
  }
  return out;
}

void MetricsSnapshot::AppendCompactJson(std::string* out) const {
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonKey(out, name);
    *out += std::to_string(value);
  }
  for (const auto& [name, value] : gauges) {
    if (value == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonKey(out, name);
    *out += std::to_string(value);
  }
  for (const HistogramData& h : histograms) {
    if (h.count == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonKey(out, h.name + "_count");
    *out += std::to_string(h.count);
    out->push_back(',');
    AppendJsonKey(out, h.name + "_p50");
    AppendDouble(out, h.p50);
    out->push_back(',');
    AppendJsonKey(out, h.name + "_p95");
    AppendDouble(out, h.p95);
    out->push_back(',');
    AppendJsonKey(out, h.name + "_p99");
    AppendDouble(out, h.p99);
  }
  // Recent-window view: only windows that actually hold samples, as
  // name_w10s_*/name_w60s_* scalars (the last-window p99 next to the
  // since-boot percentiles above).
  for (const WindowedHistogramData& w : windowed_histograms) {
    for (const auto* stats : {&w.w10s, &w.w60s}) {
      if (stats->count == 0) continue;
      std::string prefix =
          w.name + (stats == &w.w10s ? "_w10s" : "_w60s");
      if (!first) out->push_back(',');
      first = false;
      AppendJsonKey(out, prefix + "_count");
      *out += std::to_string(stats->count);
      out->push_back(',');
      AppendJsonKey(out, prefix + "_p50");
      AppendDouble(out, stats->p50);
      out->push_back(',');
      AppendJsonKey(out, prefix + "_p99");
      AppendDouble(out, stats->p99);
      out->push_back(',');
      AppendJsonKey(out, prefix + "_rate");
      AppendDouble(out, stats->rate_per_sec);
    }
  }
  for (const WindowedCounterData& w : windowed_counters) {
    if (w.sum_60s == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonKey(out, w.name + "_w60s_count");
    *out += std::to_string(w.sum_60s);
    out->push_back(',');
    AppendJsonKey(out, w.name + "_w60s_rate");
    AppendDouble(out, w.rate_60s);
  }
  out->push_back('}');
}

}  // namespace obs
}  // namespace xtopk
