# Empty dependencies file for xml_xml_parser_test.
# This may be replaced when dependencies are built.
